"""Parallel sharded execution backend: real multi-core processing.

The sequential backend models Retina's per-core pipelines faithfully
but executes them on one thread, so wall-clock throughput is bounded by
a single CPU no matter what ``config.cores`` says. This module makes
the paper's Section 5 scaling claim *real*: one OS worker process per
simulated core, each running its own shared-nothing
:class:`~repro.core.pipeline.CorePipeline` + connection table, fed by
the parent over bounded queues.

Design, mirroring the paper's data path:

- **Sharding** happens in the parent exactly where the NIC does it:
  :meth:`SimNic.receive` computes the symmetric-RSS hash and the
  redirection-table lookup, so both backends route every packet to the
  same queue/core. Per-flow arrival order is preserved because routing
  is per packet, in stream order.
- **Batching** amortizes IPC and pickle cost the same way Retina
  amortizes per-packet overhead with DPDK bursts: packets travel in
  ``config.parallel_batch_size``-packet batches packed into flat
  buffers (:class:`~repro.packet.batch.PackedBatch` — one frames blob
  plus offset/timestamp/port arrays, so serialization is O(bytes)
  rather than O(objects)); workers rebuild zero-copy mbuf views and
  process them with :meth:`CorePipeline.process_batch`.
- **Backpressure**: each worker's input queue holds at most
  ``config.parallel_queue_depth`` batches; the feeder blocks instead of
  buffering unboundedly (the analogue of a finite RX descriptor ring).
- **Shared-nothing merge**: workers never share state; each returns a
  picklable :class:`~repro.core.stats.CoreStats` snapshot at the end,
  and the parent merges them through ``Runtime.aggregate()`` so
  reports, memory series, and derived metrics are built by the exact
  same code as the sequential backend.

Determinism: for a fixed traffic source, the parallel backend produces
**identical** filter/connection/session/callback counts — and
bit-identical stage cycle totals — to the sequential backend, because
RSS sharding makes per-core work order-independent and
``process_batch`` charges costs per packet regardless of batch
boundaries.

Caveats (documented deviations):

- Worker processes rebuild their subscription from the filter text and
  data type; custom parser/field registries on a hand-built
  ``Subscription`` are not shipped to workers.
- Callbacks execute inside the worker processes: their side effects
  (prints, appended lists) live in the worker's address space, not the
  parent's. Counts still aggregate exactly.
- The OOM cutoff compares worker-reported memory at progress cadence,
  so ``oom_at`` in parallel mode is approximate (sequential checks
  synchronously at every sample point).

Memory sampling is parent-clocked: the parent tells every worker to
sample (``_SAMPLE``) at the same global virtual deadlines the
sequential backend uses, and per-queue FIFO ordering guarantees the
worker has processed exactly the batches dispatched before the
deadline. The resulting memory series — and therefore the peak
memory/connection figures — are identical between backends.

Two IPC transports implement the feeder→worker path
(``config.ipc_transport``):

- **"queue"** — the original pickled ``multiprocessing.Queue`` path:
  one pickle + pipe write + unpickle per batch.
- **"shm"** (default where available) — the shared-memory mempool +
  descriptor-ring transport (:mod:`repro.core.shm`): the feeder writes
  each burst's flat-buffer wire layout straight into a pre-allocated
  shared slot and publishes an 8-byte descriptor on a per-core SPSC
  ring; the worker maps the slot back with zero-copy ``memoryview``
  blobs and returns the slot by publishing a cumulative consumed
  counter (credit-based recycling). Everything that is not a hot batch
  — memory samples, FINISH, tenancy epoch bumps, bursts too large for
  a slot — rides a CTRL descriptor whose payload stays on the retained
  pickle queue, so the strict per-core total order (which the
  parent-clocked sampling and epoch-swap boundaries rely on) is
  preserved across both channels. Worker acks coalesce (cumulative
  seqs, flushed on ring-idle/every few batches — and always *before* a
  planned fault fires, which keeps the supervisor's replay set, and
  therefore post-crash stats, byte-identical to the queue transport).
  On top of the ring, the feeder adapts its batch size at
  deterministic burst-ordinal resize points: toward
  ``ipc_max_batch`` while the ring runs deep, back toward the
  configured size when it drains (AggregateStats are batch-size
  invariant, so adaptation never changes results).
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, \
    Optional, Set, Tuple

if TYPE_CHECKING:
    from repro.config import RuntimeConfig
    from repro.core.runtime import Runtime, RuntimeReport
    from repro.resilience.faults import PacketFaultInjector

from repro.core import shm as shm_mod
from repro.core.pipeline import CorePipeline
from repro.core.stats import CoreStats
from repro.core.subscription import Subscription
from repro.errors import RetinaError
from repro.packet.batch import PackedBatch
from repro.packet.columnar import columnar_dispatch
from repro.packet.mbuf import Mbuf
from repro.resilience.faults import FaultPlan, build_fault_report
from repro.resilience.supervisor import WorkerSupervisor

#: Message tags on the worker input queues.
_BATCH = 0
_FINISH = 1
_SAMPLE = 2
#: Supervised batch: carries a per-core sequence number the worker
#: acknowledges after processing (heartbeat + redo-log trim signal).
_BATCH_SEQ = 3
#: Message tags on the shared result queue.
_PROGRESS = "progress"
_DONE = "done"
_ERROR = "error"
_ACK = "ack"
_CRASHED = "crashed"

#: How long to wait on a stuck queue before checking worker liveness.
_POLL_TIMEOUT = 5.0
#: How long an injected worker_hang sleeps — "forever" as far as the
#: supervisor's heartbeat deadline is concerned.
_HANG_SLEEP = 3600.0
#: Shm transport: a worker flushes its coalesced cumulative ack at
#: latest every this many supervised batches (it also flushes whenever
#: the ring runs empty, before a planned fault fires, and at FINISH).
_ACK_COALESCE = 8
#: Shm transport: the adaptive batch sizer reconsiders a queue's batch
#: size every this many dispatched bursts (deterministic resize points
#: on the per-queue burst ordinal).
_RESIZE_INTERVAL = 16


class ParallelExecutionError(RetinaError):
    """A worker process failed; carries the worker's traceback.

    ``core_id`` names the failed worker when known; ``partial_stats``
    maps core id → :class:`CoreStats` for every worker whose final
    snapshot had already been gathered when the failure surfaced, so
    callers can salvage partial results.
    """

    def __init__(self, message: str, core_id: Optional[int] = None,
                 partial_stats: Optional[Dict[int, CoreStats]] = None
                 ) -> None:
        super().__init__(message)
        self.core_id = core_id
        self.partial_stats: Dict[int, CoreStats] = partial_stats or {}


@dataclass
class _WorkerSpec:
    """Everything a worker needs to rebuild its shard of the runtime.

    Must be picklable under the ``spawn`` start method; under ``fork``
    it is simply inherited. The subscription is reconstructed in the
    worker (compiled filters hold generated code objects that do not
    pickle), which also guarantees each shard gets genuinely private
    state.
    """

    core_id: int
    config: "RuntimeConfig"
    filter_str: str
    datatype: type
    callback: Optional[Callable]
    identify_services: bool
    #: Virtual seconds between progress reports to the parent, or None
    #: for "never" (no monitor attached and no memory limit).
    progress_interval: Optional[float]
    #: The run's fault plan (workers fire their own worker_crash/
    #: worker_hang faults; core-scoped faults are consumed by the
    #: pipeline's own injector).
    fault_plan: Optional[FaultPlan] = None
    #: Plan indices of worker faults that already fired — set on the
    #: spec of a restarted worker so the same fault does not fire again.
    suppressed_faults: Tuple[int, ...] = field(default_factory=tuple)
    #: Overload-ladder rung the core held when its previous incarnation
    #: last acknowledged a batch — set on restart so a crash
    #: mid-overload does not silently reopen the admission gate.
    initial_overload_rung: int = 0
    #: Multi-tenant table state for the worker to rebuild, or None for
    #: the ordinary single-subscription pipeline. A plain dict
    #: (``{"specs": [wire dicts], "active": [names], "epoch": int}``)
    #: so this spec stays picklable without importing repro.tenancy.
    tenancy: Optional[dict] = None
    #: Shared-memory transport attachment — ``(segment_name, ring_size,
    #: slot_bytes)`` — or None for the pickled-queue transport. Plain
    #: strings/ints so the spec stays picklable under spawn.
    shm: Optional[Tuple[str, int, int]] = None


def _tenancy_state(base: dict, bumps, epoch: int) -> dict:
    """The wire-dict table state at ``epoch``: the pool's base state
    plus every published epoch bump numbered ``<= epoch``. Seeds a
    restarted worker at the table its predecessor last acknowledged;
    bumps past ``epoch`` re-apply through redo-log replay."""
    specs = [dict(w) for w in base["specs"]]
    active = list(base["active"])
    applied = base["epoch"]
    for epoch_no, actions in bumps:
        if epoch_no <= applied or epoch_no > epoch:
            continue
        for kind, name, wire in actions:
            if kind == "add":
                specs = [w for w in specs if w["name"] != name]
                specs.append(dict(wire))
                active.append(name)
            else:  # drop
                active = [n for n in active if n != name]
        applied = epoch_no
    return {"specs": specs, "active": active, "epoch": applied}


def _fire_worker_fault(spec: _WorkerSpec, out_queue, plan_index: int,
                       kind: str) -> None:
    """Execute a planned worker fault inside the worker process."""
    if kind == "worker_hang":
        # A live-but-stuck worker: stop reading the input queue without
        # exiting. The parent's heartbeat deadline detects the silence,
        # terminates this process, and restarts the core.
        time.sleep(_HANG_SLEEP)
        return
    # worker_crash: announce, flush, then die without any cleanup.
    # os._exit skips atexit/queue teardown (a hard crash), but the
    # close+join below has already flushed the announcement — and,
    # because the result queue preserves per-producer order, every ack
    # this worker sent beforehand reaches the parent first. That
    # ordering is what makes the parent's replay set deterministic.
    out_queue.put((_CRASHED, spec.core_id, plan_index))
    out_queue.close()
    out_queue.join_thread()
    os._exit(1)


class _WorkerState:
    """One worker's message handler, shared by both transports.

    ``handle`` is the exact per-message body the queue transport always
    ran; the shm consume loop feeds it the same message shapes. The one
    transport-sensitive piece is acking: the queue transport flushes an
    ack per supervised batch (``ack_every=1`` — byte-identical legacy
    behavior), the shm transport coalesces cumulative acks
    (``RedoLog.ack`` trims every seq ≤ the acked one) and flushes on
    ring-idle, every ``_ACK_COALESCE`` batches, at FINISH, and —
    crucially for determinism — right *before* a planned worker fault
    fires, so the parent's redo log holds exactly the unprocessed tail
    when the crash announcement lands.
    """

    __slots__ = ("spec", "pipeline", "out_queue", "tenancy", "plan",
                 "progress_interval", "next_progress", "ack_every",
                 "pending_ack", "unflushed")

    def __init__(self, spec: _WorkerSpec, pipeline, out_queue,
                 tenancy: Optional[dict], ack_every: int) -> None:
        self.spec = spec
        self.pipeline = pipeline
        self.out_queue = out_queue
        self.tenancy = tenancy
        self.plan = spec.fault_plan
        self.progress_interval = spec.progress_interval
        self.next_progress: Optional[float] = None
        self.ack_every = ack_every
        self.pending_ack = -1
        self.unflushed = 0

    def flush_acks(self) -> None:
        if self.pending_ack < 0:
            return
        pipeline = self.pipeline
        # The ack carries the ladder's current rung and the
        # filter-table epoch so the supervisor can hand both to a
        # restarted worker.
        self.out_queue.put((_ACK, self.spec.core_id, self.pending_ack,
                            pipeline.overload_rung,
                            getattr(pipeline, "epoch", 0)))
        self.pending_ack = -1
        self.unflushed = 0

    def handle(self, message) -> bool:
        """Process one message; True means FINISH (the worker exits)."""
        tag = message[0]
        pipeline = self.pipeline
        if tag == _BATCH or tag == _BATCH_SEQ:
            if tag == _BATCH_SEQ:
                _, seq, batch = message
                plan = self.plan
                if plan is not None:
                    fault = plan.worker_fault_at(
                        self.spec.core_id, seq,
                        self.spec.suppressed_faults)
                    if fault is not None:
                        self.flush_acks()
                        _fire_worker_fault(self.spec, self.out_queue,
                                           fault[0], fault[1].kind)
            else:
                seq = None
                batch = message[1]
            if type(batch) is PackedBatch:
                # Flat-buffer IPC: one blob + offset arrays crossed
                # the boundary; rebuild zero-copy mbuf views here.
                if batch.trace_ctx is not None:
                    # Span context stamped by the feeder: the burst
                    # tree this batch produces records it, stitching
                    # worker spans into the parent's trace.
                    pipeline.set_span_ctx(batch.trace_ctx)
                if batch.epoch is not None and self.tenancy is not None:
                    # Epoch bump: swap the filter table before this
                    # batch's packets (the feeder flushed everything
                    # older first, so per-queue FIFO makes the swap
                    # land on the exact burst boundary). Idempotent
                    # on the epoch number — replays after a restart
                    # are no-ops.
                    pipeline.apply_epoch(*batch.epoch)
                batch = batch.unpack()
            pipeline.process_batch(batch)
            if seq is not None:
                self.pending_ack = seq
                self.unflushed += 1
                if self.unflushed >= self.ack_every:
                    self.flush_acks()
            now = pipeline.now
            progress_interval = self.progress_interval
            if progress_interval is not None and (
                    self.next_progress is None
                    or now >= self.next_progress):
                self.next_progress = now + progress_interval
                stats = pipeline.stats
                self.out_queue.put((
                    _PROGRESS,
                    self.spec.core_id,
                    now,
                    stats.callbacks,
                    len(pipeline.table),
                    pipeline.memory_bytes,
                    stats.ledger.busy_seconds,
                    stats.pf_packets,
                    stats.connf_packets,
                    stats.sessf_packets,
                    pipeline.overload_rung,
                    pipeline.overload_shed_packets,
                    pipeline.overload_failfast_at,
                ))
            return False
        if tag == _SAMPLE:
            # Parent-clocked sample point: every batch dispatched
            # before the deadline is already processed (strict per-core
            # order on either transport), so this records exactly what
            # the sequential backend's _sample_memory would.
            pipeline.sample_memory()
            return False
        # _FINISH
        _, last_ts, do_drain = message
        self.flush_acks()
        if last_ts is not None:
            pipeline.advance_time(last_ts)
            pipeline.sample_memory()
            if do_drain:
                pipeline.drain()
        pipeline.fold_fault_counters()
        self.out_queue.put((_DONE, self.spec.core_id, pipeline.stats))
        return True


def _worker_loop_shm(spec: _WorkerSpec, state: _WorkerState,
                     in_queue) -> None:
    """Shm-transport consume loop: poll the descriptor ring in ordinal
    order, map batch slots zero-copy, pull CTRL payloads from the
    pickle queue (the descriptor pins their position in the total
    order), and publish cumulative consumed credits so the feeder can
    recycle slots."""
    channel = shm_mod.ShmWorkerChannel(*spec.shm)
    try:
        ordinal = 0
        wait = channel.wait_descriptor
        mark = channel.mark_consumed
        handle = state.handle
        flush = state.flush_acks
        while True:
            kind, slot, _rows = wait(ordinal, on_idle=flush)
            if kind == shm_mod.KIND_BATCH:
                batch, seq = channel.read_batch(slot)
                if seq < 0:
                    finish = handle((_BATCH, batch))
                else:
                    finish = handle((_BATCH_SEQ, seq, batch))
            elif kind == shm_mod.KIND_SAMPLE:
                finish = handle((_SAMPLE,))
            else:  # KIND_CTRL: payload rides the pickle queue
                finish = handle(in_queue.get())
            # Credit return *after* processing: the slot (and the
            # memoryviews the batch borrowed from it) must stay intact
            # until the burst is fully consumed.
            ordinal += 1
            mark(ordinal)
            if finish:
                return
    finally:
        channel.close()


def _worker_main(spec: _WorkerSpec, in_queue, out_queue) -> None:
    """Worker process entry point: one core's shared-nothing pipeline."""
    try:
        config = spec.config.with_(parallel=False)
        tenancy = spec.tenancy
        if tenancy is not None:
            # Multi-tenant shard: rebuild the tenant multiplexer from
            # the wire-dict table state (lazy import keeps repro.tenancy
            # out of single-tenant workers entirely).
            from repro.tenancy.pipeline import TenantCorePipeline
            from repro.tenancy.spec import TenantSpec

            pipeline = TenantCorePipeline(
                spec.core_id,
                [TenantSpec.from_wire(w) for w in tenancy["specs"]],
                list(tenancy["active"]),
                config,
                epoch=tenancy["epoch"],
                initial_overload_rung=spec.initial_overload_rung)
        else:
            subscription = Subscription(
                spec.filter_str,
                spec.datatype,
                spec.callback,
                filter_mode=config.filter_mode,
                nic=config.nic,
                identify_services=spec.identify_services,
            )
            pipeline = CorePipeline(
                spec.core_id, subscription, config,
                initial_overload_rung=spec.initial_overload_rung)
        state = _WorkerState(
            spec, pipeline, out_queue, tenancy,
            ack_every=_ACK_COALESCE if spec.shm is not None else 1)
        if spec.shm is not None:
            _worker_loop_shm(spec, state, in_queue)
            return
        handle = state.handle
        get = in_queue.get
        while True:
            if handle(get()):
                return
    except BaseException:
        out_queue.put((_ERROR, spec.core_id, traceback.format_exc()))


# ---------------------------------------------------------------------------
# parent-side views: enough runtime surface for StatsMonitor.observe()
# ---------------------------------------------------------------------------
class _TableView:
    """Stands in for a worker's ConnTable in monitor snapshots."""

    __slots__ = ("live", "memory_bytes")

    def __init__(self) -> None:
        self.live = 0
        self.memory_bytes = 0

    def __len__(self) -> int:
        return self.live


class _LedgerView:
    __slots__ = ("busy_seconds",)

    def __init__(self) -> None:
        self.busy_seconds = 0.0


class _StatsView:
    __slots__ = ("callbacks", "ledger", "pf_packets", "connf_packets",
                 "sessf_packets")

    def __init__(self) -> None:
        self.callbacks = 0
        self.ledger = _LedgerView()
        self.pf_packets = 0
        self.connf_packets = 0
        self.sessf_packets = 0


class _CoreView:
    """Last-reported state of one worker, shaped like a CorePipeline."""

    __slots__ = ("stats", "table", "overload_rung",
                 "overload_shed_packets", "overload_failfast_at")

    def __init__(self) -> None:
        self.stats = _StatsView()
        self.table = _TableView()
        self.overload_rung = 0
        self.overload_shed_packets = 0
        self.overload_failfast_at: Optional[float] = None

    def update(self, callbacks: int, live: int, memory_bytes: int,
               busy_seconds: float, pf_packets: int = 0,
               connf_packets: int = 0, sessf_packets: int = 0,
               overload_rung: int = 0, overload_shed: int = 0,
               overload_failfast_at: Optional[float] = None) -> None:
        self.stats.callbacks = callbacks
        self.stats.ledger.busy_seconds = busy_seconds
        self.stats.pf_packets = pf_packets
        self.stats.connf_packets = connf_packets
        self.stats.sessf_packets = sessf_packets
        self.table.live = live
        self.table.memory_bytes = memory_bytes
        self.overload_rung = overload_rung
        self.overload_shed_packets = overload_shed
        if overload_failfast_at is not None:
            self.overload_failfast_at = overload_failfast_at


class _RuntimeView:
    """What ``StatsMonitor.observe`` reads, backed by worker reports."""

    def __init__(self, nics, views: List[_CoreView]) -> None:
        self.nics = nics
        self.pipelines = views

    @property
    def live_connections(self) -> int:
        return sum(view.table.live for view in self.pipelines)

    @property
    def memory_bytes(self) -> int:
        return sum(view.table.memory_bytes for view in self.pipelines)

    @property
    def overload_failfast_at(self) -> Optional[float]:
        trips = [view.overload_failfast_at for view in self.pipelines
                 if view.overload_failfast_at is not None]
        return min(trips) if trips else None


# ---------------------------------------------------------------------------
# parent-side orchestration
# ---------------------------------------------------------------------------
class _WorkerPool:
    """The fleet of per-core processes plus their queues.

    Usable as a context manager: on an exception inside the ``with``
    block the pool terminates every worker before the exception
    propagates, and the queues are closed either way — no leaked
    children, no feeder threads blocking interpreter exit.
    """

    def __init__(self, runtime: "Runtime",
                 progress_interval: Optional[float]) -> None:
        config = runtime.config
        subscription = runtime.subscription
        self.views = [_CoreView() for _ in range(config.cores)]
        #: Set by run_parallel in supervised mode; _handle feeds acks
        #: into it so every drain path keeps the redo logs trimmed.
        self.supervisor: Optional[WorkerSupervisor] = None
        #: (core_id, plan_index) crash announcements not yet consumed
        #: by recovery.
        self.crashed: Set[Tuple[int, int]] = set()
        self._closed = False
        # Backend-health telemetry (volatile: wall-clock and scheduling
        # dependent, so it never feeds the deterministic exports).
        self._health: Optional[List[dict]] = (
            [{"batches": 0, "packets": 0, "ipc_bytes": 0,
              "queue_highwater": 0, "batch_occupancy_max": 0}
             for _ in range(config.cores)]
            if config.telemetry else None
        )
        self.feeder_block_seconds = 0.0
        # Multi-tenant runtimes expose their filter table as a plain
        # wire dict; every worker spec carries it, and the feeder
        # appends each published epoch bump so restart() can rebuild a
        # crashed worker at the table state it last acknowledged.
        state_fn = getattr(runtime, "tenant_wire_state", None)
        self._tenancy_base: Optional[dict] = \
            state_fn() if state_fn is not None else None
        self.tenancy_bumps: List[Tuple[int, tuple]] = []
        # Prefer fork where available: workers start fast and
        # subscriptions with closure callbacks are inherited rather
        # than pickled. spawn (macOS/Windows default) works too, but
        # requires the callback to be picklable.
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else None)
        # Transport resolution: "auto" prefers the shared-memory ring
        # transport wherever the interpreter ships
        # multiprocessing.shared_memory; "queue" forces the legacy
        # pickled-queue path; "shm" demands the rings and fails loudly
        # when the platform cannot host them.
        mode = config.ipc_transport
        self.transport: Optional[shm_mod.ShmTransport] = None
        if mode == "shm" and not shm_mod.shm_available():
            raise ParallelExecutionError(
                "ipc_transport='shm' requested but "
                "multiprocessing.shared_memory is unavailable on this "
                "platform; use --ipc queue (or auto)")
        if mode != "queue" and shm_mod.shm_available():
            self.transport = shm_mod.ShmTransport(
                config.cores, shm_mod.default_layout(config))
        self.out_queue = self._ctx.Queue()
        if self.transport is not None:
            # Under shm the in_queues carry only control payloads whose
            # positions are pinned by CTRL descriptors in the ring; the
            # ring itself is the backpressure bound, so the control
            # queue stays unbounded.
            self.in_queues = [self._ctx.Queue()
                              for _ in range(config.cores)]
        else:
            self.in_queues = [
                self._ctx.Queue(maxsize=config.parallel_queue_depth)
                for _ in range(config.cores)
            ]
        self.processes = []
        self.specs: List[_WorkerSpec] = []
        for core_id in range(config.cores):
            spec = _WorkerSpec(
                core_id=core_id,
                config=config,
                filter_str=subscription.filter.text,
                datatype=subscription.datatype,
                callback=subscription.callback,
                identify_services=subscription.identify_services,
                progress_interval=progress_interval,
                fault_plan=config.fault_plan,
                tenancy=self._tenancy_base,
                shm=self.transport.spec_args(core_id)
                if self.transport is not None else None,
            )
            self.specs.append(spec)
            process = self._ctx.Process(
                target=_worker_main,
                args=(spec, self.in_queues[core_id], self.out_queue),
                daemon=True,
                name=f"repro-core-{core_id}",
            )
            self.processes.append(process)
        try:
            for process in self.processes:
                process.start()
        except Exception as exc:  # unpicklable callback under spawn
            self.terminate()
            self.close()
            raise ParallelExecutionError(
                f"could not start worker processes ({exc}); under the "
                f"'spawn' start method the subscription callback must be "
                f"picklable (a module-level function or None)") from exc

    def send(self, core_id: int, message) -> None:
        """Blocking put with liveness checks (bounded-queue backpressure
        must not deadlock on a dead worker)."""
        if self.transport is not None:
            self._send_shm(core_id, message)
            return
        in_queue = self.in_queues[core_id]
        tag = message[0]
        if self._health is not None and \
                (tag == _BATCH or tag == _BATCH_SEQ):
            batch = message[1] if tag == _BATCH else message[2]
            row = self._health[core_id]
            row["batches"] += 1
            occupancy = len(batch)
            row["packets"] += occupancy
            if type(batch) is PackedBatch:
                row["ipc_bytes"] += batch.nbytes
            else:  # object batch (legacy path): count frame bytes only
                row["ipc_bytes"] += sum(len(m.data) for m in batch)
            if occupancy > row["batch_occupancy_max"]:
                row["batch_occupancy_max"] = occupancy
            try:
                depth = in_queue.qsize()
            except NotImplementedError:  # macOS has no queue qsize
                depth = 0
            if depth > row["queue_highwater"]:
                row["queue_highwater"] = depth
        self._blocking_put(core_id, in_queue, message)

    def _blocking_put(self, core_id: int, in_queue, message) -> None:
        try:
            in_queue.put_nowait(message)
            return
        except queue_mod.Full:
            pass
        # The poll-timeout loop owns the backpressure stopwatch: every
        # blocked put is measured, wall-to-wall, exactly once —
        # feeder_block_seconds used to count only the slice a
        # telemetry-enabled batch send happened to wrap, undercounting
        # whenever control messages (or telemetry-off runs) hit a full
        # queue.
        blocked_from = time.monotonic()
        try:
            while True:
                try:
                    in_queue.put(message, timeout=_POLL_TIMEOUT)
                    return
                except queue_mod.Full:
                    if not self.processes[core_id].is_alive():
                        # Surface the worker's own traceback if it sent
                        # one before dying; fall back to generic error.
                        self.drain_progress()
                        raise ParallelExecutionError(
                            f"worker {core_id} died with its queue full")
        finally:
            self.feeder_block_seconds += time.monotonic() - blocked_from

    def _on_feeder_block(self, seconds: float) -> None:
        """Ring-capacity waits feed the same backpressure counter the
        bounded queues use."""
        self.feeder_block_seconds += seconds

    def _note_batch(self, core_id: int, channel,
                    occupancy: int) -> Optional[dict]:
        """Per-batch health accounting on the shm path; returns the
        worker's health row (or None with telemetry off) so the caller
        can add the transport-dependent ipc_bytes charge."""
        if self._health is None:
            return None
        row = self._health[core_id]
        row["batches"] += 1
        row["packets"] += occupancy
        if occupancy > row["batch_occupancy_max"]:
            row["batch_occupancy_max"] = occupancy
        depth = channel.depth()
        if depth > row["queue_highwater"]:
            row["queue_highwater"] = depth
        return row

    def send_mbufs(self, core_id: int, mbufs,
                   trace_ctx: Optional[tuple]) -> None:
        """Zero-copy fast path (shm transport, unsupervised): write the
        burst straight into a mempool slot — no PackedBatch, no pickle;
        the only serialized IPC is the 8-byte ring descriptor. Bursts
        that exceed the slot size fall back to a packed batch on the
        control channel."""
        channel = self.transport.channels[core_id]
        alive = self.processes[core_id].is_alive
        row = self._note_batch(core_id, channel, len(mbufs))
        try:
            if channel.send_mbufs(mbufs, core_id, trace_ctx, alive,
                                  self._on_feeder_block):
                if row is not None:
                    row["ipc_bytes"] += 8  # one descriptor word
                return
            # Jumbo-heavy burst: pack it and pin its ring position with
            # a CTRL descriptor while the payload crosses pickled.
            packed = PackedBatch.pack(mbufs, core_id)
            packed.trace_ctx = trace_ctx
            self.in_queues[core_id].put((_BATCH, packed))
            channel.send_ctrl(alive, self._on_feeder_block)
            if row is not None:
                row["ipc_bytes"] += 8 + packed.nbytes
        except shm_mod.WorkerGone:
            self.drain_progress()
            raise ParallelExecutionError(
                f"worker {core_id} died with its ring full")

    def _send_shm(self, core_id: int, message) -> None:
        """Dispatch over the shared-memory ring. Batches are written in
        place into a slot (descriptor-only IPC); memory samples are
        descriptor-only by design; everything else — FINISH, tenancy
        epoch bumps, batches that do not fit a slot — takes a CTRL
        descriptor that pins the pickled payload's position in the
        per-core total order."""
        channel = self.transport.channels[core_id]
        alive = self.processes[core_id].is_alive
        tag = message[0]
        try:
            if tag == _BATCH or tag == _BATCH_SEQ:
                if tag == _BATCH_SEQ:
                    seq, batch = message[1], message[2]
                else:
                    seq, batch = -1, message[1]
                row = self._note_batch(core_id, channel, len(batch))
                if type(batch) is PackedBatch and batch.epoch is None \
                        and channel.send_packed(batch, seq, alive,
                                                self._on_feeder_block):
                    if row is not None:
                        row["ipc_bytes"] += 8  # one descriptor word
                    return
                # Epoch-stamped (the stamp does not ride slot headers)
                # or oversize batch: control-channel fallback.
                self.in_queues[core_id].put(message)
                channel.send_ctrl(alive, self._on_feeder_block)
                if row is not None:
                    row["ipc_bytes"] += 8 + (
                        batch.nbytes if type(batch) is PackedBatch
                        else sum(len(m.data) for m in batch))
                return
            if tag == _SAMPLE:
                channel.send_sample(alive, self._on_feeder_block)
                return
            # _FINISH (and any future control tag): payload first, then
            # the ordering descriptor.
            self.in_queues[core_id].put(message)
            channel.send_ctrl(alive, self._on_feeder_block)
        except shm_mod.WorkerGone:
            self.drain_progress()
            raise ParallelExecutionError(
                f"worker {core_id} died with its ring full")

    def backend_health(self) -> Optional[dict]:
        """Volatile health snapshot, or None when telemetry is off."""
        if self._health is None:
            return None
        ipc_bytes = sum(row["ipc_bytes"] for row in self._health)
        ipc_packets = sum(row["packets"] for row in self._health)
        health = {
            "transport": "shm" if self.transport is not None
            else "queue",
            "feeder_block_seconds": self.feeder_block_seconds,
            "ipc_bytes": ipc_bytes,
            "ipc_packets": ipc_packets,
            "ipc_bytes_per_packet": (ipc_bytes / ipc_packets)
            if ipc_packets else 0.0,
            "workers": [{"worker": core_id, **row}
                        for core_id, row in enumerate(self._health)],
        }
        if self.transport is not None:
            # Ring/mempool telemetry: per-worker occupancy high-water
            # (same key the queue transport uses for its depth) plus
            # slot-starvation pressure, and pool-level aggregates the
            # Prometheus exporter surfaces.
            channels = self.transport.channels
            for core_id, channel in enumerate(channels):
                worker = health["workers"][core_id]
                worker["ring_highwater"] = channel.ring_highwater
                worker["slot_starvation_waits"] = \
                    channel.slot_starvation_waits
                worker["slot_bytes_written"] = \
                    channel.slot_bytes_written
            health["ring_size"] = self.transport.layout.ring_size
            health["slot_bytes"] = self.transport.layout.slot_bytes
            health["ring_highwater"] = max(
                channel.ring_highwater for channel in channels)
            health["slot_starvation_waits"] = sum(
                channel.slot_starvation_waits for channel in channels)
            health["slot_starvation_seconds"] = sum(
                channel.slot_starvation_seconds for channel in channels)
        return health

    def drain_progress(self) -> None:
        """Consume any pending reports without blocking; raises if a
        worker reported an error (after terminating the pool)."""
        while True:
            try:
                message = self.out_queue.get_nowait()
            except queue_mod.Empty:
                return
            self._handle(message, None)

    def gather(self, skip: Optional[Set[int]] = None
               ) -> Dict[int, CoreStats]:
        """Block until every worker (minus ``skip``) reported its final
        stats; returns ``{core_id: CoreStats}``."""
        results: Dict[int, CoreStats] = {}
        remaining = set(range(len(self.processes))) - (skip or set())
        while remaining:
            try:
                message = self.out_queue.get(timeout=_POLL_TIMEOUT)
            except queue_mod.Empty:
                dead = [core_id for core_id in remaining
                        if not self.processes[core_id].is_alive()]
                if dead:
                    self.terminate()
                    self.close()
                    raise ParallelExecutionError(
                        f"worker(s) {dead} exited without reporting "
                        f"stats", core_id=dead[0],
                        partial_stats=dict(results))
                continue
            core_id = self._handle(message, results)
            if core_id is not None:
                remaining.discard(core_id)
        for core_id, process in enumerate(self.processes):
            if skip is None or core_id not in skip:
                process.join(timeout=_POLL_TIMEOUT)
        return results

    def _handle(self, message,
                results: Optional[Dict[int, CoreStats]]) -> Optional[int]:
        tag = message[0]
        if tag == _PROGRESS:
            (_, core_id, _, callbacks, live, memory_bytes, busy,
             pf, connf, sessf, rung, shed, failfast_at) = message
            self.views[core_id].update(callbacks, live, memory_bytes,
                                       busy, pf, connf, sessf,
                                       rung, shed, failfast_at)
            return None
        if tag == _ACK:
            _, core_id, seq, rung, epoch = message
            if self.supervisor is not None:
                self.supervisor.on_ack(core_id, seq)
                self.supervisor.note_rung(core_id, rung)
                self.supervisor.note_epoch(core_id, epoch)
            return None
        if tag == _CRASHED:
            _, core_id, plan_index = message
            self.crashed.add((core_id, plan_index))
            return None
        if tag == _ERROR:
            _, core_id, worker_traceback = message
            # Leave no orphaned siblings behind the exception: a raise
            # out of any drain/gather path tears the whole pool down
            # first (terminate + close are both idempotent).
            self.terminate()
            self.close()
            raise ParallelExecutionError(
                f"worker {core_id} failed:\n{worker_traceback}",
                core_id=core_id,
                partial_stats=dict(results) if results else {})
        # _DONE
        _, core_id, stats = message
        if results is not None:
            results[core_id] = stats
        return core_id

    def restart(self, core_id: int,
                suppressed: Tuple[int, ...]) -> None:
        """Replace a dead worker with a fresh process on a fresh input
        queue (anything unread in the old queue is covered by the
        supervisor's redo log). ``suppressed`` lists the plan indices
        of worker faults that already fired, so the restarted worker
        does not re-fire them."""
        old_queue = self.in_queues[core_id]
        old_queue.cancel_join_thread()
        old_queue.close()
        # Re-seed the replacement at the rung its predecessor last
        # acknowledged: a crash mid-overload must not silently reopen
        # the admission gate.
        rung = self.supervisor.last_rung(core_id) \
            if self.supervisor is not None else 0
        # Multi-tenant cores restart at the table state they last
        # acknowledged; bumps past that epoch are still in the redo log
        # and re-apply (idempotently) during replay.
        tenancy = self.specs[core_id].tenancy
        if tenancy is not None and self.supervisor is not None:
            tenancy = _tenancy_state(
                self._tenancy_base, self.tenancy_bumps,
                self.supervisor.last_epoch(core_id))
        spec = dataclasses.replace(self.specs[core_id],
                                   suppressed_faults=tuple(suppressed),
                                   initial_overload_rung=rung,
                                   tenancy=tenancy)
        self.specs[core_id] = spec
        if self.transport is not None:
            in_queue = self._ctx.Queue()
            # Fresh ordinal space for the replacement: zero the ring and
            # credit counter, reclaim every in-flight slot (the dead
            # worker will never retire them; the redo log owns their
            # contents and replays them into fresh slots). The old
            # control queue was discarded above — its unread CTRL
            # payloads matched ring entries that no longer exist.
            self.transport.reset_core(core_id)
        else:
            in_queue = self._ctx.Queue(
                maxsize=spec.config.parallel_queue_depth)
        self.in_queues[core_id] = in_queue
        process = self._ctx.Process(
            target=_worker_main,
            args=(spec, in_queue, self.out_queue),
            daemon=True,
            name=f"repro-core-{core_id}-restart",
        )
        self.processes[core_id] = process
        process.start()

    def terminate(self) -> None:
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        for process in self.processes:
            if process.pid is not None:
                process.join(timeout=_POLL_TIMEOUT)

    def close(self) -> None:
        # The input queues' feeder threads may hold buffered batches a
        # dead worker will never read; never block interpreter exit on
        # flushing them.
        if self._closed:
            return
        self._closed = True
        for in_queue in self.in_queues:
            in_queue.cancel_join_thread()
            in_queue.close()
        self.out_queue.cancel_join_thread()
        self.out_queue.close()
        if self.transport is not None:
            # Unlink the segments (workers are gone or exiting; their
            # mappings die with them). The transport object stays so
            # backend_health() can still read its volatile counters
            # after the pool context exits.
            self.transport.close()

    def __enter__(self) -> "_WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.terminate()
        self.close()
        return False


def _await_planned_fault(pool: _WorkerPool, sup: WorkerSupervisor,
                         core: int, plan_index: int, kind: str) -> None:
    """Block until the planned fault just triggered on ``core``
    manifests, draining (and handling) other workers' messages
    meanwhile. For a crash, the worker's flushed ``_CRASHED``
    announcement is the signal — it arrives after every ack the worker
    sent, so the redo log is exactly the unprocessed batches. For a
    hang, the signal is silence past the heartbeat deadline."""
    if kind == "worker_crash":
        while (core, plan_index) not in pool.crashed:
            try:
                message = pool.out_queue.get(timeout=_POLL_TIMEOUT)
            except queue_mod.Empty:
                if not pool.processes[core].is_alive():
                    break  # died without managing the announcement
                continue
            pool._handle(message, None)
        pool.crashed.discard((core, plan_index))
        return
    # worker_hang: wait out the heartbeat deadline, resetting it on any
    # sign of life from the core (acks from batches before the hang).
    poll = min(0.05, sup.heartbeat_timeout / 4)
    while sup.silent_for(core) < sup.heartbeat_timeout:
        try:
            message = pool.out_queue.get(timeout=poll)
        except queue_mod.Empty:
            continue
        pool._handle(message, None)


def _recover_core(pool: _WorkerPool, sup: WorkerSupervisor, core: int,
                  plan_index: Optional[int],
                  finish=None, hung: bool = False) -> None:
    """Reap a crashed/hung worker and either restart it (backoff,
    fresh process, redo-log replay) or declare the core lost.

    ``hung`` is True when the worker is alive-but-stuck and must be
    terminated. A *crashed* worker is never signalled: it is already
    exiting on its own, and a SIGTERM racing its final result-queue
    flush can kill it while it holds the shared queue's write lock —
    deadlocking every sibling's pending message. Joining is safe;
    terminating mid-write is not."""
    process = pool.processes[core]
    if hung and process.is_alive():
        # A sleeping worker holds no queue locks (its last acks were
        # long flushed — that silence is what detected the hang).
        process.terminate()
    process.join(timeout=_POLL_TIMEOUT)
    if process.is_alive():  # ignored SIGTERM / never exited: last resort
        process.kill()
        process.join(timeout=_POLL_TIMEOUT)
    decision = sup.on_failure(core, plan_index)
    if decision is None:
        return  # restart budget exhausted: degraded completion
    backoff, replay, suppressed = decision
    if backoff > 0:
        time.sleep(backoff)
    pool.restart(core, suppressed)
    for seq, batch in replay:
        # A replayed batch can itself carry the *next* planned fault
        # (e.g. two crashes at the same sequence number). Recover
        # synchronously here too, or the crash lands asynchronously
        # under later dispatches. The recursive call re-reads the redo
        # log, so the remaining replays are not lost.
        fault = None
        if sup.plan is not None:
            fault = sup.plan.worker_fault_at(core, seq, suppressed)
        pool.send(core, (_BATCH_SEQ, seq, batch))
        if fault is not None:
            next_index, spec = fault
            _await_planned_fault(pool, sup, core, next_index, spec.kind)
            _recover_core(pool, sup, core, next_index, finish=finish,
                          hung=spec.kind == "worker_hang")
            return
    if finish is not None:
        pool.send(core, finish)


def _gather_supervised(pool: _WorkerPool, sup: WorkerSupervisor,
                       finish) -> Dict[int, CoreStats]:
    """Supervised final gather: workers that die before reporting are
    recovered (restart + replay + re-finish) or declared lost."""
    results: Dict[int, CoreStats] = {}
    remaining = {core for core in range(len(pool.processes))
                 if not sup.is_lost(core)}
    while remaining:
        try:
            message = pool.out_queue.get(timeout=0.25)
        except queue_mod.Empty:
            for core in list(remaining):
                if not pool.processes[core].is_alive():
                    _recover_core(pool, sup, core, None, finish=finish)
                    if sup.is_lost(core):
                        remaining.discard(core)
            continue
        core_id = pool._handle(message, results)
        if core_id is not None:
            remaining.discard(core_id)
        while pool.crashed:
            core, plan_index = pool.crashed.pop()
            _recover_core(pool, sup, core, plan_index, finish=finish)
            if sup.is_lost(core):
                remaining.discard(core)
    return results


def run_parallel(
    runtime: "Runtime",
    traffic: Iterable[Mbuf],
    drain: bool = True,
    memory_sample_interval: float = 1.0,
    monitor=None,
    packet_injector: Optional["PacketFaultInjector"] = None,
) -> "RuntimeReport":
    """Execute ``runtime``'s subscription over ``traffic`` on one OS
    process per core. See the module docstring for the contract.

    ``packet_injector`` is the parent-side fault injector whose
    injection counts feed the fault report (the traffic iterable is
    already wrapped by :meth:`Runtime.run`).
    """
    from repro.core.runtime import RuntimeReport

    config = runtime.config
    cores = config.cores
    batch_size = config.parallel_batch_size
    # The evict/shed policies are enforced inside the workers at sample
    # cadence; only the historical "record" policy stops the run here.
    memory_limit = config.memory_limit_bytes \
        if config.memory_policy == "record" else None
    plan = config.fault_plan

    # Progress reports are only needed for live monitoring and the OOM
    # check; without either, workers skip the reporting IPC entirely.
    progress_needs = []
    if monitor is not None:
        progress_needs.append(monitor.interval)
    if memory_limit is not None:
        progress_needs.append(memory_sample_interval)
    # Failfast is parent-enforced at progress cadence (approximate,
    # like oom_at — see the module docstring's caveats).
    ff_possible = config.overload_policy == "failfast" or (
        config.overload_policy == "ladder"
        and config.overload_max_rung >= 4)
    if ff_possible:
        progress_needs.append(config.overload_eval_interval)
    progress_interval = min(progress_needs) if progress_needs else None

    pool = _WorkerPool(runtime, progress_interval)
    supervisor: Optional[WorkerSupervisor] = None
    if config.supervise or (plan is not None and plan.has_worker_faults):
        supervisor = WorkerSupervisor(
            cores, plan, config.max_worker_restarts,
            config.redo_log_batches, config.worker_heartbeat_timeout)
        pool.supervisor = supervisor
    view_runtime = _RuntimeView(runtime.nics, pool.views)

    send = pool.send
    pack = PackedBatch.pack
    shm_on = pool.transport is not None
    # Span context stamping: when burst span tracing is on, every packed
    # batch carries (queue, seq) so the worker's burst trees stitch into
    # the parent's trace. Supervised dispatch reuses the supervisor's
    # sequence numbers; unsupervised dispatch counts its own.
    spans_on = config.span_sample > 0 or config.flight_recorder_depth > 0
    if supervisor is None:
        if shm_on:
            # Zero-copy fast path: mbufs are written straight into a
            # mempool slot — no PackedBatch object, no pickle. The span
            # context rides the slot header when tracing is on.
            send_mbufs = pool.send_mbufs
            if spans_on:
                span_seq = [0] * cores

                def dispatch(queue_id: int, batch: List[Mbuf]) -> None:
                    ctx = (queue_id, span_seq[queue_id])
                    span_seq[queue_id] += 1
                    send_mbufs(queue_id, batch, ctx)
            else:
                def dispatch(queue_id: int, batch: List[Mbuf]) -> None:
                    send_mbufs(queue_id, batch, None)
        elif spans_on:
            span_seq = [0] * cores

            def dispatch(queue_id: int, batch: List[Mbuf]) -> None:
                packed = pack(batch, queue_id)
                packed.trace_ctx = (queue_id, span_seq[queue_id])
                span_seq[queue_id] += 1
                send(queue_id, (_BATCH, packed))
        else:
            def dispatch(queue_id: int, batch: List[Mbuf]) -> None:
                send(queue_id, (_BATCH, pack(batch, queue_id)))
    else:
        def dispatch(queue_id: int, batch: List[Mbuf]) -> None:
            if supervisor.is_lost(queue_id):
                return  # dead RX queue: its share of traffic is lost
            # The redo log stores the *packed* batch, so a replay after
            # a crash re-sends the identical flat buffer (same span
            # context too: a replayed burst keeps its original seq).
            packed = pack(batch, queue_id)
            seq, fault = supervisor.on_dispatch(queue_id, packed)
            if spans_on:
                packed.trace_ctx = (queue_id, seq)
            send(queue_id, (_BATCH_SEQ, seq, packed))
            if fault is not None:
                # Planned fault: pause this core's dispatch until the
                # fault manifests and recovery completes, so the replay
                # set (and the whole fault report) is deterministic.
                plan_index, spec = fault
                _await_planned_fault(pool, supervisor, queue_id,
                                     plan_index, spec.kind)
                _recover_core(pool, supervisor, queue_id, plan_index,
                              hung=spec.kind == "worker_hang")

    def skip_core(queue_id: int) -> bool:
        return supervisor is not None and supervisor.is_lost(queue_id)

    # Adaptive batch sizing (shm transport only): grow a queue's batch
    # size toward the clamp while its ring runs deep (the worker is the
    # bottleneck — bigger bursts amortize per-batch overhead), shrink
    # back toward the configured size when the ring runs shallow
    # (latency pressure: small bursts reach the worker sooner). Resizes
    # happen only at burst ordinals divisible by _RESIZE_INTERVAL and
    # stats are batch-size invariant, so the volatile depth signal never
    # leaks into AggregateStats. Disabled under supervision (planned
    # fault seqs are pinned to batch contents) and span tracing (span
    # trees key on burst boundaries).
    sizes = [batch_size] * cores
    if (shm_on and config.ipc_adaptive_batch
            and supervisor is None and not spans_on):
        max_batch = shm_mod.max_adaptive_batch(config)
        channels = pool.transport.channels
        ring_size = pool.transport.layout.ring_size
        grow_at = ring_size - max(1, ring_size // 4)
        shrink_at = max(1, ring_size // 4)
        bursts = [0] * cores
        inner_dispatch = dispatch

        def dispatch(queue_id: int, batch: List[Mbuf]) -> None:
            inner_dispatch(queue_id, batch)
            n = bursts[queue_id] + 1
            bursts[queue_id] = n
            if n % _RESIZE_INTERVAL:
                return
            depth = channels[queue_id].depth()
            size = sizes[queue_id]
            if depth >= grow_at and size < max_batch:
                sizes[queue_id] = min(size * 2, max_batch)
            elif depth <= shrink_at and size > batch_size:
                sizes[queue_id] = max(size // 2, batch_size)

    # Multi-tenant live reconfiguration: the runtime exposes scheduled
    # events; when virtual time reaches one, the feeder flushes every
    # pending batch (so pre-event packets classify under the old table),
    # applies the event to the parent's table, and broadcasts the new
    # epoch on an empty stamped batch to every queue. Per-queue FIFO
    # then guarantees each worker swaps on exactly that burst boundary.
    publish_due = getattr(runtime, "publish_tenancy_events", None)
    next_event_ts: Optional[float] = \
        runtime.next_reconfigure_ts if publish_due is not None else None

    def send_bump(epoch_no: int, actions: tuple) -> None:
        pool.tenancy_bumps.append((epoch_no, actions))
        for queue_id in range(cores):
            if skip_core(queue_id):
                continue
            packed = pack([], queue_id)
            packed.epoch = (epoch_no, actions)
            if supervisor is None:
                send(queue_id, (_BATCH, packed))
                continue
            # Bumps ride the supervised sequence space like any batch:
            # redo-logged (a crash mid-swap replays the bump) and able
            # to carry a planned worker fault at their own seq, which
            # is how the crash-during-swap tests pin the fault to the
            # swap window deterministically.
            seq, fault = supervisor.on_dispatch(queue_id, packed)
            send(queue_id, (_BATCH_SEQ, seq, packed))
            if fault is not None:
                plan_index, fspec = fault
                _await_planned_fault(pool, supervisor, queue_id,
                                     plan_index, fspec.kind)
                _recover_core(pool, supervisor, queue_id, plan_index,
                              hung=fspec.kind == "worker_hang")

    oom_at: Optional[float] = None
    failfast_at: Optional[float] = None
    with pool:
        nics = runtime.nics
        nic0 = nics[0]
        num_nics = len(nics)
        frag = runtime.fragment_reassembler
        pending: List[List[Mbuf]] = [[] for _ in range(cores)]
        next_monitor_ts: Optional[float] = \
            None if monitor is not None else float("inf")
        next_memory_ts = float("inf")
        next_ff_ts = float("inf")
        first = runtime._first_ts is None
        # Columnar ingress (mirrors the sequential backend): bulk-decode
        # header columns per burst so RSS dispatch skips the per-packet
        # stack parse. Same gate, same lazy per-packet interleaving —
        # worker-side processing is untouched, so the shards (and all
        # counters) stay byte-identical to the scalar feeder.
        use_columnar = (config.columnar and frag is None
                        and all(n.supports_columnar() for n in nics))
        if use_columnar:
            for mbuf, queue in columnar_dispatch(traffic, nics,
                                                 batch_size):
                ts = mbuf.timestamp
                if first:
                    first = False
                    if runtime._first_ts is None:
                        runtime._first_ts = ts
                        runtime._last_memory_sample = ts
                        next_memory_ts = ts + memory_sample_interval
                    if ff_possible:
                        next_ff_ts = ts + config.overload_eval_interval
                if ts > runtime._last_ts:
                    runtime._last_ts = ts
                if next_event_ts is not None and ts >= next_event_ts:
                    # Swap before this packet: flush, publish, bump.
                    for qid, queued in enumerate(pending):
                        if queued:
                            dispatch(qid, queued)
                            pending[qid] = []
                    for epoch_no, actions in publish_due(ts):
                        send_bump(epoch_no, actions)
                    next_event_ts = runtime.next_reconfigure_ts
                if queue is not None:
                    queued = pending[queue]
                    queued.append(mbuf)
                    if len(queued) >= sizes[queue]:
                        dispatch(queue, queued)
                        pending[queue] = []
                if next_monitor_ts is None or ts >= next_monitor_ts:
                    pool.drain_progress()
                    monitor.observe(view_runtime, ts)
                    next_monitor_ts = ts + monitor.interval
                if ts >= next_memory_ts:
                    next_memory_ts = ts + memory_sample_interval
                    runtime._last_memory_sample = ts
                    for queue, queued in enumerate(pending):
                        if queued:
                            dispatch(queue, queued)
                            pending[queue] = []
                    for queue in range(cores):
                        if not skip_core(queue):
                            send(queue, (_SAMPLE,))
                    if memory_limit is not None:
                        pool.drain_progress()
                        if view_runtime.memory_bytes > memory_limit:
                            oom_at = ts
                            break
                if ts >= next_ff_ts:
                    next_ff_ts = ts + config.overload_eval_interval
                    pool.drain_progress()
                    tripped = view_runtime.overload_failfast_at
                    if tripped is not None:
                        failfast_at = tripped
                        break
            traffic = ()  # fully consumed (or aborted) above
        for mbuf in traffic:
            ts = mbuf.timestamp
            if first:
                first = False
                if runtime._first_ts is None:
                    runtime._first_ts = ts
                    runtime._last_memory_sample = ts
                    next_memory_ts = ts + memory_sample_interval
                if ff_possible:
                    next_ff_ts = ts + config.overload_eval_interval
            if ts > runtime._last_ts:
                runtime._last_ts = ts
            if next_event_ts is not None and ts >= next_event_ts:
                # Swap before this packet: flush, publish, bump.
                for qid, queued in enumerate(pending):
                    if queued:
                        dispatch(qid, queued)
                        pending[qid] = []
                for epoch_no, actions in publish_due(ts):
                    send_bump(epoch_no, actions)
                next_event_ts = runtime.next_reconfigure_ts
            if frag is not None:
                mbuf = frag.push(mbuf)
                if mbuf is None:
                    continue  # fragment held pending completion
            port = mbuf.port
            nic = nics[port] if 0 < port < num_nics else nic0
            queue = nic.receive(mbuf)
            if queue is not None:
                queued = pending[queue]
                queued.append(mbuf)
                if len(queued) >= sizes[queue]:
                    dispatch(queue, queued)
                    pending[queue] = []
            if next_monitor_ts is None or ts >= next_monitor_ts:
                pool.drain_progress()
                monitor.observe(view_runtime, ts)
                next_monitor_ts = ts + monitor.interval
            if ts >= next_memory_ts:
                next_memory_ts = ts + memory_sample_interval
                runtime._last_memory_sample = ts
                # Parent-clocked sample point: flush every queue's
                # pending batch, then tell each worker to sample.
                # Per-queue FIFO makes this equivalent to the
                # sequential backend's flush-then-_sample_memory.
                for queue, queued in enumerate(pending):
                    if queued:
                        dispatch(queue, queued)
                        pending[queue] = []
                for queue in range(cores):
                    if not skip_core(queue):
                        send(queue, (_SAMPLE,))
                if memory_limit is not None:
                    pool.drain_progress()
                    if view_runtime.memory_bytes > memory_limit:
                        oom_at = ts
                        break
            if ts >= next_ff_ts:
                next_ff_ts = ts + config.overload_eval_interval
                # A tripped worker reports failfast_at in its progress
                # tuple; stop feeding traffic as soon as any core says
                # so (approximate cutoff, like oom_at).
                pool.drain_progress()
                tripped = view_runtime.overload_failfast_at
                if tripped is not None:
                    failfast_at = tripped
                    break
        # Ship the stragglers, then tell every worker to wrap up. On
        # OOM or failfast the workers neither advance time nor drain,
        # matching the sequential backend's early exit.
        if oom_at is None and failfast_at is None:
            for queue, queued in enumerate(pending):
                if queued:
                    dispatch(queue, queued)
            finish = (_FINISH, runtime._last_ts, drain)
        else:
            finish = (_FINISH, None, False)
        for queue in range(cores):
            if not skip_core(queue):
                send(queue, finish)
        if supervisor is None:
            core_stats = pool.gather()
        else:
            core_stats = _gather_supervised(pool, supervisor, finish)

    stats = runtime.aggregate(
        core_stats=[core_stats[c] for c in sorted(core_stats)])
    if monitor is not None:
        # Refresh the views from the workers' final exact snapshots so
        # the tail sample isn't built from stale progress reports, then
        # flush the final partial interval.
        for core_id in sorted(core_stats):
            final = core_stats[core_id]
            last_sample = final.memory_samples[-1] \
                if final.memory_samples else (0.0, 0, 0)
            ledger = final.overload
            pool.views[core_id].update(
                final.callbacks, last_sample[1], last_sample[2],
                final.ledger.busy_seconds, final.pf_packets,
                final.connf_packets, final.sessf_packets,
                ledger.current_rung if ledger is not None else 0,
                ledger.packets_shed if ledger is not None else 0,
                ledger.failfast_at if ledger is not None else None)
        monitor.finalize(runtime._last_ts, view_runtime)
    overload = None
    if config.overload_policy != "off":
        from repro.overload import merge_ledgers

        overload = merge_ledgers(
            core_stats[c].overload for c in sorted(core_stats))
        if overload is not None and overload.failfast_at is not None:
            # The workers' exact trip times override the parent's
            # progress-cadence approximation.
            failfast_at = overload.failfast_at
    faults = build_fault_report(
        config, core_stats, packet_injector,
        supervisor.summary() if supervisor is not None else None)
    spans = None
    if spans_on:
        from repro.telemetry.spans import build_span_report

        # Parent-side supervisor events (worker crash/restart) join the
        # workers' own trigger events; each synthesizes a flight dump
        # from that core's surviving ring.
        spans = build_span_report(
            [core_stats[c] for c in sorted(core_stats)],
            supervisor.failure_events if supervisor is not None else None,
            config.cost_model.cpu_hz,
            nic=[n.stats.to_dict() for n in runtime.nics])
    return RuntimeReport(stats=stats, oom_at=oom_at,
                         backend_health=pool.backend_health(),
                         faults=faults, core_stats=core_stats,
                         overload=overload, spans=spans)
