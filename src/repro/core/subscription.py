"""Subscriptions: filter + data type + callback, and the derived
processing plan (which layers run, which parsers probe).

This is the compile-time "Subscription" box of Figure 2: from the
filter's decomposition and the data type's metadata, Retina derives how
much of the pipeline each connection needs — whether packets can
short-circuit to the callback, whether connections must be tracked,
which protocols to probe for, and what happens to a connection after a
session matches or fails the filter (Figure 4's transitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Set, Type

from repro.core.datatypes import Level, SUBSCRIBABLES
from repro.errors import SubscriptionError
from repro.filter import CompiledFilter, compile_filter
from repro.filter.fields import FieldRegistry, DEFAULT_REGISTRY
from repro.filter.hardware import NicCapabilities
from repro.protocols.registry import ParserRegistry, default_parser_registry


class Subscription:
    """A compiled subscription: what to deliver, filtered how."""

    def __init__(
        self,
        filter_str: str,
        datatype,
        callback: Callable,
        filter_mode: str = "codegen",
        nic: Optional[NicCapabilities] = None,
        field_registry: FieldRegistry = DEFAULT_REGISTRY,
        parser_registry: Optional[ParserRegistry] = None,
        identify_services: bool = False,
    ) -> None:
        if isinstance(datatype, str):
            try:
                datatype = SUBSCRIBABLES[datatype]
            except KeyError:
                raise SubscriptionError(
                    f"unknown subscribable type '{datatype}'; known: "
                    f"{sorted(SUBSCRIBABLES)}"
                ) from None
        self.datatype: Type = datatype
        self.callback = callback
        self.level: Level = datatype.level
        self.filter: CompiledFilter = compile_filter(
            filter_str, registry=field_registry, mode=filter_mode, nic=nic
        )
        self.parser_registry = parser_registry or default_parser_registry()
        #: Probe every registered parser even when neither the filter
        #: nor the data type requires one — for profiling-style
        #: subscriptions that want the L7 service labeled on every
        #: connection record (at the probing cost that implies).
        self.identify_services = identify_services
        self._validate()

    def _validate(self) -> None:
        filter_apps = self.filter.app_protocols
        datatype_apps = set(self.datatype.app_parsers)
        if datatype_apps and filter_apps and not (
            filter_apps & datatype_apps
        ):
            raise SubscriptionError(
                f"filter constrains protocols {sorted(filter_apps)} but the "
                f"subscribed type only produces {sorted(datatype_apps)}: "
                f"the subscription can never fire"
            )
        for proto in self.probe_protocols:
            if proto not in self.parser_registry:
                raise SubscriptionError(
                    f"no parser registered for '{proto}'"
                )

    # -- derived plan ---------------------------------------------------------
    @property
    def probe_protocols(self) -> Set[str]:
        """Protocols the connection tracker must probe for.

        The union of what the filter constrains and what the data type
        needs — restricted to the data type's protocols when it has
        them (probing for anything else could never be delivered).
        """
        filter_apps = self.filter.app_protocols
        datatype_apps = set(self.datatype.app_parsers)
        if datatype_apps:
            return datatype_apps
        if filter_apps:
            return filter_apps
        if self.identify_services:
            return set(self.parser_registry.protocols())
        return set()

    @property
    def needs_conntrack(self) -> bool:
        """Stateful processing needed? (Section 5.2's dispatch rule:
        connection/session subscriptions always; packet subscriptions
        only when the filter reaches past the packet layer.)"""
        if self.level is not Level.PACKET:
            return True
        return self.filter.needs_connection_layer

    @property
    def needs_probe(self) -> bool:
        return bool(self.probe_protocols)

    @property
    def streams_bytes(self) -> bool:
        """True for the byte-stream subscribable: in-order payload is
        itself the delivered data."""
        return getattr(self.datatype, "streams_bytes", False)

    @property
    def needs_reassembly(self) -> bool:
        """In-order payload needed? To probe/parse L7 protocols, or as
        the subscription data itself (byte streams)."""
        return self.needs_probe or self.streams_bytes

    @property
    def buffers_packets(self) -> bool:
        """Packet-level subscription gated on conn/session filters must
        buffer packets until the filter resolves (Figure 4a)."""
        return self.level is Level.PACKET and self.needs_conntrack

    def __repr__(self) -> str:
        return (
            f"Subscription({self.filter.text!r}, "
            f"datatype={self.datatype.__name__})"
        )
