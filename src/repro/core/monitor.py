"""Real-time monitoring (Section 5.3).

Retina "provides logs and real-time monitoring of packet loss,
throughput, and memory usage that can be used as feedback to adjust
the filter or improve callback efficiency". :class:`StatsMonitor`
implements that feedback channel for the reproduction: attached to a
:class:`~repro.core.runtime.Runtime`, it snapshots the pipeline at a
fixed virtual-time cadence and renders the paper's suggested signals —
ingress rate, implied packet loss, callback rate, live connections,
resident memory, and the filter funnel's per-interval survivors.

Both backends feed it: the sequential runtime passes itself, the
parallel backend passes a view assembled from worker progress reports.
At end of run the runtime calls :meth:`StatsMonitor.finalize` so the
final partial interval is recorded rather than silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class MonitorSample:
    """One snapshot of the running pipeline."""

    timestamp: float
    interval: float
    ingress_packets: int
    ingress_bytes: int
    interval_gbps: float
    callbacks: int
    live_connections: int
    memory_bytes: int
    busy_fraction: float  # busiest core's cycle demand / capacity
    # Filter-funnel survivors this interval: packets past the software
    # packet filter, the connection filter, and the full filter.
    pf_packets: int = 0
    connf_packets: int = 0
    sessf_packets: int = 0
    # Overload ladder: highest rung held by any core at snapshot time,
    # and packets shed by admission control this interval.
    overload_rung: int = 0
    shed_packets: int = 0

    @property
    def loss_fraction(self) -> float:
        """Implied packet loss: a core over 100% busy is dropping."""
        if self.busy_fraction <= 1.0:
            return 0.0
        return 1.0 - 1.0 / self.busy_fraction

    def format(self) -> str:
        loss = self.loss_fraction
        line = (
            f"[{self.timestamp:9.3f}s] {self.interval_gbps:7.3f} Gbps  "
            f"pkts={self.ingress_packets}  "
            f"funnel={self.pf_packets}/{self.connf_packets}"
            f"/{self.sessf_packets}  cb={self.callbacks}  "
            f"conns={self.live_connections}  "
            f"mem={self.memory_bytes / 1e6:.1f}MB  "
            f"busy={self.busy_fraction * 100:5.1f}%  "
            f"loss={'%.2f%%' % (loss * 100) if loss else '0'}"
        )
        if self.overload_rung or self.shed_packets:
            line += f"  rung={self.overload_rung}" \
                    f" shed={self.shed_packets}"
        return line


class StatsMonitor:
    """Periodic pipeline snapshots with optional live emission."""

    def __init__(
        self,
        interval: float = 1.0,
        emit: Optional[Callable[[str], None]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._emit = emit
        self.samples: List[MonitorSample] = []
        self._last_ts: Optional[float] = None
        self._last_packets = 0
        self._last_bytes = 0
        self._last_callbacks = 0
        self._last_busy = 0.0
        self._last_pf = 0
        self._last_connf = 0
        self._last_sessf = 0
        self._last_shed = 0

    def observe(self, runtime, now: float) -> None:
        """Called by the runtime; snapshots when the interval elapsed."""
        if self._last_ts is None:
            self._last_ts = now
            return
        if now - self._last_ts < self.interval:
            return
        self._snapshot(runtime, now)

    def finalize(self, now: float, runtime) -> None:
        """End of run: record the final partial interval (if any time
        elapsed since the last snapshot), whatever its length."""
        if self._last_ts is None or now <= self._last_ts:
            return
        self._snapshot(runtime, now)

    def _snapshot(self, runtime, now: float) -> None:
        elapsed = now - self._last_ts
        received_packets = sum(n.stats.received_packets
                               for n in runtime.nics)
        received_bytes = sum(n.stats.received_bytes for n in runtime.nics)
        callbacks = sum(p.stats.callbacks for p in runtime.pipelines)
        pf = sum(p.stats.pf_packets for p in runtime.pipelines)
        connf = sum(p.stats.connf_packets for p in runtime.pipelines)
        sessf = sum(p.stats.sessf_packets for p in runtime.pipelines)
        busiest = max(
            (p.stats.ledger.busy_seconds for p in runtime.pipelines),
            default=0.0,
        )
        # Pipelines without the overload ladder lack these attributes
        # (and so do older parallel views) — default to quiet.
        rung = max((getattr(p, "overload_rung", 0)
                    for p in runtime.pipelines), default=0)
        shed = sum(getattr(p, "overload_shed_packets", 0)
                   for p in runtime.pipelines)
        sample = MonitorSample(
            timestamp=now,
            interval=elapsed,
            ingress_packets=received_packets - self._last_packets,
            ingress_bytes=received_bytes - self._last_bytes,
            interval_gbps=(received_bytes - self._last_bytes) * 8
            / elapsed / 1e9,
            callbacks=callbacks - self._last_callbacks,
            live_connections=runtime.live_connections,
            memory_bytes=runtime.memory_bytes,
            busy_fraction=(busiest - self._last_busy) / elapsed,
            pf_packets=pf - self._last_pf,
            connf_packets=connf - self._last_connf,
            sessf_packets=sessf - self._last_sessf,
            overload_rung=rung,
            shed_packets=shed - self._last_shed,
        )
        self.samples.append(sample)
        if self._emit is not None:
            self._emit(sample.format())
        self._last_ts = now
        self._last_packets = received_packets
        self._last_bytes = received_bytes
        self._last_callbacks = callbacks
        self._last_busy = busiest
        self._last_pf = pf
        self._last_connf = connf
        self._last_sessf = sessf
        self._last_shed = shed

    # -- feedback signals (Section 5.3's tuning loop) ------------------------
    @property
    def sustained_loss(self) -> bool:
        """True if the last three samples all imply packet loss — the
        paper's cue to buffer writes, add cores, or narrow the filter.
        A single lossy interval (one burst) is not "sustained": fewer
        than three samples never qualify."""
        recent = self.samples[-3:]
        return len(recent) >= 3 and \
            all(s.loss_fraction > 0 for s in recent)

    def peak_memory(self) -> int:
        return max((s.memory_bytes for s in self.samples), default=0)

    def log_lines(self) -> List[str]:
        return [s.format() for s in self.samples]
