"""Shared-memory mempool + ring transport for the parallel backend.

Retina's 100GbE numbers rest on DPDK's zero-copy mempools and lockless
rings: the NIC DMA-writes bursts into pre-allocated mbuf slots and the
core pipelines consume descriptors, never copies. This module is the
reproduction's process-boundary analogue, replacing the pickled
``multiprocessing.Queue`` hot path of PR 1/5:

- a **mempool** of fixed pre-allocated batch slots per core inside one
  ``multiprocessing.shared_memory`` segment — the feeder writes the
  full :class:`~repro.packet.batch.PackedBatch` wire layout in place
  (:func:`~repro.packet.batch.slot_write_mbufs` /
  ``slot_write_packed``) and the worker maps it back read-only with
  ``memoryview`` blobs (:func:`~repro.packet.batch.slot_read`) — no
  pickle, no pipe copy, on either side;
- a per-core **SPSC descriptor ring** whose entries are a single
  aligned 8-byte word packing (kind, slot index, row count, seq tag),
  so publication is one store and the consumer can never observe a
  torn multi-field descriptor;
- **credit-based slot recycling**: the worker publishes a cumulative
  consumed-ordinal counter (one u64 in the segment) after each
  descriptor it retires; a slot returns to the feeder's free pool
  exactly when the counter passes the entry that carried it;
- an ordered **control path** for everything that is not a hot batch
  (memory samples, FINISH, epoch bumps, oversize fallback batches): a
  CTRL descriptor keeps the event's exact position in the ring order
  while its payload rides the retained pickle queue, so the strict
  per-core FIFO the parent-clocked memory sampling and tenancy epoch
  swaps rely on survives the split into two channels.

Descriptor word layout (little-endian u64)::

    bits 60-63  kind      (0 = empty, 1 = batch, 2 = control, 3 = sample)
    bits 40-59  rows      (batch row count; 0 for control/sample)
    bits 24-39  slot      (mempool slot index; 0 for control/sample)
    bits  0-23  tag       (consumer ordinal & 0xFFFFFF: lap validation)

The consumer at ordinal *i* reads ring position ``i % ring_size`` and
accepts the word only when ``kind != 0`` and the tag matches
``i & 0xFFFFFF`` — a stale entry from the previous lap carries the tag
of ordinal ``i - ring_size`` and is rejected, so the ring needs no
explicit clear between laps.

Everything here is deliberately dependency-free and importable by
worker processes; platforms without ``multiprocessing.shared_memory``
(or without a usable ``/dev/shm``) fall back to the queue transport
(``RuntimeConfig.ipc_transport = "auto"``).
"""

from __future__ import annotations

import itertools
import os
import struct
import time
from collections import deque
from typing import Callable, List, Optional, Sequence, Tuple

from repro.packet.batch import PackedBatch, slot_read, slot_write_mbufs, \
    slot_write_packed

try:  # pragma: no cover - import guard exercised via shm_available()
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - python built without _posixshmem
    _shared_memory = None

#: Descriptor kinds (bits 60-63 of the ring word).
KIND_BATCH = 1
KIND_CTRL = 2
KIND_SAMPLE = 3

_U64 = struct.Struct("<Q")
_TAG_MASK = 0xFFFFFF

#: Segment offsets: the consumed counter lives in its own cache line,
#: the ring starts at the next one, and slots are page-aligned.
_RING_BASE = 64
_PAGE = 4096

#: How long the feeder sleeps between capacity polls while every ring
#: entry (and therefore every slot) is in flight, and how long it may
#: wait in total before re-checking worker liveness.
_WAIT_SLEEP = 0.0002
_LIVENESS_EVERY = 0.25


def shm_available() -> bool:
    """True when this platform can host the shared-memory transport."""
    return _shared_memory is not None


_name_counter = itertools.count()


def _segment_name(core_id: int) -> str:
    # Short (macOS caps shm names at ~30 chars) but unique per process
    # and per pool within the process.
    return f"rpr{os.getpid():x}c{core_id}n{next(_name_counter):x}"


class ShmLayout:
    """Geometry of one core's segment: ring + slot pool offsets."""

    __slots__ = ("ring_size", "slot_bytes", "slots_base", "total_bytes")

    def __init__(self, ring_size: int, slot_bytes: int) -> None:
        self.ring_size = ring_size
        self.slot_bytes = slot_bytes
        base = _RING_BASE + 8 * ring_size
        self.slots_base = (base + _PAGE - 1) // _PAGE * _PAGE
        self.total_bytes = self.slots_base + ring_size * slot_bytes

    def slot_offset(self, slot: int) -> int:
        return self.slots_base + slot * self.slot_bytes

    def wire(self) -> Tuple[int, int]:
        """The picklable layout parameters a worker spec carries."""
        return (self.ring_size, self.slot_bytes)


def default_layout(config) -> ShmLayout:
    """Size the pool from the runtime config.

    One slot per ring entry — ring capacity and slot availability are
    then the same backpressure condition, and the bound matches the
    queue transport's ``parallel_queue_depth`` (in batches). Slots are
    sized for the largest adaptive batch at a generous ~2 KiB/frame;
    bursts that still do not fit (jumbo-heavy traffic) fall back to the
    control channel per batch. tmpfs commits pages on first write, so
    unwritten slot capacity costs address space, not memory.
    """
    slot_bytes = config.ipc_slot_bytes
    if slot_bytes is None:
        slot_bytes = max(65536, max_adaptive_batch(config) * 2048)
    return ShmLayout(config.parallel_queue_depth, slot_bytes)


def max_adaptive_batch(config) -> int:
    """Upper clamp for adaptive batch growth (and slot sizing).

    Bounded by the descriptor's u16 row field; defaults to 4x the
    configured batch size.
    """
    limit = config.ipc_max_batch
    if limit is None:
        limit = 4 * config.parallel_batch_size
    return min(max(limit, config.parallel_batch_size), 0xFFFF)


class ShmFeederChannel:
    """Parent-side producer for one core: slot pool + descriptor ring.

    Single-producer by construction (only the feeder thread of the
    parent dispatches); the matching single consumer is the worker's
    :class:`ShmWorkerChannel`.
    """

    def __init__(self, core_id: int, layout: ShmLayout) -> None:
        self.core_id = core_id
        self.layout = layout
        self.name = _segment_name(core_id)
        self._shm = _shared_memory.SharedMemory(
            self.name, create=True, size=layout.total_bytes)
        self._buf = self._shm.buf
        # Zero the control region (consumed counter + ring words). The
        # kernel gives fresh segments zeroed pages, but reset() reuses
        # this for worker restarts, so do it explicitly.
        self._buf[:_RING_BASE + 8 * layout.ring_size] = \
            bytes(_RING_BASE + 8 * layout.ring_size)
        #: Next ring ordinal to publish.
        self.ordinal = 0
        self._consumed = 0
        self._free: deque = deque(range(layout.ring_size))
        #: (retire_ordinal, slot) for every slot-carrying entry in
        #: flight; a slot is free once consumed > retire_ordinal.
        self._in_flight: deque = deque()
        # -- volatile health counters (read by backend_health) ---------
        self.ring_highwater = 0
        self.slot_starvation_waits = 0
        self.slot_starvation_seconds = 0.0
        self.slot_bytes_written = 0

    # -- credit return -------------------------------------------------
    def _refresh_consumed(self) -> int:
        consumed = _U64.unpack_from(self._buf, 0)[0]
        if consumed != self._consumed:
            self._consumed = consumed
            in_flight = self._in_flight
            free = self._free
            while in_flight and in_flight[0][0] < consumed:
                free.append(in_flight.popleft()[1])
        return consumed

    def depth(self) -> int:
        """Ring entries published but not yet retired by the worker —
        the adaptive batch sizer's pressure signal."""
        return self.ordinal - self._refresh_consumed()

    def _wait_capacity(self, alive: Callable[[], bool],
                       on_block: Callable[[float], None]) -> None:
        """Block until the ring (== slot pool) has room.

        ``alive`` is polled so a dead worker surfaces as an error
        instead of a deadlock; ``on_block`` receives the seconds spent
        blocked (feeder backpressure accounting).
        """
        ring_size = self.layout.ring_size
        if self.ordinal - self._refresh_consumed() < ring_size:
            return
        self.slot_starvation_waits += 1
        blocked_from = time.monotonic()
        next_liveness = blocked_from + _LIVENESS_EVERY
        try:
            while self.ordinal - self._refresh_consumed() >= ring_size:
                time.sleep(_WAIT_SLEEP)
                now = time.monotonic()
                if now >= next_liveness:
                    next_liveness = now + _LIVENESS_EVERY
                    if not alive():
                        raise WorkerGone()
        finally:
            blocked = time.monotonic() - blocked_from
            self.slot_starvation_seconds += blocked
            on_block(blocked)

    # -- publishing ----------------------------------------------------
    def _publish(self, kind: int, slot: int, rows: int) -> None:
        ordinal = self.ordinal
        word = ((kind << 60) | (rows << 40) | (slot << 24)
                | (ordinal & _TAG_MASK))
        _U64.pack_into(self._buf, _RING_BASE
                       + 8 * (ordinal % self.layout.ring_size), word)
        self.ordinal = ordinal + 1
        depth = self.ordinal - self._consumed
        if depth > self.ring_highwater:
            self.ring_highwater = depth

    def send_mbufs(self, mbufs: Sequence, queue_id: int,
                   trace_ctx: Optional[tuple], alive, on_block) -> bool:
        """Write a burst straight into a free slot and publish it.

        Returns False when the burst does not fit a slot (the caller
        falls back to the control channel).
        """
        self._wait_capacity(alive, on_block)
        slot = self._free[0]
        written = slot_write_mbufs(
            self._buf, self.layout.slot_offset(slot),
            self.layout.slot_bytes, mbufs, queue_id, trace_ctx)
        if written < 0:
            return False
        self._free.popleft()
        self._in_flight.append((self.ordinal, slot))
        self.slot_bytes_written += written
        self._publish(KIND_BATCH, slot, len(mbufs))
        return True

    def send_packed(self, batch: PackedBatch, seq: int, alive,
                    on_block) -> bool:
        """Publish an already-packed batch (supervised dispatch and
        redo-log replay — the slot gets the identical wire contents the
        log preserved, under the batch's original seq)."""
        self._wait_capacity(alive, on_block)
        slot = self._free[0]
        written = slot_write_packed(
            self._buf, self.layout.slot_offset(slot),
            self.layout.slot_bytes, batch, seq)
        if written < 0:
            return False
        self._free.popleft()
        self._in_flight.append((self.ordinal, slot))
        self.slot_bytes_written += written
        self._publish(KIND_BATCH, slot, len(batch))
        return True

    def send_ctrl(self, alive, on_block) -> None:
        """Publish a control descriptor; the payload must already be on
        (or about to enter) the pickle control queue. The descriptor
        pins the payload's position in the per-core total order."""
        self._wait_capacity(alive, on_block)
        self._publish(KIND_CTRL, 0, 0)

    def send_sample(self, alive, on_block) -> None:
        """Publish a payload-less parent-clocked memory-sample point."""
        self._wait_capacity(alive, on_block)
        self._publish(KIND_SAMPLE, 0, 0)

    # -- lifecycle -----------------------------------------------------
    def reset(self) -> None:
        """Re-arm the channel for a restarted worker: zero the counter
        and ring, reclaim every in-flight slot (the dead worker will
        never retire them; the redo log owns their contents)."""
        self._buf[:_RING_BASE + 8 * self.layout.ring_size] = \
            bytes(_RING_BASE + 8 * self.layout.ring_size)
        self.ordinal = 0
        self._consumed = 0
        self._free = deque(range(self.layout.ring_size))
        self._in_flight = deque()

    def close(self) -> None:
        buf, self._buf = self._buf, None
        if buf is not None:
            buf.release()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported views remain
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class WorkerGone(Exception):
    """Raised out of a capacity wait when the worker died; the pool
    translates it into its usual ParallelExecutionError."""


class ShmWorkerChannel:
    """Worker-side consumer: attach by name, poll descriptors, map
    slots, publish consumed credits."""

    def __init__(self, name: str, ring_size: int,
                 slot_bytes: int) -> None:
        self._shm = _shared_memory.SharedMemory(name)
        self._buf = self._shm.buf
        self.layout = ShmLayout(ring_size, slot_bytes)

    def wait_descriptor(self, ordinal: int,
                        on_idle: Optional[Callable[[], None]] = None
                        ) -> Tuple[int, int, int]:
        """Spin-then-sleep until the entry for ``ordinal`` is published;
        returns ``(kind, slot, rows)``. ``on_idle`` fires once when the
        first poll misses (the ring is momentarily empty) — the worker
        hooks its coalesced-ack flush there, so acks drain whenever the
        feeder is not saturating the core."""
        buf = self._buf
        offset = _RING_BASE + 8 * (ordinal % self.layout.ring_size)
        tag = ordinal & _TAG_MASK
        unpack_from = _U64.unpack_from
        spins = 0
        sleep = _WAIT_SLEEP / 4
        while True:
            word = unpack_from(buf, offset)[0]
            if (word >> 60) and (word & _TAG_MASK) == tag:
                return ((word >> 60) & 0xF, (word >> 24) & 0xFFFF,
                        (word >> 40) & 0xFFFFF)
            spins += 1
            if spins == 1 and on_idle is not None:
                on_idle()
            if spins > 100:
                time.sleep(sleep)
                if sleep < 0.002:
                    sleep *= 2

    def read_batch(self, slot: int) -> Tuple[PackedBatch, int]:
        """Map the slot back to a batch; the blob is a zero-copy view
        into the slot, valid until :meth:`mark_consumed` retires this
        descriptor."""
        return slot_read(self._buf, self.layout.slot_offset(slot))

    def mark_consumed(self, ordinal: int) -> None:
        """Publish the cumulative credit: every descriptor below
        ``ordinal`` is fully processed and its slot may be recycled."""
        _U64.pack_into(self._buf, 0, ordinal)

    def close(self) -> None:
        # Slot memoryviews may still be referenced from pipeline
        # internals (or the consume loop's last batch) at FINISH time;
        # never let a BufferError out of the worker's happy path — the
        # mapping dies with the process. SharedMemory.__del__ would
        # retry close() at interpreter shutdown and print the same
        # BufferError as an ignored exception, so neutralize it too.
        buf, self._buf = self._buf, None
        try:
            if buf is not None:
                buf.release()
            self._shm.close()
        except BufferError:
            self._shm.close = lambda: None


class ShmTransport:
    """The pool-level bundle: one feeder channel per core."""

    def __init__(self, cores: int, layout: ShmLayout) -> None:
        self.layout = layout
        self.channels: List[ShmFeederChannel] = []
        try:
            for core_id in range(cores):
                self.channels.append(ShmFeederChannel(core_id, layout))
        except Exception:
            self.close()
            raise

    def spec_args(self, core_id: int) -> Tuple[str, int, int]:
        """What a worker spec carries: (segment name, ring, slot size).
        Strings and ints only — picklable under spawn, trivially
        inherited under fork."""
        return (self.channels[core_id].name,) + self.layout.wire()

    def reset_core(self, core_id: int) -> None:
        self.channels[core_id].reset()

    def close(self) -> None:
        # Idempotent, and the channel objects (with their volatile
        # health counters) outlive the segments — backend_health reads
        # them after the pool context has already closed the transport.
        for channel in self.channels:
            channel.close()
