"""Runtime statistics and monitoring (Section 5.3's feedback signals).

Retina exposes real-time logs of packet loss, throughput, and memory
usage so users can tune filters and callbacks. :class:`CoreStats`
tracks one core; :class:`AggregateStats` merges cores for reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.cycles import CostModel, CycleLedger, Stage


class CoreStats:
    """Counters for one processing core."""

    def __init__(self, cost_model: CostModel) -> None:
        self.ledger = CycleLedger(cost_model)
        self.packets = 0
        self.bytes = 0
        self.callbacks = 0
        self.sessions_parsed = 0
        self.sessions_matched = 0
        self.conns_created = 0
        self.conns_delivered = 0
        self.probe_giveups = 0
        #: (timestamp, live_connections, memory_bytes) samples.
        self.memory_samples: List[Tuple[float, int, int]] = []

    def record_packet(self, wire_bytes: int) -> None:
        self.packets += 1
        self.bytes += wire_bytes

    def sample_memory(self, ts: float, live_conns: int,
                      memory_bytes: int) -> None:
        self.memory_samples.append((ts, live_conns, memory_bytes))

    def merge(self, other: "CoreStats") -> None:
        """Fold another core's counters into this one.

        Used by the parallel backend: each worker process returns its
        pipeline's ``CoreStats`` snapshot (the whole object pickles —
        the ledger holds only enum-keyed dicts and the cost model) and
        the parent merges them into the aggregate report.
        """
        self.ledger.merge(other.ledger)
        self.packets += other.packets
        self.bytes += other.bytes
        self.callbacks += other.callbacks
        self.sessions_parsed += other.sessions_parsed
        self.sessions_matched += other.sessions_matched
        self.conns_created += other.conns_created
        self.conns_delivered += other.conns_delivered
        self.probe_giveups += other.probe_giveups
        self.memory_samples.extend(other.memory_samples)


@dataclass
class AggregateStats:
    """Whole-runtime view across cores, with derived metrics."""

    cores: int
    cost_model: CostModel
    duration: float
    ingress_packets: int
    ingress_bytes: int
    hw_dropped_packets: int
    sink_dropped_packets: int
    processed_packets: int
    processed_bytes: int
    callbacks: int
    sessions_parsed: int
    sessions_matched: int
    conns_created: int
    conns_delivered: int
    stage_invocations: Dict[Stage, int]
    stage_cycles: Dict[Stage, float]
    per_core_busy_seconds: List[float]
    memory_samples: List[Tuple[float, int, int]]

    # -- derived -------------------------------------------------------------
    @property
    def total_cycles(self) -> float:
        return sum(self.stage_cycles.values())

    @property
    def cycles_per_ingress_packet(self) -> float:
        if not self.ingress_packets:
            return 0.0
        return self.total_cycles / self.ingress_packets

    @property
    def cycles_per_ingress_byte(self) -> float:
        if not self.ingress_bytes:
            return 0.0
        return self.total_cycles / self.ingress_bytes

    @property
    def offered_rate_gbps(self) -> float:
        """Ingress rate over the traffic's (virtual) duration."""
        if self.duration <= 0:
            return 0.0
        return self.ingress_bytes * 8 / self.duration / 1e9

    def max_zero_loss_gbps(self, cores: Optional[int] = None) -> float:
        """The headline metric: the highest ingress bit-rate this
        pipeline could sustain with zero packet loss.

        Per-core capacity is ``cpu_hz`` cycles/second; the pipeline
        consumes ``cycles_per_ingress_byte``. With load balanced over
        ``cores``, the zero-loss ceiling is
        ``cores * cpu_hz / cycles_per_byte * 8`` bits/s. The bound uses
        the *most loaded* core to respect imperfect RSS balance.
        """
        cores = cores if cores is not None else self.cores
        if self.ingress_bytes == 0 or self.total_cycles == 0:
            return float("inf")
        busiest = max(self.per_core_busy_seconds) if \
            self.per_core_busy_seconds else 0.0
        if busiest <= 0:
            return float("inf")
        # Normalize: the busiest core consumed `busiest` CPU-seconds for
        # its share; scale capacity accordingly.
        per_core_share = self.ingress_bytes / self.cores
        bytes_per_second_per_core = per_core_share / busiest
        return bytes_per_second_per_core * cores * 8 / 1e9

    @property
    def loss_fraction(self) -> float:
        """Packet loss implied by cycle demand vs. capacity over the
        run's virtual duration (0.0 = kept up with ingress)."""
        if self.duration <= 0:
            return 0.0
        capacity = self.duration  # seconds of CPU per core
        worst = max(self.per_core_busy_seconds, default=0.0)
        if worst <= capacity:
            return 0.0
        return 1.0 - capacity / worst

    @property
    def peak_memory_bytes(self) -> int:
        if not self.memory_samples:
            return 0
        return max(m for _, _, m in self.memory_samples)

    @property
    def peak_live_connections(self) -> int:
        if not self.memory_samples:
            return 0
        return max(c for _, c, _ in self.memory_samples)

    def stage_fractions(self) -> Dict[Stage, float]:
        """Fraction of ingress packets that triggered each stage
        (Figure 7's x-axis)."""
        if not self.ingress_packets:
            return {stage: 0.0 for stage in Stage}
        return {
            stage: self.stage_invocations[stage] / self.ingress_packets
            for stage in Stage
        }

    def stage_mean_cycles(self) -> Dict[Stage, float]:
        """Average cycles per invocation per stage (Figure 7's labels)."""
        out: Dict[Stage, float] = {}
        for stage in Stage:
            n = self.stage_invocations[stage]
            out[stage] = self.stage_cycles[stage] / n if n else 0.0
        return out

    def to_dict(self) -> Dict:
        """JSON-serializable summary (for tooling and the CLI)."""
        return {
            "cores": self.cores,
            "duration_s": self.duration,
            "ingress_packets": self.ingress_packets,
            "ingress_bytes": self.ingress_bytes,
            "hw_dropped_packets": self.hw_dropped_packets,
            "sink_dropped_packets": self.sink_dropped_packets,
            "processed_packets": self.processed_packets,
            "callbacks": self.callbacks,
            "sessions_parsed": self.sessions_parsed,
            "sessions_matched": self.sessions_matched,
            "conns_created": self.conns_created,
            "conns_delivered": self.conns_delivered,
            "offered_rate_gbps": self.offered_rate_gbps,
            "max_zero_loss_gbps": self.max_zero_loss_gbps(),
            "loss_fraction": self.loss_fraction,
            "cycles_per_ingress_packet": self.cycles_per_ingress_packet,
            "stage_invocations": {
                stage.value: count
                for stage, count in self.stage_invocations.items()
            },
            "stage_cycles": {
                stage.value: cycles
                for stage, cycles in self.stage_cycles.items()
            },
            "peak_memory_bytes": self.peak_memory_bytes,
            "peak_live_connections": self.peak_live_connections,
        }

    def describe(self) -> str:
        lines = [
            f"ingress: {self.ingress_packets} pkts / "
            f"{self.ingress_bytes} B over {self.duration:.3f}s "
            f"({self.offered_rate_gbps:.2f} Gbps offered)",
            f"hw-dropped: {self.hw_dropped_packets}, "
            f"sink-dropped: {self.sink_dropped_packets}, "
            f"processed: {self.processed_packets}",
            f"callbacks: {self.callbacks}, sessions parsed: "
            f"{self.sessions_parsed} (matched {self.sessions_matched})",
            f"connections: {self.conns_created} created, "
            f"{self.conns_delivered} delivered",
            f"cycles/pkt: {self.cycles_per_ingress_packet:.1f}, "
            f"zero-loss ceiling: {self.max_zero_loss_gbps():.1f} Gbps "
            f"on {self.cores} cores",
        ]
        return "\n".join(lines)
