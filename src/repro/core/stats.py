"""Runtime statistics and monitoring (Section 5.3's feedback signals).

Retina exposes real-time logs of packet loss, throughput, and memory
usage so users can tune filters and callbacks. :class:`CoreStats`
tracks one core; :class:`AggregateStats` merges cores for reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.cycles import CostModel, CycleLedger, Stage


#: Upper bucket bounds (bytes) for reassembly-buffer occupancy
#: histograms; one implicit +Inf bucket follows.
REASM_HIST_BOUNDS = (1024, 4096, 16384, 65536, 262144, 1048576, 4194304)


class CoreStats:
    """Counters for one processing core."""

    def __init__(self, cost_model: CostModel,
                 telemetry: bool = False) -> None:
        self.ledger = CycleLedger(cost_model, record_hist=telemetry)
        self.packets = 0
        self.bytes = 0
        self.callbacks = 0
        self.sessions_parsed = 0
        self.sessions_matched = 0
        self.conns_created = 0
        self.conns_delivered = 0
        self.probe_giveups = 0
        # Filter-funnel survivor counters (always on — plain integer
        # increments, same cost class as the counters above). Packets
        # and wire bytes surviving the software packet filter, the
        # connection-filter layer, and the full filter respectively;
        # see repro.telemetry.funnel for the exact semantics.
        self.pf_packets = 0
        self.pf_bytes = 0
        self.connf_packets = 0
        self.connf_bytes = 0
        self.sessf_packets = 0
        self.sessf_bytes = 0
        #: Connections the filter rejected (or that had nothing more to
        #: deliver) and connections harvested by the timer wheels.
        self.conns_discarded = 0
        self.conns_expired = 0
        # Resilience counters (repro.resilience): callback exceptions
        # absorbed by the "isolate" policy, deliveries whose user
        # callback was skipped post-quarantine, whether this core's
        # callback is quarantined, parser exceptions absorbed at the
        # probe/parse boundary, and memory-policy actions (evictions /
        # refused new connections).
        self.callback_errors = 0
        self.callbacks_suppressed = 0
        self.callback_quarantined = 0
        self.parser_exceptions = 0
        self.conns_evicted = 0
        self.conns_shed = 0
        #: Injected-fault counts by kind (repro.resilience.faults).
        self.fault_counters: Dict[str, int] = {}
        #: BufferedReassembler per-direction buffer overflows: segments
        #: dropped (truncating the reconstructed stream) and their
        #: payload bytes. Always-on plain counters; zero under the lazy
        #: reassembler, which never copies into a bounded buffer.
        self.reasm_truncations = 0
        self.reasm_truncated_bytes = 0
        #: Lazy-reassembler discard accounting (repro.stream.reassembly
        #: mirrors its rare-path counters here so impairment runs can
        #: distinguish link loss from dup-discard): fresh full
        #: retransmits of delivered data, partial overlaps (trimmed),
        #: held segments wholly superseded before their flush slot, and
        #: out-of-order ring overflows.
        self.reasm_dup_segments = 0
        self.reasm_overlap_segments = 0
        self.reasm_stale_retransmits = 0
        self.reasm_overflow_drops = 0
        #: Adaptive out-of-order window resizes (config.ooo_adaptive).
        self.reasm_window_grows = 0
        self.reasm_window_shrinks = 0
        #: The core's overload loss ledger (repro.overload), attached
        #: by the pipeline when an overload policy is active; None
        #: otherwise. Travels with the snapshot like every counter.
        self.overload = None
        #: (timestamp, live_connections, memory_bytes) samples.
        self.memory_samples: List[Tuple[float, int, int]] = []
        #: Sampled connection-lifecycle events (repro.telemetry.trace).
        self.trace_events: List[Tuple] = []
        #: Reassembly-buffer occupancy histogram (telemetry only):
        #: bucket counts over REASM_HIST_BOUNDS + Inf, observed at each
        #: memory-sample point, plus the peak occupancy seen.
        self.reasm_hist: Optional[List[int]] = (
            [0] * (len(REASM_HIST_BOUNDS) + 1) if telemetry else None
        )
        self.reasm_occ_sum = 0
        self.reasm_peak_bytes = 0
        #: Span-recorder snapshot (repro.telemetry.spans), attached by
        #: the pipeline at fold time when spans are enabled. Travels
        #: with the pickled snapshot like every other field but is
        #: deliberately *excluded* from :meth:`to_dict` and from
        #: ``AggregateStats`` — span data lands on
        #: ``RuntimeReport.spans`` so aggregate stats stay
        #: byte-identical with spans on or off.
        self.spans: Optional[Dict] = None

    def observe_reasm_occupancy(self, occupancy_bytes: int) -> None:
        if occupancy_bytes > self.reasm_peak_bytes:
            self.reasm_peak_bytes = occupancy_bytes
        if self.reasm_hist is not None:
            self.reasm_occ_sum += occupancy_bytes
            for i, bound in enumerate(REASM_HIST_BOUNDS):
                if occupancy_bytes <= bound:
                    self.reasm_hist[i] += 1
                    return
            self.reasm_hist[-1] += 1

    def record_packet(self, wire_bytes: int) -> None:
        self.packets += 1
        self.bytes += wire_bytes

    def sample_memory(self, ts: float, live_conns: int,
                      memory_bytes: int) -> None:
        self.memory_samples.append((ts, live_conns, memory_bytes))

    def to_dict(self) -> Dict:
        """Deterministic, comparable snapshot of one core's counters.

        Used by the crash-recovery tests to show that cores unaffected
        by a worker fault are *bit-identical* to a fault-free run, and
        available to callers via ``RuntimeReport.core_stats``.
        """
        return {
            "packets": self.packets,
            "bytes": self.bytes,
            "callbacks": self.callbacks,
            "sessions_parsed": self.sessions_parsed,
            "sessions_matched": self.sessions_matched,
            "conns_created": self.conns_created,
            "conns_delivered": self.conns_delivered,
            "probe_giveups": self.probe_giveups,
            "pf_packets": self.pf_packets,
            "pf_bytes": self.pf_bytes,
            "connf_packets": self.connf_packets,
            "connf_bytes": self.connf_bytes,
            "sessf_packets": self.sessf_packets,
            "sessf_bytes": self.sessf_bytes,
            "conns_discarded": self.conns_discarded,
            "conns_expired": self.conns_expired,
            "callback_errors": self.callback_errors,
            "callbacks_suppressed": self.callbacks_suppressed,
            "callback_quarantined": self.callback_quarantined,
            "parser_exceptions": self.parser_exceptions,
            "conns_evicted": self.conns_evicted,
            "conns_shed": self.conns_shed,
            "fault_counters": dict(sorted(self.fault_counters.items())),
            "reasm_truncations": self.reasm_truncations,
            "reasm_truncated_bytes": self.reasm_truncated_bytes,
            "reasm_dup_segments": self.reasm_dup_segments,
            "reasm_overlap_segments": self.reasm_overlap_segments,
            "reasm_stale_retransmits": self.reasm_stale_retransmits,
            "reasm_overflow_drops": self.reasm_overflow_drops,
            "reasm_window_grows": self.reasm_window_grows,
            "reasm_window_shrinks": self.reasm_window_shrinks,
            "overload": (self.overload.to_dict()
                         if self.overload is not None else None),
            "memory_samples": list(self.memory_samples),
            "cycles": self.ledger.snapshot(),
        }

    def merge(self, other: "CoreStats") -> None:
        """Fold another core's counters into this one.

        Used by the parallel backend: each worker process returns its
        pipeline's ``CoreStats`` snapshot (the whole object pickles —
        the ledger holds only enum-keyed dicts and the cost model) and
        the parent merges them into the aggregate report.
        """
        self.ledger.merge(other.ledger)
        self.packets += other.packets
        self.bytes += other.bytes
        self.callbacks += other.callbacks
        self.sessions_parsed += other.sessions_parsed
        self.sessions_matched += other.sessions_matched
        self.conns_created += other.conns_created
        self.conns_delivered += other.conns_delivered
        self.probe_giveups += other.probe_giveups
        self.pf_packets += other.pf_packets
        self.pf_bytes += other.pf_bytes
        self.connf_packets += other.connf_packets
        self.connf_bytes += other.connf_bytes
        self.sessf_packets += other.sessf_packets
        self.sessf_bytes += other.sessf_bytes
        self.conns_discarded += other.conns_discarded
        self.conns_expired += other.conns_expired
        self.callback_errors += other.callback_errors
        self.callbacks_suppressed += other.callbacks_suppressed
        self.callback_quarantined += other.callback_quarantined
        self.parser_exceptions += other.parser_exceptions
        self.conns_evicted += other.conns_evicted
        self.conns_shed += other.conns_shed
        for kind, count in other.fault_counters.items():
            self.fault_counters[kind] = \
                self.fault_counters.get(kind, 0) + count
        self.reasm_truncations += other.reasm_truncations
        self.reasm_truncated_bytes += other.reasm_truncated_bytes
        self.reasm_dup_segments += other.reasm_dup_segments
        self.reasm_overlap_segments += other.reasm_overlap_segments
        self.reasm_stale_retransmits += other.reasm_stale_retransmits
        self.reasm_overflow_drops += other.reasm_overflow_drops
        self.reasm_window_grows += other.reasm_window_grows
        self.reasm_window_shrinks += other.reasm_window_shrinks
        if other.overload is not None:
            if self.overload is None:
                from repro.overload.ledger import LossLedger
                self.overload = LossLedger(core_id=-1)
            self.overload.merge(other.overload)
        self.memory_samples.extend(other.memory_samples)
        self.trace_events.extend(other.trace_events)
        if other.reasm_hist is not None:
            if self.reasm_hist is None:
                self.reasm_hist = list(other.reasm_hist)
            else:
                for i, count in enumerate(other.reasm_hist):
                    self.reasm_hist[i] += count
        self.reasm_occ_sum += other.reasm_occ_sum
        if other.reasm_peak_bytes > self.reasm_peak_bytes:
            self.reasm_peak_bytes = other.reasm_peak_bytes


@dataclass
class AggregateStats:
    """Whole-runtime view across cores, with derived metrics."""

    cores: int
    cost_model: CostModel
    duration: float
    ingress_packets: int
    ingress_bytes: int
    hw_dropped_packets: int
    sink_dropped_packets: int
    processed_packets: int
    processed_bytes: int
    callbacks: int
    sessions_parsed: int
    sessions_matched: int
    conns_created: int
    conns_delivered: int
    stage_invocations: Dict[Stage, int]
    stage_cycles: Dict[Stage, float]
    per_core_busy_seconds: List[float]
    memory_samples: List[Tuple[float, int, int]]
    # -- telemetry (filter funnel, tracing, histograms) ----------------------
    pf_packets: int = 0
    pf_bytes: int = 0
    connf_packets: int = 0
    connf_bytes: int = 0
    sessf_packets: int = 0
    sessf_bytes: int = 0
    probe_giveups: int = 0
    conns_discarded: int = 0
    conns_expired: int = 0
    # -- resilience (repro.resilience) ---------------------------------------
    callback_errors: int = 0
    callbacks_suppressed: int = 0
    quarantined_cores: int = 0
    parser_exceptions: int = 0
    conns_evicted: int = 0
    conns_shed: int = 0
    fault_counters: Dict[str, int] = field(default_factory=dict)
    # -- overload / stream truncation (repro.overload) -------------------
    reasm_truncations: int = 0
    reasm_truncated_bytes: int = 0
    # -- reassembly discard/window accounting (repro.stream) --------------
    reasm_dup_segments: int = 0
    reasm_overlap_segments: int = 0
    reasm_stale_retransmits: int = 0
    reasm_overflow_drops: int = 0
    reasm_window_grows: int = 0
    reasm_window_shrinks: int = 0
    #: Merged per-stage cycle histograms (None unless telemetry ran).
    stage_cycle_hist: Optional[Dict[Stage, List[int]]] = None
    #: Merged reassembly occupancy histogram (None unless telemetry ran).
    reasm_hist: Optional[List[int]] = None
    reasm_occ_sum: int = 0
    reasm_peak_bytes: int = 0
    #: Merged (unsorted) trace events; see repro.telemetry.trace.
    trace_events: List[Tuple] = field(default_factory=list)

    # -- derived -------------------------------------------------------------
    @property
    def total_cycles(self) -> float:
        return sum(self.stage_cycles.values())

    @property
    def cycles_per_ingress_packet(self) -> float:
        if not self.ingress_packets:
            return 0.0
        return self.total_cycles / self.ingress_packets

    @property
    def cycles_per_ingress_byte(self) -> float:
        if not self.ingress_bytes:
            return 0.0
        return self.total_cycles / self.ingress_bytes

    @property
    def offered_rate_gbps(self) -> float:
        """Ingress rate over the traffic's (virtual) duration."""
        if self.duration <= 0:
            return 0.0
        return self.ingress_bytes * 8 / self.duration / 1e9

    def max_zero_loss_gbps(self, cores: Optional[int] = None) -> float:
        """The headline metric: the highest ingress bit-rate this
        pipeline could sustain with zero packet loss.

        Per-core capacity is ``cpu_hz`` cycles/second; the pipeline
        consumes ``cycles_per_ingress_byte``. With load balanced over
        ``cores``, the zero-loss ceiling is
        ``cores * cpu_hz / cycles_per_byte * 8`` bits/s. The bound uses
        the *most loaded* core to respect imperfect RSS balance.
        """
        cores = cores if cores is not None else self.cores
        if self.ingress_bytes == 0 or self.total_cycles == 0:
            return float("inf")
        busiest = max(self.per_core_busy_seconds) if \
            self.per_core_busy_seconds else 0.0
        if busiest <= 0:
            return float("inf")
        # Normalize: the busiest core consumed `busiest` CPU-seconds for
        # its share; scale capacity accordingly.
        per_core_share = self.ingress_bytes / self.cores
        bytes_per_second_per_core = per_core_share / busiest
        return bytes_per_second_per_core * cores * 8 / 1e9

    @property
    def loss_fraction(self) -> float:
        """Packet loss implied by cycle demand vs. capacity over the
        run's virtual duration (0.0 = kept up with ingress)."""
        if self.duration <= 0:
            return 0.0
        capacity = self.duration  # seconds of CPU per core
        worst = max(self.per_core_busy_seconds, default=0.0)
        if worst <= capacity:
            return 0.0
        return 1.0 - capacity / worst

    @property
    def peak_memory_bytes(self) -> int:
        if not self.memory_samples:
            return 0
        return max(m for _, _, m in self.memory_samples)

    @property
    def peak_live_connections(self) -> int:
        if not self.memory_samples:
            return 0
        return max(c for _, c, _ in self.memory_samples)

    def stage_fractions(self) -> Dict[Stage, float]:
        """Fraction of ingress packets that triggered each stage
        (Figure 7's x-axis)."""
        if not self.ingress_packets:
            return {stage: 0.0 for stage in Stage}
        return {
            stage: self.stage_invocations[stage] / self.ingress_packets
            for stage in Stage
        }

    def filter_funnel(self):
        """The four-layer filter funnel (packets/bytes surviving the
        NIC hardware filter, software packet filter, connection filter,
        and session filter). Returns ``FunnelLayer`` rows; see
        :mod:`repro.telemetry.funnel`."""
        from repro.telemetry.funnel import build_funnel
        return build_funnel(self)

    def funnel_table(self) -> str:
        """Human-readable funnel table (the §5.3 feedback view)."""
        from repro.telemetry.funnel import funnel_table
        return funnel_table(self)

    def stage_mean_cycles(self) -> Dict[Stage, float]:
        """Average cycles per invocation per stage (Figure 7's labels)."""
        out: Dict[Stage, float] = {}
        for stage in Stage:
            n = self.stage_invocations[stage]
            out[stage] = self.stage_cycles[stage] / n if n else 0.0
        return out

    def to_dict(self) -> Dict:
        """JSON-serializable summary (for tooling and the CLI)."""
        return {
            "cores": self.cores,
            "duration_s": self.duration,
            "ingress_packets": self.ingress_packets,
            "ingress_bytes": self.ingress_bytes,
            "hw_dropped_packets": self.hw_dropped_packets,
            "sink_dropped_packets": self.sink_dropped_packets,
            "processed_packets": self.processed_packets,
            "callbacks": self.callbacks,
            "sessions_parsed": self.sessions_parsed,
            "sessions_matched": self.sessions_matched,
            "conns_created": self.conns_created,
            "conns_delivered": self.conns_delivered,
            "offered_rate_gbps": self.offered_rate_gbps,
            "max_zero_loss_gbps": self.max_zero_loss_gbps(),
            "loss_fraction": self.loss_fraction,
            "cycles_per_ingress_packet": self.cycles_per_ingress_packet,
            "stage_invocations": {
                stage.value: count
                for stage, count in self.stage_invocations.items()
            },
            "stage_cycles": {
                stage.value: cycles
                for stage, cycles in self.stage_cycles.items()
            },
            "peak_memory_bytes": self.peak_memory_bytes,
            "peak_live_connections": self.peak_live_connections,
            "probe_giveups": self.probe_giveups,
            "conns_discarded": self.conns_discarded,
            "conns_expired": self.conns_expired,
            "callback_errors": self.callback_errors,
            "callbacks_suppressed": self.callbacks_suppressed,
            "quarantined_cores": self.quarantined_cores,
            "parser_exceptions": self.parser_exceptions,
            "conns_evicted": self.conns_evicted,
            "conns_shed": self.conns_shed,
            "fault_counters": dict(sorted(self.fault_counters.items())),
            "reasm_truncations": self.reasm_truncations,
            "reasm_truncated_bytes": self.reasm_truncated_bytes,
            "reasm_dup_segments": self.reasm_dup_segments,
            "reasm_overlap_segments": self.reasm_overlap_segments,
            "reasm_stale_retransmits": self.reasm_stale_retransmits,
            "reasm_overflow_drops": self.reasm_overflow_drops,
            "reasm_window_grows": self.reasm_window_grows,
            "reasm_window_shrinks": self.reasm_window_shrinks,
            "filter_funnel": [layer.to_dict()
                              for layer in self.filter_funnel()],
        }

    def describe(self) -> str:
        lines = [
            f"ingress: {self.ingress_packets} pkts / "
            f"{self.ingress_bytes} B over {self.duration:.3f}s "
            f"({self.offered_rate_gbps:.2f} Gbps offered)",
            f"hw-dropped: {self.hw_dropped_packets}, "
            f"sink-dropped: {self.sink_dropped_packets}, "
            f"processed: {self.processed_packets}",
            f"callbacks: {self.callbacks}, sessions parsed: "
            f"{self.sessions_parsed} (matched {self.sessions_matched})",
            f"connections: {self.conns_created} created, "
            f"{self.conns_delivered} delivered",
            f"cycles/pkt: {self.cycles_per_ingress_packet:.1f}, "
            f"zero-loss ceiling: {self.max_zero_loss_gbps():.1f} Gbps "
            f"on {self.cores} cores",
            "filter funnel:",
            self.funnel_table(),
        ]
        return "\n".join(lines)
