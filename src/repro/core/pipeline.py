"""Per-core processing pipeline (Figure 2, right side).

One :class:`CorePipeline` runs per receive queue and implements the
work-conserving, lazily reconstructing data path:

1. software packet filter immediately after "capture",
2. fast-path callback for packet subscriptions with packet-only filters,
3. connection tracking (per-core table, two-tier timer wheels),
4. lazy stream reassembly only for connections that still need payload,
5. protocol probing restricted to the subscription's parser set,
6. the connection filter at probe resolution, the session filter at
   session completion, with Figure 4's state transitions in between,
7. inline callback execution.

Every stage charges its calibrated cost to the core's cycle ledger —
that ledger is this reproduction's stand-in for a 3 GHz core's time.

One documented deviation from the paper: where Retina deletes a
connection the filter has rejected (or already delivered), this
pipeline keeps a 512-byte "ignore" tombstone in the table until the
inactivity timeout. The tombstone prevents subsequent packets of the
same flow from re-creating the connection and re-probing ciphertext;
CPU behaviour matches the paper's, and memory stays bounded by the same
timer wheels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

if TYPE_CHECKING:  # avoid a config<->core import cycle at runtime
    from repro.config import RuntimeConfig

from repro.conntrack.conn import ConnState, Connection
from repro.conntrack.five_tuple import FiveTuple
from repro.conntrack.table import ConnTable
from repro.errors import CallbackError, ProtocolError, \
    ResourceExhaustedError
from repro.core.cycles import Stage
from repro.core.datatypes import (
    ConnectionRecord,
    Level,
    RawPacket,
    StreamChunk,
)
from repro.core.stats import CoreStats
from repro.core.subscription import Subscription
from repro.packet.columnar import decode_mbufs
from repro.packet.ipv4 import PROTO_TCP, PROTO_UDP
from repro.packet.mbuf import Mbuf
from repro.packet.stack import parse_stack
from repro.protocols.base import ParseResult, ProbeResult, Session
from repro.resilience.faults import CoreFaultInjector
from repro.stream.buffered import BufferedReassembler
from repro.stream.pdu import L4Pdu, StreamSegment
from repro.stream.reassembly import LazyReassembler

#: Sentinel for "filter already satisfied before the session layer":
#: the session filter is skipped and sessions match unconditionally.
FILTER_SATISFIED = -1

# Enum members hoisted to module scope: the columnar stateful path runs
# once per matched packet, and member access on an Enum class costs a
# class-dict lookup (plus a descriptor for ``Stage.value`` inside
# ``charge``) that adds up at 100k+ pkts/s.
_CONN_TRACK = Stage.CONN_TRACK
_TRACK = ConnState.TRACK
_DELETE = ConnState.DELETE
_PROBE_OR_PARSE = (ConnState.PROBE, ConnState.PARSE)

class _ProbeContext:
    """Candidate parsers plus segments seen while still undecided."""

    __slots__ = ("candidates", "pending", "bytes_probed")

    def __init__(self, candidates) -> None:
        self.candidates = candidates
        self.pending: List[StreamSegment] = []
        self.bytes_probed = 0


class CorePipeline:
    """The per-core data path."""

    def __init__(
        self,
        core_id: int,
        subscription: Subscription,
        config: "RuntimeConfig",
        executor=None,
        initial_overload_rung: int = 0,
    ) -> None:
        self.core_id = core_id
        self.sub = subscription
        self.config = config
        self.table = ConnTable(config.timeouts)
        self.stats = CoreStats(config.cost_model,
                               telemetry=config.telemetry)
        if config.trace_sample > 0:
            from repro.telemetry.trace import ConnectionTracer
            self._tracer = ConnectionTracer(config.trace_sample,
                                            self.stats.trace_events)
        else:
            self._tracer = None
        self._filter = subscription.filter
        #: Batch packet filter over decoded columns; None when disabled
        #: by config or when the filter trie uses predicates the
        #: columnar layer cannot express (process_batch then keeps the
        #: scalar per-packet path).
        self._pf_batch = (subscription.filter.packet_filter_batch
                          if config.columnar else None)
        #: Conn-track stage cost, hoisted for the unrolled columnar
        #: charge (see :meth:`_stateful_columnar`).
        self._ct_cost = self.stats.ledger.model.conn_track
        # -- burst span recorder (repro.telemetry.spans) ----------------
        # None when disabled: the batch loops then pay one ``is None``
        # check per burst and the per-packet loops stay untouched (the
        # "no-op recorder" path). Enabled recorders snapshot the ledger
        # and funnel counters at burst boundaries only.
        if config.span_sample > 0 or config.flight_recorder_depth > 0:
            from repro.telemetry.spans import SpanRecorder
            self._spans = SpanRecorder(
                core_id, sample_every=config.span_sample,
                flight_depth=config.flight_recorder_depth)
        else:
            self._spans = None
        self._level = subscription.level
        if executor is None:
            from repro.core.executor import InlineExecutor
            executor = InlineExecutor(subscription.callback,
                                      config.callback_cycles)
        self._executor = executor
        self._probe_protocols = sorted(subscription.probe_protocols)
        self._now = 0.0
        self._last_expire = 0.0
        # -- resilience wiring (repro.resilience) ----------------------
        # All of this resolves to "None / False, check once at a cold
        # call site" when no plan or non-default policy is configured,
        # so the disabled path adds nothing to the per-packet loop.
        self._injector = CoreFaultInjector.for_core(config.fault_plan,
                                                    core_id)
        self._isolate = config.callback_error_policy == "isolate"
        self._error_budget = config.callback_error_budget
        self._quarantined = False
        # Cycles to charge the RX core for a delivery whose callback
        # raised (the stage work up to the user function still ran).
        self._cb_error_cycles = (
            self._executor.enqueue_cycles
            if self._executor.name == "queued"
            else self._executor.callback_cycles)
        if config.memory_limit_bytes is not None and \
                config.memory_policy != "record":
            # Degradation policies enforce each core's share of the
            # global limit locally — no cross-core coordination, same
            # shared-nothing discipline as the rest of the pipeline.
            self._memory_share = config.memory_limit_bytes // config.cores
        else:
            self._memory_share = None
        self._shedding = False
        # -- overload control (repro.overload) -------------------------
        # One controller per core, clocked on virtual time inside the
        # packet loop; `_ov_next = inf` when the policy is off, so the
        # disabled hot path pays one float compare per packet.
        if config.overload_policy != "off":
            from repro.overload import LossLedger, OverloadController
            ledger = LossLedger(core_id, initial_overload_rung)
            self.stats.overload = ledger
            self._overload = OverloadController(
                config, ledger, initial_rung=initial_overload_rung)
            self._ov_next = 0.0
            self._ov_mem_share = (
                config.memory_limit_bytes // config.cores
                if config.memory_limit_bytes is not None else None)
        else:
            self._overload = None
            self._ov_next = float("inf")
            self._ov_mem_share = None
        #: Current admission block (0/1/2), mirrored from the
        #: controller at each tick so _stateful reads one attribute.
        self._ov_block = (self._overload.admission_block
                          if self._overload is not None else 0)
        #: Tuples whose flow was refused: canonical key → (rung,
        #: funnel layer) at first refusal. Once a flow's start is shed
        #: its remaining packets are shed too (even after the ladder
        #: relaxes) — a half-seen flow would otherwise surface as a
        #: connection record that exists in no unshedded run, breaking
        #: the admitted-connections-are-bit-exact guarantee.
        self._ov_shed: dict = {}
        #: Virtual timestamp at which this core tripped fail-fast, or
        #: None. The runtime polls it after each batch.
        self.overload_failfast_at: Optional[float] = None

    @property
    def now(self) -> float:
        """The pipeline's virtual clock (latest packet timestamp seen)."""
        return self._now

    # ------------------------------------------------------------------
    # packet entry point
    # ------------------------------------------------------------------
    def process_packet(self, mbuf: Mbuf) -> None:
        self.process_batch((mbuf,))

    def process_batch(self, mbufs) -> None:
        """Run a burst of packets (one receive queue's share of a DPDK
        burst) through the pipeline.

        The hot path: every per-packet attribute lookup, bound method,
        and stage-dict access is hoisted out of the inner loop. Charges
        are still applied per packet (not ``cost * n``) so cycle totals
        are bit-for-bit identical to packet-at-a-time processing — the
        parallel backend's determinism guarantee depends on that.
        """
        if self._pf_batch is not None:
            return self._process_batch_columnar(mbufs)
        stats = self.stats
        ledger = stats.ledger
        invocations = ledger.invocations
        cycles = ledger.cycles
        model = ledger.model
        capture_cost = model.capture
        filter_cost = model.packet_filter
        capture_stage = Stage.CAPTURE
        filter_stage = Stage.PACKET_FILTER
        packet_filter = self._filter.packet_filter
        fast_path = not self.sub.needs_conntrack
        deliver = self._deliver
        stateful = self._stateful
        now = self._now
        ov_next = self._ov_next
        spans = self._spans
        if spans is not None:
            span_tok = spans.start(stats)
            span_nodes = {} if span_tok[0] else None
        else:
            span_tok = None
            span_nodes = None
        packets = 0
        wire_bytes = 0
        # Funnel survivor counters, accumulated in locals and folded
        # into stats once per batch (telemetry stays near-free on the
        # hot path). The fast path satisfies the whole filter at the
        # packet layer, so its packets survive every funnel layer.
        pf_packets = 0
        pf_bytes = 0
        fast_packets = 0
        fast_bytes = 0
        for mbuf in mbufs:
            ts = mbuf.timestamp
            if ts > now:
                now = ts
                self._now = ts
            if ts >= ov_next:
                # Controller tick: clocked on the per-core virtual
                # packet stream, so transitions are identical across
                # backends and batch boundaries.
                self._overload_tick(ts)
                ov_next = self._ov_next
            packets += 1
            frame_bytes = len(mbuf.data)
            wire_bytes += frame_bytes
            invocations[capture_stage] += 1
            cycles[capture_stage] += capture_cost
            invocations[filter_stage] += 1
            cycles[filter_stage] += filter_cost
            result = packet_filter(mbuf)
            if not result.matched:
                continue
            pf_packets += 1
            pf_bytes += frame_bytes
            if span_nodes is not None:
                node = result.node
                span_nodes[node] = span_nodes.get(node, 0) + 1
            if fast_path:
                # Packet subscription with a packet-only filter:
                # Section 5.1 fast path, the callback runs right after
                # the filter.
                deliver(RawPacket(mbuf=mbuf))
                fast_packets += 1
                fast_bytes += frame_bytes
                continue
            stateful(mbuf, result)
            now = self._now  # _stateful may not move it, expiry may
        stats.packets += packets
        stats.bytes += wire_bytes
        if self._overload is not None:
            self._overload.ledger.packets_seen += packets
        stats.pf_packets += pf_packets
        stats.pf_bytes += pf_bytes
        if fast_packets:
            stats.connf_packets += fast_packets
            stats.connf_bytes += fast_bytes
            stats.sessf_packets += fast_packets
            stats.sessf_bytes += fast_bytes
        # Settle the constant-cost stage histograms once per burst
        # (capture and the packet filter bypass ``charge`` above), then
        # close the burst span.
        ledger.observe_batched(capture_stage, packets)
        ledger.observe_batched(filter_stage, packets)
        if span_tok is not None:
            spans.finish(stats, self._now, span_tok, span_nodes)

    def _process_batch_columnar(self, mbufs) -> None:
        """Columnar variant of :meth:`process_batch`.

        Headers are decoded for the whole burst in bulk
        (:func:`~repro.packet.columnar.decode_mbufs`) and the packet
        filter runs once per batch as mask predicates, yielding one
        encoded verdict per row. Fast rows then flow through
        :meth:`_stateful_columnar`, which keys conntrack straight off
        the columns; rows the columnar decoder cannot express (VLAN,
        fragments, IP options/extensions, truncation) take the exact
        scalar path. Per-packet charge ordering, counters, and virtual-clock
        movement are identical to the scalar loop — bit-exact stats are
        the acceptance gate for this path.
        """
        if type(mbufs) is not list and type(mbufs) is not tuple:
            mbufs = list(mbufs)
        cols = decode_mbufs(mbufs)
        verdicts = self._pf_batch(cols)
        fast_rows = cols.fast
        stats = self.stats
        ledger = stats.ledger
        invocations = ledger.invocations
        cycles = ledger.cycles
        model = ledger.model
        capture_cost = model.capture
        filter_cost = model.packet_filter
        capture_stage = Stage.CAPTURE
        filter_stage = Stage.PACKET_FILTER
        packet_filter = self._filter.packet_filter
        fast_path = not self.sub.needs_conntrack
        deliver = self._deliver
        stateful = self._stateful
        stateful_columnar = self._stateful_columnar
        now = self._now
        ov_next = self._ov_next
        spans = self._spans
        if spans is not None:
            span_tok = spans.start(stats)
            span_nodes = {} if span_tok[0] else None
        else:
            span_tok = None
            span_nodes = None
        packets = 0
        wire_bytes = 0
        pf_packets = 0
        pf_bytes = 0
        fast_packets = 0
        fast_bytes = 0
        wire_col = cols.wire
        for i, mbuf in enumerate(mbufs):
            ts = mbuf.timestamp
            if ts > now:
                now = ts
                self._now = ts
            if ts >= ov_next:
                self._overload_tick(ts)
                ov_next = self._ov_next
            packets += 1
            frame_bytes = wire_col[i]
            wire_bytes += frame_bytes
            invocations[capture_stage] += 1
            cycles[capture_stage] += capture_cost
            invocations[filter_stage] += 1
            cycles[filter_stage] += filter_cost
            if fast_rows[i]:
                verdict = verdicts[i]
                if verdict < 0:
                    continue
                pf_packets += 1
                pf_bytes += frame_bytes
                if span_nodes is not None:
                    node = verdict >> 1
                    span_nodes[node] = span_nodes.get(node, 0) + 1
                if fast_path:
                    deliver(RawPacket(mbuf=mbuf))
                    fast_packets += 1
                    fast_bytes += frame_bytes
                    continue
                stateful_columnar(mbuf, cols, i, verdict >> 1,
                                  bool(verdict & 1))
                now = self._now
                continue
            result = packet_filter(mbuf)
            if not result.matched:
                continue
            pf_packets += 1
            pf_bytes += frame_bytes
            if span_nodes is not None:
                node = result.node
                span_nodes[node] = span_nodes.get(node, 0) + 1
            if fast_path:
                deliver(RawPacket(mbuf=mbuf))
                fast_packets += 1
                fast_bytes += frame_bytes
                continue
            stateful(mbuf, result)
            now = self._now
        stats.packets += packets
        stats.bytes += wire_bytes
        if self._overload is not None:
            self._overload.ledger.packets_seen += packets
        stats.pf_packets += pf_packets
        stats.pf_bytes += pf_bytes
        if fast_packets:
            stats.connf_packets += fast_packets
            stats.connf_bytes += fast_bytes
            stats.sessf_packets += fast_packets
            stats.sessf_bytes += fast_bytes
        ledger.observe_batched(capture_stage, packets)
        ledger.observe_batched(filter_stage, packets)
        if span_tok is not None:
            spans.finish(stats, self._now, span_tok, span_nodes)

    def process_batch_rows(self, row_mbufs, row_cols, row_idx,
                           row_verdicts) -> None:
        """Like :meth:`_process_batch_columnar`, but over pre-decoded
        ingress rows (four parallel lists).

        The sequential backend decodes each ingress burst and evaluates
        the batch filter *once*, shares the columns with NIC dispatch,
        and hands this pipeline parallel lists of (mbuf, column batch,
        row index, verdict) — so the pipeline must not decode or
        filter again. Verdicts are only meaningful for rows with
        ``cols.fast[i]`` set; slow rows run the scalar filter here,
        exactly as in the batch variant. Per-packet charge ordering,
        counters, and clock movement match the scalar loop bit for bit.
        """
        stats = self.stats
        ledger = stats.ledger
        invocations = ledger.invocations
        cycles = ledger.cycles
        model = ledger.model
        capture_cost = model.capture
        filter_cost = model.packet_filter
        capture_stage = Stage.CAPTURE
        filter_stage = Stage.PACKET_FILTER
        packet_filter = self._filter.packet_filter
        fast_path = not self.sub.needs_conntrack
        deliver = self._deliver
        stateful = self._stateful
        stateful_columnar = self._stateful_columnar
        now = self._now
        ov_next = self._ov_next
        spans = self._spans
        if spans is not None:
            span_tok = spans.start(stats)
            span_nodes = {} if span_tok[0] else None
        else:
            span_tok = None
            span_nodes = None
        packets = 0
        wire_bytes = 0
        pf_packets = 0
        pf_bytes = 0
        fast_packets = 0
        fast_bytes = 0
        for mbuf, cols, i, verdict in zip(row_mbufs, row_cols,
                                          row_idx, row_verdicts):
            ts = mbuf.timestamp
            if ts > now:
                now = ts
                self._now = ts
            if ts >= ov_next:
                self._overload_tick(ts)
                ov_next = self._ov_next
            packets += 1
            frame_bytes = cols.wire[i]
            wire_bytes += frame_bytes
            invocations[capture_stage] += 1
            cycles[capture_stage] += capture_cost
            invocations[filter_stage] += 1
            cycles[filter_stage] += filter_cost
            if cols.fast[i]:
                if verdict < 0:
                    continue
                pf_packets += 1
                pf_bytes += frame_bytes
                if span_nodes is not None:
                    node = verdict >> 1
                    span_nodes[node] = span_nodes.get(node, 0) + 1
                if fast_path:
                    deliver(RawPacket(mbuf=mbuf))
                    fast_packets += 1
                    fast_bytes += frame_bytes
                    continue
                stateful_columnar(mbuf, cols, i, verdict >> 1,
                                  bool(verdict & 1))
                now = self._now
                continue
            result = packet_filter(mbuf)
            if not result.matched:
                continue
            pf_packets += 1
            pf_bytes += frame_bytes
            if span_nodes is not None:
                node = result.node
                span_nodes[node] = span_nodes.get(node, 0) + 1
            if fast_path:
                deliver(RawPacket(mbuf=mbuf))
                fast_packets += 1
                fast_bytes += frame_bytes
                continue
            stateful(mbuf, result)
            now = self._now
        stats.packets += packets
        stats.bytes += wire_bytes
        if self._overload is not None:
            self._overload.ledger.packets_seen += packets
        stats.pf_packets += pf_packets
        stats.pf_bytes += pf_bytes
        if fast_packets:
            stats.connf_packets += fast_packets
            stats.connf_bytes += fast_bytes
            stats.sessf_packets += fast_packets
            stats.sessf_bytes += fast_bytes
        ledger.observe_batched(capture_stage, packets)
        ledger.observe_batched(filter_stage, packets)
        if span_tok is not None:
            spans.finish(stats, self._now, span_tok, span_nodes)

    def process_batch_rows_shared(self, mbufs, cols, verdicts,
                                  wire_total, ts_sorted) -> None:
        """Multi-tenant fan-out fast path over one shared column batch.

        Semantically identical to ``process_batch_rows(mbufs,
        [cols]*n, range(n), verdicts)``, but rejected fast rows — the
        overwhelming majority under a selective tenant filter — are
        accounted in bulk instead of per row, which is where an
        N-tenant multiplexer otherwise spends most of its cycles. The
        caller amortizes ``wire_total`` (sum of ``cols.wire``) and
        ``ts_sorted`` (row timestamps nondecreasing) across tenants.

        Falls back to the per-row variant whenever something genuinely
        needs per-row observation: the overload ladder (tick cadence
        and per-row seen accounting), span profiling, or
        out-of-order row timestamps (the running ``now`` max must see
        every row, matched or not).
        """
        n = cols.n
        if n == 0:
            return
        if self._overload is not None or self._spans is not None \
                or not ts_sorted:
            self.process_batch_rows(mbufs, [cols] * n,
                                    list(range(n)), verdicts)
            return
        stats = self.stats
        ledger = stats.ledger
        model = ledger.model
        capture_stage = Stage.CAPTURE
        filter_stage = Stage.PACKET_FILTER
        ledger.invocations[capture_stage] += n
        ledger.invocations[filter_stage] += n
        # Cycle charges replay the per-row accumulation order exactly:
        # float addition is not associative, and these sums feed
        # byte-compared report fields (stage_cycles, zero-loss Gbps).
        cycles = ledger.cycles
        capture_cost = model.capture
        filter_cost = model.packet_filter
        c_cap = cycles[capture_stage]
        c_flt = cycles[filter_stage]
        for _ in range(n):
            c_cap += capture_cost
            c_flt += filter_cost
        cycles[capture_stage] = c_cap
        cycles[filter_stage] = c_flt
        fast = cols.fast
        wires = cols.wire
        packet_filter = self._filter.packet_filter
        fast_path = not self.sub.needs_conntrack
        deliver = self._deliver
        stateful = self._stateful
        stateful_columnar = self._stateful_columnar
        pf_packets = 0
        pf_bytes = 0
        fast_packets = 0
        fast_bytes = 0
        for i in [i for i, v in enumerate(verdicts)
                  if v >= 0 or not fast[i]]:
            mbuf = mbufs[i]
            ts = mbuf.timestamp
            if ts > self._now:
                self._now = ts
            frame_bytes = wires[i]
            if fast[i]:
                verdict = verdicts[i]
                pf_packets += 1
                pf_bytes += frame_bytes
                if fast_path:
                    deliver(RawPacket(mbuf=mbuf))
                    fast_packets += 1
                    fast_bytes += frame_bytes
                    continue
                stateful_columnar(mbuf, cols, i, verdict >> 1,
                                  bool(verdict & 1))
            else:
                result = packet_filter(mbuf)
                if not result.matched:
                    continue
                pf_packets += 1
                pf_bytes += frame_bytes
                if fast_path:
                    deliver(RawPacket(mbuf=mbuf))
                    fast_packets += 1
                    fast_bytes += frame_bytes
                    continue
                stateful(mbuf, result)
        # Rows are ts-sorted, so the burst's clock high-water mark is
        # the last row's — matched or not (the per-row loop advances
        # `now` on rejected rows too).
        last_ts = mbufs[n - 1].timestamp
        if last_ts > self._now:
            self._now = last_ts
        stats.packets += n
        stats.bytes += wire_total
        stats.pf_packets += pf_packets
        stats.pf_bytes += pf_bytes
        if fast_packets:
            stats.connf_packets += fast_packets
            stats.connf_bytes += fast_bytes
            stats.sessf_packets += fast_packets
            stats.sessf_bytes += fast_bytes
        ledger.observe_batched(capture_stage, n)
        ledger.observe_batched(filter_stage, n)

    # ------------------------------------------------------------------
    # stateful processing
    # ------------------------------------------------------------------
    def _stateful_columnar(self, mbuf: Mbuf, cols, i: int,
                           node: int, terminal: bool) -> None:
        """Columnar variant of :meth:`_stateful` for fast rows.

        The connection key is assembled straight from the decoded
        columns — no :func:`parse_stack`, no header views, and a
        :class:`FiveTuple` object only when a connection is actually
        created (with its canonical cache pre-seeded, so
        ``Connection.__init__`` reuses the same key tuple). The stack
        is parsed lazily, only for connections that still probe, parse,
        or stream payload bytes; pure TRACK-state flows never touch it.
        """
        stats = self.stats
        ledger = stats.ledger
        if ledger.hist is None:
            # ``charge`` unrolled: two dict updates instead of a method
            # call plus a ``Stage.value`` descriptor read — the single
            # hottest line of the columnar path. Telemetry runs keep
            # the real call so stage histograms stay identical.
            ledger.invocations[_CONN_TRACK] += 1
            ledger.cycles[_CONN_TRACK] += self._ct_cost
        else:
            ledger.charge(_CONN_TRACK)
        now = self._now
        wire = cols.wire[i]
        sip = cols.src_ip[i]
        dip = cols.dst_ip[i]
        sp = cols.src_port[i]
        dp = cols.dst_port[i]
        proto = cols.proto[i]
        if (sip, sp) <= (dip, dp):
            key = (sip, sp, dip, dp, proto)
        else:
            key = (dip, dp, sip, sp, proto)
        table = self.table
        conn = table.lookup_key(key)
        if conn is None:
            block = self._ov_block
            shed_map = self._ov_shed
            if block or shed_map:
                tag = shed_map.get(key)
                if tag is None and block and (
                        block == 2 or self._level is Level.PACKET):
                    ctl = self._overload
                    tag = (ctl.rung, "packet_filter" if block == 1
                           else "connection_filter")
                    shed_map[key] = tag
                if tag is not None:
                    stats.conns_shed += 1
                    self._overload.ledger.record_shed(
                        tag[0], tag[1], wire)
                    self._maybe_expire()
                    return
            if self._shedding:
                stats.conns_shed += 1
                return
            five_tuple = FiveTuple(sip, dip, sp, dp, proto)
            object.__setattr__(five_tuple, "_canonical", key)
            conn = table.create_with_key(key, five_tuple, now)
            stats.conns_created += 1
            if self._tracer is not None:
                self._tracer.record(conn, now, "created")
            self._init_connection(conn, node, terminal)
            from_orig = True  # the creating packet defines orig
        else:
            conn_tuple = conn.five_tuple
            from_orig = (conn_tuple.src_ip == sip
                         and conn_tuple.src_port == sp)
        payload_len = cols.payload_len[i]
        if proto == 6:
            flags = cols.tcp_flags[i]
            seq = cols.tcp_seq[i]
        else:
            flags = None
            seq = None
        newly_established = conn.record_packet(
            from_orig, wire, payload_len, now, flags, seq
        )
        table.touch(conn, now, newly_established)

        state = conn.state
        if state is _TRACK:
            if self._level is Level.PACKET and conn.matched:
                self._deliver(RawPacket(mbuf=mbuf,
                                        five_tuple=conn.five_tuple))
            elif self.sub.streams_bytes and conn.matched:
                stack = parse_stack(mbuf)
                five_tuple = FiveTuple.from_stack(stack)
                segments = self._reassemble(conn, stack, five_tuple,
                                            stack.l4_payload())
                self._handle_stream_segments(conn, segments)
        elif state in _PROBE_OR_PARSE:
            if self.sub.buffers_packets and not conn.matched:
                conn.buffer_packet(mbuf)
            stack = parse_stack(mbuf)
            five_tuple = FiveTuple.from_stack(stack)
            segments = self._reassemble(conn, stack, five_tuple,
                                        stack.l4_payload())
            if self.sub.streams_bytes:
                self._handle_stream_segments(conn, segments)
            if segments:
                if conn.state is ConnState.PROBE:
                    self._probe(conn, segments)
                elif conn.state is ConnState.PARSE:
                    self._parse(conn, segments)
        # DELETE (ignore tombstone): nothing to do.

        if conn.state is not _DELETE and \
                conn.conn_term_node is not None:
            stats.connf_packets += 1
            stats.connf_bytes += wire
            if conn.matched:
                stats.sessf_packets += 1
                stats.sessf_bytes += wire

        if conn.terminated and conn.state is not _DELETE:
            self._finalize(conn, delivered_by="termination")
        self._maybe_expire()

    def _stateful(self, mbuf: Mbuf, result) -> None:
        stats = self.stats
        ledger = stats.ledger
        ledger.charge(Stage.CONN_TRACK)
        stack = mbuf.stack
        if stack is None:  # match-all filters skip the layer walk
            stack = parse_stack(mbuf)
        five_tuple = FiveTuple.from_stack(stack)
        if five_tuple is None:
            # Non-transport traffic cannot be tracked; packet-level
            # subscriptions with a satisfied filter still get it —
            # the full filter was satisfied, so the packet survives
            # the remaining funnel layers.
            if result.terminal and self._level is Level.PACKET:
                self._deliver(RawPacket(mbuf=mbuf))
                wire = len(mbuf.data)
                stats.connf_packets += 1
                stats.connf_bytes += wire
                stats.sessf_packets += 1
                stats.sessf_bytes += wire
            return
        block = self._ov_block
        shed_map = self._ov_shed
        if (block or shed_map) and self.table.lookup(five_tuple) is None:
            # Overload ladder admission gate. Rung 1 refuses new
            # connections whose only use is packet-level delivery
            # (their packets already matched the packet filter — the
            # conntrack/probe work is pure overhead under pressure);
            # rung 2+ refuses all new connections. Established flows
            # are never touched here, so their results stay bit-exact —
            # and once a flow's start is refused, the rest of it is
            # too, so no half-seen flow ever surfaces as a record.
            key = five_tuple.canonical()
            tag = shed_map.get(key)
            if tag is None and block and (
                    block == 2 or self._level is Level.PACKET):
                ctl = self._overload
                tag = (ctl.rung, "packet_filter" if block == 1
                       else "connection_filter")
                shed_map[key] = tag
            if tag is not None:
                stats.conns_shed += 1
                self._overload.ledger.record_shed(
                    tag[0], tag[1], len(mbuf.data))
                # Keep the timer wheel advancing on shed packets:
                # admitted connections must expire at exactly the same
                # virtual times as in an unshedded run.
                self._maybe_expire()
                return
        if self._shedding and self.table.lookup(five_tuple) is None:
            # memory_policy="shed": while this core is over its memory
            # share, refuse to create new flow state (existing flows
            # keep being processed).
            stats.conns_shed += 1
            return
        conn, created = self.table.get_or_create(five_tuple, self._now)
        if created:
            stats.conns_created += 1
            if self._tracer is not None:
                self._tracer.record(conn, self._now, "created")
            self._init_connection(conn, result.node, result.terminal)
        from_orig = conn.five_tuple.same_direction(five_tuple)
        # Only the payload *length* is needed for accounting; the bytes
        # are sliced lazily below, and only for connections that still
        # probe/parse/stream (TRACK-state flows skip the copy).
        payload_len = stack.l4_payload_len()
        tcp = stack.tcp
        flags = tcp.flags_raw() if tcp is not None else None
        seq = tcp.seq_no() if tcp is not None else None
        newly_established = conn.record_packet(
            from_orig, len(mbuf.data), payload_len, self._now, flags, seq
        )
        self.table.touch(conn, self._now, newly_established)

        state = conn.state
        if state is ConnState.TRACK:
            if self._level is Level.PACKET and conn.matched:
                self._deliver(RawPacket(mbuf=mbuf,
                                        five_tuple=conn.five_tuple))
            elif self.sub.streams_bytes and conn.matched:
                # Byte-stream subscriptions keep the reorderer alive
                # past the filter match: the stream IS the data.
                segments = self._reassemble(conn, stack, five_tuple,
                                            stack.l4_payload())
                self._handle_stream_segments(conn, segments)
        elif state in (ConnState.PROBE, ConnState.PARSE):
            if self.sub.buffers_packets and not conn.matched:
                conn.buffer_packet(mbuf)
            segments = self._reassemble(conn, stack, five_tuple,
                                        stack.l4_payload())
            if self.sub.streams_bytes:
                self._handle_stream_segments(conn, segments)
            if segments:
                if conn.state is ConnState.PROBE:
                    self._probe(conn, segments)
                elif conn.state is ConnState.PARSE:
                    self._parse(conn, segments)
        # DELETE (ignore tombstone): nothing to do.

        # Funnel attribution: this packet survives the connection
        # layer if, after processing it, its connection has passed the
        # connection filter (or needed none) and is still live; it
        # survives the session layer if the full filter is satisfied.
        # Undecided (probing) and rejected connections drop here.
        if conn.state is not ConnState.DELETE and \
                conn.conn_term_node is not None:
            wire = len(mbuf.data)
            stats.connf_packets += 1
            stats.connf_bytes += wire
            if conn.matched:
                stats.sessf_packets += 1
                stats.sessf_bytes += wire

        if conn.terminated and conn.state is not ConnState.DELETE:
            self._finalize(conn, delivered_by="termination")
        self._maybe_expire()

    def _init_connection(self, conn: Connection, node: int,
                         terminal: bool) -> None:
        conn.pkt_term_node = node
        needs_sessions = self._level is Level.SESSION
        if terminal:
            conn.matched = True
            conn.conn_term_node = FILTER_SATISFIED
            if self._tracer is not None:
                self._tracer.record(conn, self._now, "matched", "packet")
            if needs_sessions or (
                self.sub.identify_services
                and self._level is Level.CONNECTION
            ):
                # Session subscriptions must parse; service-labeling
                # connection subscriptions probe until identification.
                self._enter_probe(conn)
            else:
                conn.state = ConnState.TRACK
                if self.sub.streams_bytes:
                    # The stream itself is the subscription data.
                    self._create_reassembler(conn)
        else:
            self._enter_probe(conn)

    def _enter_probe(self, conn: Connection) -> None:
        conn.state = ConnState.PROBE
        if self.sub.streams_bytes or self._probe_protocols:
            self._create_reassembler(conn)
        if not self._probe_protocols:
            # The filter needs a connection-layer decision but no
            # parser can make one: resolve immediately as no service.
            self._on_service_resolved(conn, None)
            return
        candidates = self.sub.parser_registry.create_set(
            self._probe_protocols)
        conn.parser = _ProbeContext(candidates)

    def _create_reassembler(self, conn: Connection) -> None:
        if conn.five_tuple.protocol != PROTO_TCP or \
                conn.reassembler is not None:
            return
        if self.config.reassembler == "buffered":
            conn.reassembler = BufferedReassembler()
        else:
            # The stats sink mirrors the reorderer's rare-path discard
            # counters (dup/overlap/stale/overflow) onto the per-core
            # funnel telemetry; the adaptive window knobs come from
            # config (off by default — the fixed ring is the paper's).
            conn.reassembler = LazyReassembler(
                self.config.ooo_capacity,
                adaptive=self.config.ooo_adaptive,
                min_capacity=self.config.ooo_min_capacity,
                max_capacity=self.config.ooo_max_capacity,
                stats=self.stats)

    # -- reassembly ----------------------------------------------------------
    def _reassemble(self, conn: Connection, stack, five_tuple,
                    payload: bytes) -> List[StreamSegment]:
        if conn.five_tuple.protocol == PROTO_UDP:
            if not payload:
                return []
            return [StreamSegment(payload,
                                  conn.five_tuple.same_direction(five_tuple),
                                  self._now)]
        if conn.reassembler is None:
            return []
        pdu = L4Pdu.from_stack(stack, five_tuple, conn.five_tuple, payload)
        # Every segment of a connection still being probed/parsed goes
        # through the reorderer (sequence tracking examines ACKs too).
        model = self.stats.ledger.model
        if self.config.reassembler == "buffered":
            # Traditional design additionally memcpys every payload
            # byte into the stream buffer.
            self.stats.ledger.charge_cycles(
                Stage.REASSEMBLY,
                model.reassembly +
                model.reassembly_copy_per_byte * len(payload),
            )
            segments = conn.reassembler.push(pdu)
            dropped = conn.reassembler.drain_truncations()
            if dropped:
                # max_buffer overflow: the stream was truncated at a
                # hole. Surface it as an explicit event (telemetry +
                # loss ledger), not just a memory-accounting blip.
                stats = self.stats
                for nbytes in dropped:
                    stats.reasm_truncations += 1
                    stats.reasm_truncated_bytes += nbytes
                    if self._overload is not None:
                        self._overload.ledger.record_truncation(nbytes)
                if self._tracer is not None:
                    self._tracer.record(conn, self._now, "truncated")
            return segments
        self.stats.ledger.charge(Stage.REASSEMBLY)
        return conn.reassembler.push(pdu)

    # -- probing ---------------------------------------------------------------
    def _probe(self, conn: Connection, segments: List[StreamSegment]) -> None:
        context = conn.parser
        if not isinstance(context, _ProbeContext):
            return
        ledger = self.stats.ledger
        injector = self._injector
        for segment in segments:
            if not segment.payload:
                continue
            context.pending.append(segment)
            context.bytes_probed += len(segment.payload)
            ledger.charge(Stage.PARSING)
            # Parser isolation boundary: a ProtocolError out of probe()
            # (real or injected) resolves the connection as "no
            # service" instead of tearing the core down. The resolution
            # itself runs outside the try so a CallbackError raised
            # downstream is never swallowed here.
            matched_parser = None
            failed = False
            still_unsure = []
            try:
                if injector is not None:
                    injector.on_parse()
                for parser in context.candidates:
                    outcome = parser.probe(segment)
                    if outcome is ProbeResult.MATCH:
                        matched_parser = parser
                        break
                    if outcome is ProbeResult.UNSURE:
                        still_unsure.append(parser)
            except ProtocolError:
                self.stats.parser_exceptions += 1
                failed = True
                if self._spans is not None:
                    self._spans.trigger("parser_error", "probe",
                                        self._now)
            if failed:
                self._on_service_resolved(conn, None)
                return
            if matched_parser is not None:
                self._on_service_resolved(conn, matched_parser)
                return
            context.candidates = still_unsure
            if not context.candidates or \
                    context.bytes_probed > self.config.probe_byte_limit:
                if context.bytes_probed > self.config.probe_byte_limit:
                    self.stats.probe_giveups += 1
                self._on_service_resolved(conn, None)
                return

    def _on_service_resolved(self, conn: Connection, parser) -> None:
        """Probe finished: run the connection filter and transition."""
        context = conn.parser if isinstance(conn.parser, _ProbeContext) \
            else None
        pending = context.pending if context is not None else []
        if parser is not None:
            conn.service_name = parser.protocol
            conn.parser = parser
        else:
            conn.parser = None
        if self._tracer is not None:
            self._tracer.record(conn, self._now, "probed",
                                parser.protocol if parser else "none")

        if conn.matched:
            # Filter satisfied before the connection layer. Session
            # subscriptions still need parsed sessions; everything else
            # just keeps tracking.
            if self._level is Level.SESSION and parser is not None:
                conn.state = ConnState.PARSE
                self._parse(conn, pending)
            elif self._level is Level.SESSION:
                self._discard(conn)  # can never produce a session
            else:
                self._stop_heavy_processing(conn, ConnState.TRACK)
            return

        result = self._filter.connection_filter(conn, conn.pkt_term_node)
        if not result.matched:
            self._discard(conn)
            return
        conn.conn_term_node = result.node
        if result.terminal:
            conn.matched = True
            if self._tracer is not None:
                self._tracer.record(conn, self._now, "matched",
                                    "connection")
            self._on_full_match(conn)
            if self._level is Level.SESSION:
                if parser is None:
                    self._discard(conn)
                else:
                    conn.state = ConnState.PARSE
                    self._parse(conn, pending)
            else:
                # Packet/connection subscriptions need no parsed
                # sessions: stop probing/reassembling, keep tracking.
                self._stop_heavy_processing(conn, ConnState.TRACK)
            return
        # Session predicates remain: parse until sessions complete.
        if parser is None:
            self._discard(conn)
            return
        conn.state = ConnState.PARSE
        self._parse(conn, pending)

    # -- parsing ---------------------------------------------------------------
    def _parse(self, conn: Connection, segments: List[StreamSegment]) -> None:
        ledger = self.stats.ledger
        injector = self._injector
        for segment in segments:
            if conn.state is not ConnState.PARSE:
                break
            if not segment.payload:
                continue
            ledger.charge(Stage.PARSING)
            # Parser isolation boundary (see _probe): only the parser
            # invocation is guarded; _on_session — which can raise
            # CallbackError — runs outside the try.
            try:
                if injector is not None:
                    injector.on_parse()
                result = conn.parser.parse(segment)
                sessions = conn.parser.drain_sessions()
            except ProtocolError:
                self.stats.parser_exceptions += 1
                if self._spans is not None:
                    self._spans.trigger("parser_error", "parse",
                                        self._now)
                self._on_parse_error(conn)
                break
            for session in sessions:
                self._on_session(conn, session)
                if conn.state is not ConnState.PARSE:
                    break
            if result is ParseResult.ERROR:
                self._on_parse_error(conn)
                break

    def _on_session(self, conn: Connection, session: Session) -> None:
        self.stats.ledger.charge(Stage.SESSION_FILTER)
        self.stats.sessions_parsed += 1
        if conn.conn_term_node == FILTER_SATISFIED:
            matched = True
        else:
            matched = self._filter.session_filter(session,
                                                  conn.conn_term_node)
        if self._tracer is not None:
            self._tracer.record(conn, self._now, "parsed",
                                "match" if matched else "nomatch")
        parser = conn.parser
        if matched:
            self.stats.sessions_matched += 1
            if self._level is Level.SESSION:
                self._deliver(self.sub.datatype(
                    session=session, five_tuple=conn.five_tuple))
                if self._tracer is not None:
                    self._tracer.record(conn, self._now, "delivered",
                                        "session")
                next_state = parser.session_match_state()
                if next_state == "parse":
                    conn.state = ConnState.PARSE
                else:
                    # Figure 4b: nothing more can come of this
                    # connection — deliver and drop it early (a
                    # completed delivery, not a filter rejection).
                    self._discard(conn, rejected=False)
            else:
                conn.matched = True
                if self._tracer is not None:
                    self._tracer.record(conn, self._now, "matched",
                                        "session")
                self._on_full_match(conn)
                self._stop_heavy_processing(
                    conn,
                    ConnState.TRACK,
                )
        else:
            next_state = parser.session_nomatch_state() if parser else \
                "delete"
            if next_state == "delete" and not conn.matched:
                self._discard(conn)
            # "parse": keep going — later sessions may match (HTTP).

    def _on_parse_error(self, conn: Connection) -> None:
        """Malformed L7 data: keep the connection if already matched,
        otherwise it can no longer satisfy the filter."""
        if conn.matched and self._level is not Level.SESSION:
            self._stop_heavy_processing(conn, ConnState.TRACK)
        else:
            self._discard(conn)

    def _on_full_match(self, conn: Connection) -> None:
        """The whole filter just matched mid-connection."""
        if self._level is Level.PACKET and conn.buffered_mbufs:
            for mbuf in conn.drain_buffered():
                self._deliver(RawPacket(mbuf=mbuf,
                                        five_tuple=conn.five_tuple))
        if self.sub.streams_bytes and conn.user_data:
            # Release the stream chunks held while the filter resolved.
            for segment in conn.user_data:
                self._deliver_chunk(conn, segment)
            conn.user_data = None

    def _handle_stream_segments(self, conn: Connection,
                                segments) -> None:
        """Byte-stream subscriptions: deliver (or hold) in-order chunks."""
        if not segments:
            return
        if conn.matched:
            for segment in segments:
                self._deliver_chunk(conn, segment)
        else:
            if conn.user_data is None:
                conn.user_data = []
            conn.user_data.extend(segments)

    def _deliver_chunk(self, conn: Connection, segment) -> None:
        self._deliver(StreamChunk(
            payload=segment.payload,
            from_orig=segment.from_orig,
            timestamp=segment.timestamp,
            five_tuple=conn.five_tuple,
        ))

    # -- state transitions -----------------------------------------------------
    def _stop_heavy_processing(self, conn: Connection,
                               state: ConnState) -> None:
        """Enter TRACK: free the parser (and the reassembler, unless
        the subscription streams bytes), keep counters."""
        conn.state = state
        conn.parser = None
        if not self.sub.streams_bytes:
            conn.reassembler = None
        if self._level is not Level.PACKET:
            conn.buffered_mbufs = []
            conn.buffered_bytes = 0

    def _discard(self, conn: Connection, rejected: bool = True) -> None:
        """Filter rejected (or nothing more to deliver): drop all heavy
        state and leave an inert tombstone (see module docstring).

        ``rejected=False`` marks cleanup after a completed delivery or
        natural termination — not a funnel drop — so it is excluded
        from the discard counter and the trace.
        """
        if rejected:
            self.stats.conns_discarded += 1
            if self._tracer is not None:
                self._tracer.record(conn, self._now, "discarded")
        conn.state = ConnState.DELETE
        conn.parser = None
        conn.reassembler = None
        conn.buffered_mbufs = []
        conn.buffered_bytes = 0
        conn.user_data = None

    # -- termination and expiry --------------------------------------------------
    def _finalize(self, conn: Connection, delivered_by: str) -> None:
        """Connection ended (FIN/RST): deliver, then linger briefly.

        The entry stays in the table as a lightweight TIME_WAIT-like
        tombstone so the trailing ACK of the FIN exchange does not
        re-create the connection; a short timer removes it.
        """
        self._deliver_connection(conn)
        self._discard(conn, rejected=False)
        # With no timer tiers configured (the Figure 8 no-timeout
        # ablation) the tombstone simply stays resident — consistent
        # with "nothing is ever freed".
        self.table.schedule_removal(conn, self._now)

    def _deliver_connection(self, conn: Connection) -> None:
        if self.sub.streams_bytes:
            return  # chunks were delivered as they arrived
        if (self._level is Level.CONNECTION and conn.matched
                and not conn.delivered):
            conn.delivered = True
            self._deliver(ConnectionRecord.from_connection(conn))
            self.stats.conns_delivered += 1
            if self._tracer is not None:
                self._tracer.record(conn, self._now, "delivered",
                                    "connection")

    def _maybe_expire(self, force: bool = False) -> None:
        if not force and self._now - self._last_expire < 0.25:
            return
        self._last_expire = self._now
        tracer = self._tracer
        for conn in self.table.expire(self._now):
            self.stats.conns_expired += 1
            self._deliver_connection(conn)
            if tracer is not None:
                tracer.record(conn, self._now, "expired")

    def advance_time(self, now: float) -> None:
        """Move virtual time forward (idle periods, end of trace)."""
        self._now = max(self._now, now)
        self._maybe_expire(force=True)

    def drain(self) -> None:
        """End of run: deliver still-live matched connections."""
        for conn in self.table.drain():
            self._deliver_connection(conn)

    # -- delivery ---------------------------------------------------------------
    def _deliver(self, obj) -> None:
        stats = self.stats
        if self._quarantined:
            # Post-quarantine deliveries are still counted and charged
            # exactly like real ones (baseline-equal accounting); only
            # the user function is withheld.
            rx_cycles = self._executor.record_suppressed()
            stats.callbacks_suppressed += 1
        else:
            try:
                if self._injector is not None:
                    self._injector.on_deliver()
                rx_cycles = self._executor.submit(obj)
            except Exception as exc:
                stats.ledger.charge_cycles(Stage.CALLBACK,
                                           self._cb_error_cycles)
                stats.callbacks += 1
                self._on_callback_error(exc)
                return
        stats.ledger.charge_cycles(Stage.CALLBACK, rx_cycles)
        stats.callbacks += 1

    def _on_callback_error(self, exc: Exception) -> None:
        """A delivery's callback (real or injected) raised."""
        if not self._isolate:
            raise CallbackError(
                f"subscription callback raised on core {self.core_id}: "
                f"{exc!r}") from exc
        stats = self.stats
        stats.callback_errors += 1
        if stats.callback_errors >= self._error_budget and \
                not self._quarantined:
            self._quarantined = True
            stats.callback_quarantined = 1
            if self._spans is not None:
                self._spans.trigger(
                    "callback_quarantine",
                    "quarantined after %d errors" % stats.callback_errors,
                    self._now)

    # -- monitoring ---------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        """Resident connection-table bytes, plus any injected memory
        spike active at the pipeline's virtual time."""
        memory = self.table.memory_bytes
        if self._injector is not None:
            memory += self._injector.memory_spike_bytes(self._now)
        return memory

    def sample_memory(self) -> None:
        stats = self.stats
        if self._memory_share is not None:
            self._enforce_memory()
        stats.sample_memory(
            self._now, len(self.table), self.memory_bytes
        )
        if stats.reasm_hist is not None:
            occupancy = 0
            for conn in self.table:
                reassembler = conn.reassembler
                if reassembler is not None:
                    occupancy += reassembler.memory_bytes
            stats.observe_reasm_occupancy(occupancy)

    def _enforce_memory(self) -> None:
        """Apply the evict/shed memory policy against this core's share
        of ``memory_limit_bytes`` (called at the memory-sample cadence,
        which is parent-clocked — identical across backends)."""
        share = self._memory_share
        spike = (self._injector.memory_spike_bytes(self._now)
                 if self._injector is not None else 0)
        if self.table.memory_bytes + spike <= share:
            self._shedding = False
            return
        stats = self.stats
        if self.config.memory_policy == "shed":
            self._shedding = True
            return
        # "evict": force-expire idle flows, oldest activity first.
        try:
            victims = self.table.evict_idle(share - spike)
        except ResourceExhaustedError:
            # Even an empty table would sit above the share (an
            # injected spike, or the share itself is tiny): evict
            # everything evictable and degrade further by shedding
            # new connections until the pressure passes.
            victims = self.table.evict_idle(0)
            self._shedding = True
        tracer = self._tracer
        for conn in victims:
            stats.conns_evicted += 1
            self._deliver_connection(conn)
            if tracer is not None:
                tracer.record(conn, self._now, "evicted")

    # -- overload control (repro.overload) --------------------------------
    def _overload_tick(self, now: float) -> None:
        """One controller evaluation at virtual time ``now`` (reached
        via the per-packet ``ts >= ov_next`` compare)."""
        ctl = self._overload
        rung_before = ctl.rung
        tripped = ctl.evaluate(now, self.stats.ledger.busy_seconds,
                               self.table.memory_bytes,
                               self._ov_mem_share)
        self._ov_next = now + ctl.interval
        self._ov_block = ctl.admission_block
        if self._spans is not None and ctl.rung > rung_before:
            self._spans.trigger(
                "overload_rung",
                "rung %d->%d" % (rung_before, ctl.rung), now)
        if ctl.downgrading and not tripped:
            self._overload_downgrade(now)
        if tripped and self.overload_failfast_at is None:
            self.overload_failfast_at = now
            ctl.ledger.failfast_at = now

    def _overload_downgrade(self, now: float) -> None:
        """Rung 3's per-connection circuit breaker: disable lazy
        reassembly / session parsing for the heaviest still-probing
        connections. Matched connections keep being tracked (their
        connection records still deliver, with full packet/byte
        counts); connections whose filter verdict depended on the now-
        abandoned parse can no longer resolve and drop to a tombstone."""
        victims = self.table.heavy_connections(
            self.config.overload_heavy_bytes)
        if not victims:
            return
        ledger = self._overload.ledger
        tracer = self._tracer
        for conn in victims:
            ledger.record_downgrade()
            if tracer is not None:
                tracer.record(conn, now, "downgraded")
            if conn.matched and self._level is not Level.SESSION:
                self._stop_heavy_processing(conn, ConnState.TRACK)
            else:
                self._discard(conn, rejected=False)

    @property
    def overload_rung(self) -> int:
        """The ladder's current rung (0 when the policy is off)."""
        return self._overload.rung if self._overload is not None else 0

    @property
    def overload_shed_packets(self) -> int:
        return (self._overload.ledger.packets_shed
                if self._overload is not None else 0)

    def set_span_ctx(self, ctx) -> None:
        """Stamp the IPC span context for the next burst (the parallel
        worker loop calls this with the ``(queue, seq)`` that rode the
        :class:`~repro.packet.batch.PackedBatch`), stitching worker
        spans into the parent's trace."""
        if self._spans is not None:
            self._spans.ctx = ctx

    def fold_fault_counters(self) -> None:
        """Merge the injector's injection counts into the stats
        snapshot (idempotent; called before stats leave the core)."""
        if self._injector is not None and self._injector.counters:
            stats = self.stats
            for kind, count in self._injector.counters.items():
                stats.fault_counters[kind] = \
                    stats.fault_counters.get(kind, 0) + count
            self._injector.counters.clear()
        if self._spans is not None:
            # Re-snapshot each time (idempotent): the recorder's state
            # is complete at every fold point, and the snapshot ships
            # home with the pickled CoreStats.
            self.stats.spans = self._spans.snapshot()
