"""The Retina core: runtime, subscriptions, pipeline, cycle accounting.

The public API mirrors the paper's programming model::

    from repro import Runtime, RuntimeConfig

    cfg = RuntimeConfig(cores=8)
    runtime = Runtime(
        cfg,
        filter_str="tls.sni ~ '.*\\\\.com$'",
        datatype="tls_handshake",
        callback=lambda hs: print(hs.sni(), hs.cipher()),
    )
    report = runtime.run(traffic)
"""

from repro.core.cycles import CostModel, CycleLedger, Stage
from repro.core.datatypes import (
    ConnectionRecord,
    DnsTransaction,
    HttpTransaction,
    QuicHandshake,
    RawPacket,
    SshHandshake,
    SUBSCRIBABLES,
    TlsHandshake,
)
from repro.core.subscription import Level, Subscription
from repro.core.pipeline import CorePipeline
from repro.core.runtime import Runtime, RuntimeReport
from repro.core.stats import CoreStats

__all__ = [
    "Stage",
    "CostModel",
    "CycleLedger",
    "Level",
    "Subscription",
    "RawPacket",
    "ConnectionRecord",
    "TlsHandshake",
    "HttpTransaction",
    "SshHandshake",
    "DnsTransaction",
    "QuicHandshake",
    "SUBSCRIBABLES",
    "CorePipeline",
    "Runtime",
    "RuntimeReport",
    "CoreStats",
]
