"""Callback execution models (Section 5.3 + the paper's future work).

Retina runs callbacks **inline** on the receive core: no cross-core
communication, no serialization, but an expensive callback stalls that
core's pipeline. The paper explicitly leaves "support for alternative
callback execution models to future work" — this module provides one:
a **queued** executor that models handing results to a dedicated worker
pool through a bounded queue. The receive core pays only a small
enqueue cost; callback cycles are consumed from the worker pool's
budget instead, and a saturated pool drops deliveries (the analogue of
a full hand-off queue).

The user's Python callback still runs synchronously either way — the
virtual-cycle accounting is what differs, matching how the rest of the
reproduction treats time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass
class ExecutorStats:
    """Accounting for a callback executor."""

    delivered: int = 0
    dropped: int = 0
    worker_cycles: float = 0.0

    def worker_busy_seconds(self, cpu_hz: float, workers: int) -> float:
        return self.worker_cycles / cpu_hz / max(workers, 1)


class InlineExecutor:
    """Retina's model: the callback runs on the receive core."""

    name = "inline"

    def __init__(self, callback: Optional[Callable],
                 callback_cycles: float) -> None:
        self._callback = callback
        self.callback_cycles = callback_cycles
        self.stats = ExecutorStats()

    def submit(self, obj: Any) -> float:
        """Deliver one result; returns cycles to charge the RX core."""
        self.stats.delivered += 1
        if self._callback is not None:
            self._callback(obj)
        return self.callback_cycles

    def record_suppressed(self) -> float:
        """Account a delivery whose user callback was skipped (callback
        quarantine). Identical cycle charge and delivery count as
        :meth:`submit`, so quarantined runs keep baseline-equal
        accounting — only the user function is withheld."""
        self.stats.delivered += 1
        return self.callback_cycles


class QueuedExecutor:
    """Future-work model: callbacks on a dedicated worker pool.

    The receive core pays ``enqueue_cycles`` per delivery (serialize +
    MPSC queue operation). Worker capacity is tracked in virtual time:
    if the pool's cycle demand exceeds what ``workers`` cores could
    have executed over the traffic's duration, the overflow is counted
    as dropped deliveries by :meth:`finalize`.
    """

    name = "queued"

    def __init__(
        self,
        callback: Optional[Callable],
        callback_cycles: float,
        workers: int = 1,
        enqueue_cycles: float = 250.0,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self._callback = callback
        self.callback_cycles = callback_cycles
        self.workers = workers
        self.enqueue_cycles = enqueue_cycles
        self.stats = ExecutorStats()

    def submit(self, obj: Any) -> float:
        self.stats.delivered += 1
        self.stats.worker_cycles += self.callback_cycles
        if self._callback is not None:
            self._callback(obj)
        return self.enqueue_cycles

    def record_suppressed(self) -> float:
        """Account a delivery whose user callback was skipped (callback
        quarantine); same charges as :meth:`submit`."""
        self.stats.delivered += 1
        self.stats.worker_cycles += self.callback_cycles
        return self.enqueue_cycles

    def finalize(self, duration: float, cpu_hz: float) -> None:
        """Convert any worker-pool overload into dropped deliveries."""
        capacity_cycles = duration * cpu_hz * self.workers
        if self.stats.worker_cycles <= capacity_cycles or \
                self.callback_cycles <= 0:
            return
        excess = self.stats.worker_cycles - capacity_cycles
        dropped = int(excess / self.callback_cycles)
        self.stats.dropped = min(dropped, self.stats.delivered)

    def max_zero_loss_callbacks_per_second(self, cpu_hz: float) -> float:
        """The pool's callback-rate ceiling."""
        if self.callback_cycles <= 0:
            return float("inf")
        return self.workers * cpu_hz / self.callback_cycles
