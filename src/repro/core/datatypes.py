"""Subscribable data types (Section 3.2.2's three abstraction levels).

Each class bundles what the callback receives plus the class-level
metadata the framework uses to derive the processing state machine
(Figure 4): the abstraction level, which application parsers must be
probed, and how the connection should be treated after a filter match.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.conntrack.conn import Connection
from repro.conntrack.five_tuple import FiveTuple
from repro.packet.mbuf import Mbuf
from repro.packet.stack import PacketStack
from repro.protocols.base import Session


class Level(enum.Enum):
    """Data abstraction levels (OSI bands, Section 3.2.2)."""

    PACKET = "packet"          # L2-3: raw frames, order of arrival
    CONNECTION = "connection"  # L4: reassembled connection records
    SESSION = "session"        # L5-7: parsed application sessions


@dataclass
class RawPacket:
    """A raw frame, optionally in the context of a matched connection."""

    level = Level.PACKET
    app_parsers = ()  # class metadata, not a dataclass field
    name = "packet"

    mbuf: Mbuf = None
    #: Set when the packet was delivered via a connection-level match.
    five_tuple: Optional[FiveTuple] = None

    def data(self) -> bytes:
        return self.mbuf.data

    @property
    def timestamp(self) -> float:
        return self.mbuf.timestamp


@dataclass
class ConnectionRecord:
    """A terminated (or expired) connection's summary record."""

    level = Level.CONNECTION
    app_parsers = ()  # class metadata, not a dataclass field
    name = "connection"

    five_tuple: FiveTuple = None
    first_ts: float = 0.0
    last_ts: float = 0.0
    syn_ts: Optional[float] = None
    established_ts: Optional[float] = None
    pkts_orig: int = 0
    pkts_resp: int = 0
    bytes_orig: int = 0
    bytes_resp: int = 0
    payload_bytes_orig: int = 0
    payload_bytes_resp: int = 0
    ooo_orig: int = 0
    ooo_resp: int = 0
    history: str = ""
    service: Optional[str] = None
    terminated_gracefully: bool = False
    #: Protocol anomalies observed ("weirds"), name → count.
    weirds: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_connection(cls, conn: Connection) -> "ConnectionRecord":
        # OOO counts come from the connection's lightweight sequence
        # tracker, which runs in every state (the reassembler only
        # exists while probing/parsing).
        ooo_orig = conn.ooo_orig
        ooo_resp = conn.ooo_resp
        return cls(
            five_tuple=conn.five_tuple,
            first_ts=conn.first_ts,
            last_ts=conn.last_ts,
            syn_ts=conn.syn_ts,
            established_ts=conn.established_ts,
            pkts_orig=conn.pkts_orig,
            pkts_resp=conn.pkts_resp,
            bytes_orig=conn.bytes_orig,
            bytes_resp=conn.bytes_resp,
            payload_bytes_orig=conn.payload_bytes_orig,
            payload_bytes_resp=conn.payload_bytes_resp,
            ooo_orig=ooo_orig,
            ooo_resp=ooo_resp,
            history="".join(conn.history),
            service=conn.service_name,
            terminated_gracefully=conn.terminated,
            weirds=dict(conn.weirds),
        )

    @property
    def duration(self) -> float:
        return max(0.0, self.last_ts - self.first_ts)

    @property
    def total_packets(self) -> int:
        return self.pkts_orig + self.pkts_resp

    @property
    def total_bytes(self) -> int:
        return self.bytes_orig + self.bytes_resp

    @property
    def is_single_syn(self) -> bool:
        return (self.history == "S" and self.pkts_resp == 0
                and self.pkts_orig <= 1)


@dataclass
class _SessionSubscribable:
    """Common shape for parsed-session subscriptions."""

    level = Level.SESSION
    app_parsers = ()  # class metadata; subclasses narrow it

    session: Session = None
    five_tuple: FiveTuple = None

    @property
    def data(self) -> Any:
        return self.session.data

    @property
    def timestamp(self) -> float:
        return self.session.timestamp


class TlsHandshake(_SessionSubscribable):
    """A parsed TLS handshake (Figure 1's subscription type)."""

    app_parsers = ("tls",)
    name = "tls_handshake"

    def sni(self) -> Optional[str]:
        return self.data.sni()

    def cipher(self) -> Optional[str]:
        return self.data.cipher()

    def version(self) -> Optional[str]:
        return self.data.version()

    def client_random(self) -> Optional[bytes]:
        return self.data.client_random


class HttpTransaction(_SessionSubscribable):
    """A parsed HTTP request/response pair."""

    app_parsers = ("http",)
    name = "http_transaction"

    def method(self) -> Optional[str]:
        return self.data.method()

    def uri(self) -> Optional[str]:
        return self.data.uri()

    def host(self) -> Optional[str]:
        return self.data.host()

    def user_agent(self) -> Optional[str]:
        return self.data.user_agent()

    def status_code(self) -> Optional[int]:
        return self.data.status_code()


class SshHandshake(_SessionSubscribable):
    """A parsed SSH identification exchange."""

    app_parsers = ("ssh",)
    name = "ssh_handshake"

    def client_software(self) -> Optional[str]:
        return self.data.client_software()

    def server_software(self) -> Optional[str]:
        return self.data.server_software()


class DnsTransaction(_SessionSubscribable):
    """A parsed DNS query/response transaction."""

    app_parsers = ("dns",)
    name = "dns_transaction"

    def query_name(self) -> Optional[str]:
        return self.data.query_name()

    def response_code(self) -> Optional[int]:
        return self.data.response_code()


@dataclass
class StreamChunk:
    """One in-order chunk of a matched connection's byte-stream.

    The "fully reconstructed byte-stream" subscribable Section 3.3
    names and Section 5.2's example ("TLS byte-streams with domains
    ending in .com") subscribes to: once the filter fully matches, the
    callback receives every in-order payload chunk of the connection —
    including the chunks that arrived while the filter was still being
    evaluated, which the framework buffers.
    """

    level = Level.CONNECTION
    app_parsers = ()  # parsers come from the filter, if any
    name = "byte_stream"
    #: Marks this datatype as streaming reassembled payload bytes.
    streams_bytes = True

    payload: bytes = b""
    from_orig: bool = True
    timestamp: float = 0.0
    five_tuple: FiveTuple = None


class QuicHandshake(_SessionSubscribable):
    """A parsed QUIC connection start (invariant-header fields)."""

    app_parsers = ("quic",)
    name = "quic_handshake"

    def version(self) -> Optional[str]:
        return self.data.version()

    def dcid(self) -> Optional[str]:
        return self.data.dcid()


#: Name → subscribable class, for the string-based Runtime API.
SUBSCRIBABLES: Dict[str, Type] = {
    RawPacket.name: RawPacket,
    ConnectionRecord.name: ConnectionRecord,
    TlsHandshake.name: TlsHandshake,
    HttpTransaction.name: HttpTransaction,
    SshHandshake.name: SshHandshake,
    DnsTransaction.name: DnsTransaction,
    QuicHandshake.name: QuicHandshake,
    StreamChunk.name: StreamChunk,
}
