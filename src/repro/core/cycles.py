"""Virtual CPU-cycle accounting (the substitution for wall-clock time).

The paper's throughput results are, at bottom, cycles-per-packet
arithmetic on a 3 GHz Xeon: a stage that runs on fewer packets or burns
fewer cycles leaves budget for callbacks, and the zero-loss throughput
is the ingress rate at which per-core cycle demand meets capacity.
Because a Python reproduction cannot move 100 Gbps of real bits, every
pipeline stage charges a calibrated per-invocation cost to a
:class:`CycleLedger` instead; the benchmarks convert ledger totals into
the paper's Gbps axes.

Default per-invocation costs are calibrated to Figure 7's measured
per-stage averages (the Netflix connection-record workload).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional


class Stage(enum.Enum):
    """Pipeline stages, in Figure 7's order (plus CAPTURE, the DPDK
    RX/mbuf cost that precedes Figure 7's first software stage)."""

    CAPTURE = "capture"
    HARDWARE_FILTER = "hardware_filter"
    PACKET_FILTER = "packet_filter"
    CONN_TRACK = "conn_track"
    REASSEMBLY = "reassembly"
    PARSING = "parsing"
    SESSION_FILTER = "session_filter"
    CALLBACK = "callback"

    # Ledger dicts are keyed by Stage on the per-packet hot path;
    # Enum's default __hash__ is a Python-level function that rehashes
    # the (string) value on every dict access. Members are singletons,
    # so the C-level identity hash is equivalent and far cheaper.
    __hash__ = object.__hash__


@dataclass(frozen=True)
class CostModel:
    """Per-invocation cycle costs for each pipeline stage.

    Figure 7 calibration (cycles): hardware 0, software packet filter
    102.9, connection tracking 41.6, stream reassembly 353.8,
    application-layer parsing 2122.9, session filter 702.3. The
    callback cost is supplied per subscription (the paper busy-loops a
    configurable number of cycles to emulate analysis complexity).
    """

    #: Kernel-bypass receive cost per packet (descriptor ring poll, mbuf
    #: bookkeeping). Not part of Figure 7's stage list; calibrated so
    #: the raw-packet fast path lands near Figure 5a's 2-core ceiling.
    capture: float = 160.0
    hardware_filter: float = 0.0
    packet_filter: float = 102.9
    conn_track: float = 41.6
    reassembly: float = 353.8
    #: Extra cost for the *buffered* reassembly ablation: traditional
    #: reassembly memcpys every payload byte into a stream buffer.
    reassembly_copy_per_byte: float = 0.75
    parsing: float = 2122.9
    session_filter: float = 702.3
    #: Default per-callback cycles when the subscription specifies none.
    callback: float = 0.0
    #: CPU frequency used to convert cycles into (virtual) seconds.
    cpu_hz: float = 3.0e9

    def cost_of(self, stage: Stage) -> float:
        return getattr(self, stage.value)

    def with_callback(self, cycles: float) -> "CostModel":
        return replace(self, callback=cycles)


#: Upper bucket bounds (cycles) for the per-stage cost histograms; one
#: implicit +Inf bucket follows. Spans the Figure 7 calibration range —
#: conn-track (~42) up to multi-segment parses and 12K-cycle callbacks.
CYCLE_HIST_BOUNDS = (50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0,
                     6400.0, 12800.0, 25600.0)


def _hist_index(value: float) -> int:
    for i, bound in enumerate(CYCLE_HIST_BOUNDS):
        if value <= bound:
            return i
    return len(CYCLE_HIST_BOUNDS)


class CycleLedger:
    """Per-core counters: invocations and cycles per stage.

    With ``record_hist=True`` every explicit charge additionally lands
    in a fixed-bucket per-stage histogram (``hist``) — the telemetry
    subsystem's per-invocation cost distribution. Disabled ledgers
    carry ``hist=None`` and skip the bucketing entirely. The batched
    hot path (capture / packet filter in ``process_batch``) bypasses
    ``charge``; those stages have constant per-invocation cost, so the
    exporter synthesizes their single-bucket histograms from the
    invocation counts.
    """

    __slots__ = ("model", "invocations", "cycles", "hist")

    def __init__(self, model: CostModel = CostModel(),
                 record_hist: bool = False) -> None:
        self.model = model
        self.invocations: Dict[Stage, int] = {s: 0 for s in Stage}
        self.cycles: Dict[Stage, float] = {s: 0.0 for s in Stage}
        self.hist: Optional[Dict[Stage, list]] = (
            {s: [0] * (len(CYCLE_HIST_BOUNDS) + 1) for s in Stage}
            if record_hist else None
        )

    def charge(self, stage: Stage, invocations: int = 1) -> None:
        """Charge ``invocations`` runs of ``stage`` at the model cost."""
        self.invocations[stage] += invocations
        cost = self.model.cost_of(stage)
        self.cycles[stage] += cost * invocations
        if self.hist is not None:
            self.hist[stage][_hist_index(cost)] += invocations

    def charge_cycles(self, stage: Stage, cycles: float,
                      invocations: int = 1) -> None:
        """Charge an explicit cycle amount (callbacks, ablations)."""
        self.invocations[stage] += invocations
        self.cycles[stage] += cycles
        if self.hist is not None and invocations:
            self.hist[stage][_hist_index(cycles / invocations)] += \
                invocations

    def observe_batched(self, stage: Stage, invocations: int) -> None:
        """Record histogram observations for a *batched* stage.

        The batch loops (scalar, columnar, and rows mode) charge
        capture and the packet filter with direct dict updates and
        settle the histogram here, once per burst: the stages have
        constant per-invocation cost, so ``invocations`` observations
        all land in the model-cost bucket. Keeps histogram totals in
        parity with the ledger on every path (see
        :meth:`check_hist_parity`).
        """
        if self.hist is not None and invocations:
            cost = self.model.cost_of(stage)
            self.hist[stage][_hist_index(cost)] += invocations

    def check_hist_parity(self) -> None:
        """Assert per-stage histogram totals match the ledger.

        Every invocation charged while ``record_hist`` was on must
        appear in exactly one histogram bucket — on the scalar, the
        columnar, and the rows-mode paths alike. Raises
        ``AssertionError`` naming the stages that disagree.
        """
        if self.hist is None:
            return
        bad = []
        for stage in Stage:
            total = sum(self.hist[stage])
            if total != self.invocations[stage]:
                bad.append("%s: hist=%d ledger=%d" %
                           (stage.value, total, self.invocations[stage]))
        assert not bad, \
            "cycle-histogram/ledger parity broken: " + "; ".join(bad)

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles.values())

    @property
    def busy_seconds(self) -> float:
        """Virtual seconds of CPU time consumed on this core."""
        return self.total_cycles / self.model.cpu_hz

    def merge(self, other: "CycleLedger") -> None:
        for stage in Stage:
            self.invocations[stage] += other.invocations[stage]
            self.cycles[stage] += other.cycles[stage]
        if self.hist is not None and other.hist is not None:
            for stage in Stage:
                mine, theirs = self.hist[stage], other.hist[stage]
                for i, count in enumerate(theirs):
                    mine[i] += count
        elif self.hist is None and other.hist is not None:
            self.hist = {s: list(b) for s, b in other.hist.items()}

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            stage.value: {
                "invocations": self.invocations[stage],
                "cycles": self.cycles[stage],
            }
            for stage in Stage
        }
