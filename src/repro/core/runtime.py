"""The Runtime: NIC + per-core pipelines + reporting (Figure 1's API).

A :class:`Runtime` wires a subscription (filter, data type, callback)
to the simulated NIC and one pipeline per core, then consumes a traffic
source — any iterable of :class:`~repro.packet.mbuf.Mbuf` in timestamp
order — and produces an :class:`AggregateStats` report with the
paper's metrics (offered rate, zero-loss ceiling, per-stage fractions,
memory samples).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # avoid a config<->core import cycle at runtime
    from repro.config import RuntimeConfig
from repro.core.cycles import Stage
from repro.core.pipeline import CorePipeline
from repro.core.stats import AggregateStats, CoreStats
from repro.core.subscription import Subscription
from repro.nic.device import SimNic
from repro.packet.columnar import columnar_dispatch, decode_mbufs
from repro.packet.mbuf import Mbuf
from repro.resilience.faults import FaultReport, PacketFaultInjector, \
    build_fault_report


@dataclass
class RuntimeReport:
    """Outcome of one run."""

    stats: AggregateStats
    #: Virtual timestamp at which the memory limit was exceeded, or None.
    oom_at: Optional[float] = None
    #: Parallel-backend health snapshot (queue high-water marks, batch
    #: occupancy, feeder block time) when ``config.telemetry`` is on;
    #: None otherwise. Volatile — excluded from deterministic exports.
    backend_health: Optional[dict] = None
    #: Resilience outcome (injections, policy actions, supervisor
    #: recovery), or None when nothing was configured and nothing
    #: happened. Deterministic for a fixed ``(seed, FaultPlan)``.
    faults: Optional[FaultReport] = None
    #: Final per-core stats snapshots by core id. On a degraded
    #: parallel run, lost cores are absent.
    core_stats: Optional[Dict[int, CoreStats]] = None
    #: Merged overload loss ledger (:class:`repro.overload.LossLedger`)
    #: when an overload policy was active; None otherwise. Attributes
    #: every shed packet / downgraded connection to a ladder rung and
    #: filter-funnel layer, so degraded output always carries a precise
    #: statement of what was *not* analyzed.
    overload: Optional[object] = None
    #: Link-impairment ledger (:class:`repro.netem.ImpairmentLedger`)
    #: when ``config.impairment`` was enabled; None otherwise. Every
    #: packet the impaired link dropped, corrupted, duplicated or
    #: displaced is attributed here by cause and ingress link, so
    #: ``offered + duplicated == delivered + lost + quarantined +
    #: link_shed`` holds exactly and chains with the overload ledger's
    #: ``seen == analyzed + shed``.
    impairment: Optional[object] = None
    #: Merged burst-span report (:class:`repro.telemetry.spans
    #: .SpanReport`) when span tracing / the flight recorder / the
    #: continuous profiler were enabled; None otherwise. Carries the
    #: sampled span trees, per-stage self-time histograms, the
    #: hottest stage×filter-node table, and flight-recorder dumps.
    #: Span data lives here — never on ``stats`` — so
    #: ``AggregateStats`` stays byte-identical with spans on or off.
    spans: Optional[object] = None

    @property
    def out_of_memory(self) -> bool:
        return self.oom_at is not None

    @property
    def failed_fast(self) -> bool:
        """True when the overload policy aborted the run (the paper's
        §7 fail-fast exit, as an explicit opt-in policy)."""
        return self.overload is not None and \
            self.overload.failfast_at is not None

    @property
    def degraded(self) -> bool:
        """True when the run completed with partial results (one or
        more worker cores were lost past their restart budget)."""
        return self.faults is not None and self.faults.degraded


class Runtime:
    """One deployed subscription over a simulated NIC and CPU cores."""

    def __init__(
        self,
        config: "RuntimeConfig",
        filter_str: str = "",
        datatype="packet",
        callback: Optional[Callable] = None,
        subscription: Optional[Subscription] = None,
        identify_services: bool = False,
        ports: int = 1,
    ) -> None:
        self.config = config
        if subscription is None:
            subscription = Subscription(
                filter_str,
                datatype,
                callback,
                filter_mode=config.filter_mode,
                nic=config.nic,
                identify_services=identify_services,
            )
        self.subscription = subscription
        # The paper's testbed tapped two 100GbE links through two NICs
        # whose queues feed the same cores; `ports` models that. Port
        # *i* of every frame selects its NIC; symmetric RSS keeps flow
        # affinity regardless of which port a flow arrives on.
        self.nics: List[SimNic] = [
            SimNic(num_queues=config.cores) for _ in range(max(ports, 1))
        ]
        self.nic = self.nics[0]  # single-port convenience alias
        for nic in self.nics:
            if config.hardware_filter:
                nic.install_hardware_filter(subscription.filter.hardware)
            if config.sink_fraction > 0:
                nic.set_sink_fraction(config.sink_fraction)
        if config.callback_execution == "queued":
            from repro.core.executor import QueuedExecutor
            self.executor = QueuedExecutor(
                subscription.callback, config.callback_cycles,
                workers=config.callback_workers,
                enqueue_cycles=config.enqueue_cycles,
            )
        else:
            from repro.core.executor import InlineExecutor
            self.executor = InlineExecutor(subscription.callback,
                                           config.callback_cycles)
        self.pipelines: List[CorePipeline] = [
            CorePipeline(core, subscription, config, executor=self.executor)
            for core in range(config.cores)
        ]
        if config.reassemble_fragments:
            from repro.packet.fragments import FragmentReassembler
            self.fragment_reassembler = FragmentReassembler()
        else:
            self.fragment_reassembler = None
        self._first_ts: Optional[float] = None
        self._last_ts = 0.0
        self._last_memory_sample = 0.0

    # ------------------------------------------------------------------
    def run(
        self,
        traffic: Iterable[Mbuf],
        drain: bool = True,
        memory_sample_interval: float = 1.0,
        monitor=None,
    ) -> RuntimeReport:
        """Process a traffic source to completion.

        With ``config.parallel`` set, the per-core pipelines execute on
        real OS worker processes (see :mod:`repro.core.parallel`);
        otherwise they run batched on the calling thread. Both backends
        produce identical filter/connection/session/callback counts for
        the same traffic.

        Args:
            traffic: Mbufs — or :class:`~repro.packet.batch.PackedBatch`
                chunks of them — in non-decreasing timestamp order.
            drain: Deliver still-live matched connections at the end
                (set False to model an ongoing live capture).
            memory_sample_interval: Virtual seconds between memory
                samples (Figure 8's time series).
            monitor: Optional
                :class:`~repro.core.monitor.StatsMonitor` receiving
                periodic snapshots (Section 5.3's live feedback).
        """
        # Accept batched sources: a traffic iterable may yield
        # PackedBatch chunks (a generator's flat-buffer output) instead
        # of — or mixed with — individual mbufs. Plain mbuf lists pass
        # through untouched, keeping the hot loop generator-free.
        # The impaired link wraps the source first — the physical link
        # precedes everything — and in this (parent) process, so the
        # impaired stream is identical across backends and worker
        # counts. Batched sources keep their shape: the link performs
        # PackedBatch surgery rather than flattening.
        impairment = self.config.impairment
        link = None
        if impairment is not None and impairment.enabled:
            from repro.netem import ImpairedLink
            link = ImpairedLink(impairment)
            traffic = link.wrap(traffic)
        from repro.packet.batch import iter_mbufs
        traffic = iter_mbufs(traffic)
        # Packet faults are injected here — in the feeding process,
        # before RSS dispatch — so the mutated stream is identical
        # across backends and worker counts.
        plan = self.config.fault_plan
        injector: Optional[PacketFaultInjector] = None
        if plan is not None and plan.has_packet_faults:
            injector = PacketFaultInjector(plan)
            traffic = injector.wrap(traffic)
        if self.config.parallel:
            from repro.core.parallel import run_parallel
            report = run_parallel(
                self, traffic, drain=drain,
                memory_sample_interval=memory_sample_interval,
                monitor=monitor, packet_injector=injector)
        else:
            report = self._run_sequential(traffic, drain,
                                          memory_sample_interval,
                                          monitor,
                                          packet_injector=injector)
        if link is not None:
            link.close()  # flush a recorded trace even on an abort
            report.impairment = link.ledger
        return report

    def _run_sequential(
        self,
        traffic: Iterable[Mbuf],
        drain: bool,
        memory_sample_interval: float,
        monitor,
        packet_injector: Optional[PacketFaultInjector] = None,
    ) -> RuntimeReport:
        oom_at: Optional[float] = None
        failfast_at: Optional[float] = None
        # Fail-fast can only trip under the failfast policy or a ladder
        # allowed to climb to rung 4; skip the per-batch poll otherwise.
        ff_possible = self.config.overload_policy == "failfast" or (
            self.config.overload_policy == "ladder"
            and self.config.overload_max_rung >= 4)
        batch_size = self.config.parallel_batch_size
        pipelines = self.pipelines
        nics = self.nics
        nic0 = nics[0]
        num_nics = len(nics)
        frag = self.fragment_reassembler
        # The evict/shed policies keep cores under their share of the
        # limit themselves (at sample cadence, inside the pipelines);
        # only the historical "record" policy stops the run.
        memory_limit = self.config.memory_limit_bytes \
            if self.config.memory_policy == "record" else None
        # Per-queue pending batches: packets are routed immediately
        # (preserving per-flow arrival order even across ports) but run
        # through the pipeline in bursts, amortizing per-packet
        # dispatch overhead exactly like the parallel backend's IPC
        # batches.
        pending: List[List[Mbuf]] = [[] for _ in pipelines]
        # Monitoring is O(samples), not O(packets): the next virtual
        # deadline is tracked here and only compared per packet.
        next_monitor_ts: Optional[float] = \
            None if monitor is not None else float("inf")
        first = self._first_ts is None
        # Columnar ingress: bulk-decode header columns per burst and let
        # the NICs hash/dispatch fast rows without a per-packet stack
        # parse. Requires every NIC's hardware filter to compile to a
        # column admit check, and no fragment reassembly (frag.push can
        # rewrite frames between decode and dispatch). The scalar loop
        # below is untouched — columnar=False measures the old path.
        use_columnar = (self.config.columnar and frag is None
                        and all(n.supports_columnar() for n in nics))
        # When the filter is batch-expressible the sequential backend
        # goes one step further than columnar dispatch: each ingress
        # burst is decoded and filtered exactly *once*, the columns are
        # shared with NIC dispatch, and the pipelines consume
        # ``(mbuf, cols, i, verdict)`` rows — no second decode, no
        # second filter pass. Every pipeline holds the same compiled
        # filter, so one verdict vector is valid for all queues.
        pf_batch = pipelines[0]._pf_batch if use_columnar else None
        if pf_batch is not None:
            # Pending rows per queue as four parallel lists (mbufs,
            # column batches, row indices, verdicts): appending to
            # lists costs no per-packet tuple, keeping the reject
            # path's allocation budget where the scalar loop left it.
            rows_pending = [([], [], [], []) for _ in pipelines]

            def flush_rows() -> None:
                for q, queued in enumerate(rows_pending):
                    if queued[0]:
                        pipelines[q].process_batch_rows(*queued)
                        for lst in queued:
                            lst.clear()

            it = iter(traffic)
            stop = False
            while not stop:
                chunk = list(islice(it, batch_size))
                if not chunk:
                    break
                cols = decode_mbufs(chunk)
                verdicts = pf_batch(cols)
                for i, mbuf in enumerate(chunk):
                    ts = mbuf.timestamp
                    if first:
                        first = False
                        if self._first_ts is None:
                            self._first_ts = ts
                            self._last_memory_sample = ts
                    if ts > self._last_ts:
                        self._last_ts = ts
                    port = mbuf.port
                    nic = nics[port] if 0 < port < num_nics else nic0
                    queue = nic.receive_columnar(mbuf, cols, i)
                    if queue is not None:
                        q_mbufs, q_cols, q_idx, q_verd = \
                            rows_pending[queue]
                        q_mbufs.append(mbuf)
                        q_cols.append(cols)
                        q_idx.append(i)
                        q_verd.append(verdicts[i])
                        if len(q_mbufs) >= batch_size:
                            pipelines[queue].process_batch_rows(
                                q_mbufs, q_cols, q_idx, q_verd)
                            q_mbufs.clear()
                            q_cols.clear()
                            q_idx.clear()
                            q_verd.clear()
                            if ff_possible and \
                                    pipelines[queue].overload_failfast_at \
                                    is not None:
                                failfast_at = \
                                    pipelines[queue].overload_failfast_at
                                stop = True
                                break
                    if next_monitor_ts is None or ts >= next_monitor_ts:
                        flush_rows()
                        monitor.observe(self, ts)
                        next_monitor_ts = ts + monitor.interval
                    if ts - self._last_memory_sample \
                            >= memory_sample_interval:
                        flush_rows()
                        self._last_memory_sample = ts
                        self._sample_memory(ts)
                        if memory_limit is not None and \
                                self.memory_bytes > memory_limit:
                            oom_at = ts
                            stop = True
                            break
            flush_rows()
            traffic = ()  # fully consumed (or aborted) above
        elif use_columnar:
            for mbuf, queue in columnar_dispatch(traffic, nics,
                                                 batch_size):
                ts = mbuf.timestamp
                if first:
                    first = False
                    if self._first_ts is None:
                        self._first_ts = ts
                        self._last_memory_sample = ts
                if ts > self._last_ts:
                    self._last_ts = ts
                if queue is not None:
                    queued = pending[queue]
                    queued.append(mbuf)
                    if len(queued) >= batch_size:
                        pipelines[queue].process_batch(queued)
                        queued.clear()
                        if ff_possible and \
                                pipelines[queue].overload_failfast_at \
                                is not None:
                            failfast_at = \
                                pipelines[queue].overload_failfast_at
                            break
                if next_monitor_ts is None or ts >= next_monitor_ts:
                    self._flush_pending(pending)
                    monitor.observe(self, ts)
                    next_monitor_ts = ts + monitor.interval
                if ts - self._last_memory_sample \
                        >= memory_sample_interval:
                    self._flush_pending(pending)
                    self._last_memory_sample = ts
                    self._sample_memory(ts)
                    if memory_limit is not None and \
                            self.memory_bytes > memory_limit:
                        oom_at = ts
                        break
            traffic = ()  # fully consumed (or aborted) above
        for mbuf in traffic:
            ts = mbuf.timestamp
            if first:
                first = False
                if self._first_ts is None:
                    self._first_ts = ts
                    self._last_memory_sample = ts
            if ts > self._last_ts:
                self._last_ts = ts
            if frag is not None:
                mbuf = frag.push(mbuf)
                if mbuf is None:
                    continue  # fragment held pending completion
            port = mbuf.port
            nic = nics[port] if 0 < port < num_nics else nic0
            queue = nic.receive(mbuf)
            if queue is not None:
                queued = pending[queue]
                queued.append(mbuf)
                if len(queued) >= batch_size:
                    pipelines[queue].process_batch(queued)
                    queued.clear()
                    if ff_possible and \
                            pipelines[queue].overload_failfast_at \
                            is not None:
                        # Sustained overload under the fail-fast policy:
                        # abort rather than silently corrupt results
                        # (PAPER §7), like the OOM cutoff above.
                        failfast_at = \
                            pipelines[queue].overload_failfast_at
                        break
            if next_monitor_ts is None or ts >= next_monitor_ts:
                self._flush_pending(pending)
                monitor.observe(self, ts)
                next_monitor_ts = ts + monitor.interval
            if ts - self._last_memory_sample >= memory_sample_interval:
                self._flush_pending(pending)
                self._last_memory_sample = ts
                self._sample_memory(ts)
                if memory_limit is not None and \
                        self.memory_bytes > memory_limit:
                    oom_at = ts
                    break
        self._flush_pending(pending)
        if ff_possible and failfast_at is None:
            # A trip on the final (or a monitor-flushed) partial batch.
            trips = [p.overload_failfast_at for p in pipelines
                     if p.overload_failfast_at is not None]
            if trips:
                failfast_at = min(trips)
        if oom_at is None and failfast_at is None:
            for pipeline in pipelines:
                pipeline.advance_time(self._last_ts)
            self._sample_memory(self._last_ts)
            if drain:
                for pipeline in pipelines:
                    pipeline.drain()
        if monitor is not None:
            # Flush the final partial interval — a run ending between
            # interval boundaries must not silently drop its tail.
            monitor.finalize(self._last_ts, self)
        if hasattr(self.executor, "finalize") and self._first_ts is not None:
            self.executor.finalize(
                max(self._last_ts - self._first_ts, 1e-9),
                self.config.cost_model.cpu_hz,
            )
        for pipeline in pipelines:
            pipeline.fold_fault_counters()
        core_stats = {p.core_id: p.stats for p in pipelines}
        faults = build_fault_report(self.config, core_stats,
                                    packet_injector)
        overload = None
        if self.config.overload_policy != "off":
            from repro.overload import merge_ledgers
            overload = merge_ledgers(
                p.stats.overload for p in pipelines)
        spans = None
        if self.config.span_sample > 0 or \
                self.config.flight_recorder_depth > 0:
            from repro.telemetry.spans import build_span_report
            spans = build_span_report(
                [p.stats for p in pipelines], None,
                self.config.cost_model.cpu_hz,
                nic=[n.stats.to_dict() for n in self.nics])
        return RuntimeReport(stats=self.aggregate(), oom_at=oom_at,
                             faults=faults, core_stats=core_stats,
                             overload=overload, spans=spans)

    def _flush_pending(self, pending: List[List[Mbuf]]) -> None:
        """Run every queued batch through its pipeline (sample points
        and end-of-trace must see fully current pipeline state)."""
        for queue, queued in enumerate(pending):
            if queued:
                self.pipelines[queue].process_batch(queued)
                queued.clear()

    def run_pcap(self, path, **kwargs) -> RuntimeReport:
        """Offline mode (Appendix B): stream a capture file through the
        pipeline without materializing it in memory."""
        from repro.traffic.pcap import iter_pcap
        return self.run(iter_pcap(path), **kwargs)

    # ------------------------------------------------------------------
    def _sample_memory(self, now: float) -> None:
        for pipeline in self.pipelines:
            pipeline.sample_memory()

    @property
    def memory_bytes(self) -> int:
        return sum(p.memory_bytes for p in self.pipelines)

    @property
    def live_connections(self) -> int:
        return sum(len(p.table) for p in self.pipelines)

    def aggregate(self, core_stats=None, ingress=None) -> AggregateStats:
        """Merge per-core stats into the report structure.

        Args:
            core_stats: Per-core :class:`CoreStats` to merge instead of
                this process's pipelines' — the parallel backend passes
                the snapshots returned by its worker processes.
            ingress: Optional ``(packets, bytes, hw_dropped,
                sink_dropped)`` override of the NIC ingress totals — the
                multi-tenant runtime aggregates one tenant's core stats
                against the shared link's ingress, which the NIC cannot
                attribute per tenant.
        """
        if core_stats is None:
            core_stats = [pipeline.stats for pipeline in self.pipelines]
        duration = (self._last_ts - self._first_ts) \
            if self._first_ts is not None else 0.0
        stage_invocations = {stage: 0 for stage in Stage}
        stage_cycles = {stage: 0.0 for stage in Stage}
        if ingress is not None:
            ingress_packets, ingress_bytes, hw_dropped, sink_dropped = \
                ingress
        else:
            ingress_packets = sum(n.stats.received_packets
                                  for n in self.nics)
            ingress_bytes = sum(n.stats.received_bytes for n in self.nics)
            hw_dropped = sum(n.stats.hw_dropped_packets
                             for n in self.nics)
            sink_dropped = sum(n.stats.sink_dropped_packets
                               for n in self.nics)
        # Hardware filtering is charged zero CPU cycles but counts one
        # "invocation" per ingress packet (Figure 7's first bar).
        stage_invocations[Stage.HARDWARE_FILTER] = ingress_packets
        per_core_busy: List[float] = []
        callbacks = sessions_parsed = sessions_matched = 0
        conns_created = conns_delivered = 0
        processed_packets = processed_bytes = 0
        pf_packets = pf_bytes = connf_packets = connf_bytes = 0
        sessf_packets = sessf_bytes = 0
        probe_giveups = conns_discarded = conns_expired = 0
        callback_errors = callbacks_suppressed = quarantined_cores = 0
        parser_exceptions = conns_evicted = conns_shed = 0
        reasm_truncations = reasm_truncated_bytes = 0
        reasm_dup = reasm_overlap = reasm_stale = reasm_overflow = 0
        reasm_grows = reasm_shrinks = 0
        fault_counters: Dict[str, int] = {}
        reasm_peak = reasm_occ_sum = 0
        memory_samples = []
        stage_cycle_hist = None
        reasm_hist = None
        trace_events = []
        for stats in core_stats:
            for stage in Stage:
                stage_invocations[stage] += stats.ledger.invocations[stage]
                stage_cycles[stage] += stats.ledger.cycles[stage]
            per_core_busy.append(stats.ledger.busy_seconds)
            callbacks += stats.callbacks
            sessions_parsed += stats.sessions_parsed
            sessions_matched += stats.sessions_matched
            conns_created += stats.conns_created
            conns_delivered += stats.conns_delivered
            processed_packets += stats.packets
            processed_bytes += stats.bytes
            pf_packets += stats.pf_packets
            pf_bytes += stats.pf_bytes
            connf_packets += stats.connf_packets
            connf_bytes += stats.connf_bytes
            sessf_packets += stats.sessf_packets
            sessf_bytes += stats.sessf_bytes
            probe_giveups += stats.probe_giveups
            conns_discarded += stats.conns_discarded
            conns_expired += stats.conns_expired
            callback_errors += stats.callback_errors
            callbacks_suppressed += stats.callbacks_suppressed
            quarantined_cores += stats.callback_quarantined
            parser_exceptions += stats.parser_exceptions
            conns_evicted += stats.conns_evicted
            conns_shed += stats.conns_shed
            reasm_truncations += stats.reasm_truncations
            reasm_truncated_bytes += stats.reasm_truncated_bytes
            reasm_dup += stats.reasm_dup_segments
            reasm_overlap += stats.reasm_overlap_segments
            reasm_stale += stats.reasm_stale_retransmits
            reasm_overflow += stats.reasm_overflow_drops
            reasm_grows += stats.reasm_window_grows
            reasm_shrinks += stats.reasm_window_shrinks
            for kind, count in stats.fault_counters.items():
                fault_counters[kind] = fault_counters.get(kind, 0) + count
            if stats.reasm_peak_bytes > reasm_peak:
                reasm_peak = stats.reasm_peak_bytes
            reasm_occ_sum += stats.reasm_occ_sum
            memory_samples.extend(stats.memory_samples)
            trace_events.extend(stats.trace_events)
            if stats.ledger.hist is not None:
                if stage_cycle_hist is None:
                    stage_cycle_hist = {stage: [0] * len(buckets)
                                        for stage, buckets
                                        in stats.ledger.hist.items()}
                for stage, buckets in stats.ledger.hist.items():
                    merged = stage_cycle_hist[stage]
                    for i, count in enumerate(buckets):
                        merged[i] += count
            if stats.reasm_hist is not None:
                if reasm_hist is None:
                    reasm_hist = [0] * len(stats.reasm_hist)
                for i, count in enumerate(stats.reasm_hist):
                    reasm_hist[i] += count
        memory_samples.sort(key=lambda s: s[0])
        return AggregateStats(
            cores=self.config.cores,
            cost_model=self.config.cost_model,
            duration=max(duration, 1e-9),
            ingress_packets=ingress_packets,
            ingress_bytes=ingress_bytes,
            hw_dropped_packets=hw_dropped,
            sink_dropped_packets=sink_dropped,
            processed_packets=processed_packets,
            processed_bytes=processed_bytes,
            callbacks=callbacks,
            sessions_parsed=sessions_parsed,
            sessions_matched=sessions_matched,
            conns_created=conns_created,
            conns_delivered=conns_delivered,
            stage_invocations=stage_invocations,
            stage_cycles=stage_cycles,
            per_core_busy_seconds=per_core_busy,
            memory_samples=memory_samples,
            pf_packets=pf_packets,
            pf_bytes=pf_bytes,
            connf_packets=connf_packets,
            connf_bytes=connf_bytes,
            sessf_packets=sessf_packets,
            sessf_bytes=sessf_bytes,
            probe_giveups=probe_giveups,
            conns_discarded=conns_discarded,
            conns_expired=conns_expired,
            callback_errors=callback_errors,
            callbacks_suppressed=callbacks_suppressed,
            quarantined_cores=quarantined_cores,
            parser_exceptions=parser_exceptions,
            conns_evicted=conns_evicted,
            conns_shed=conns_shed,
            reasm_truncations=reasm_truncations,
            reasm_truncated_bytes=reasm_truncated_bytes,
            reasm_dup_segments=reasm_dup,
            reasm_overlap_segments=reasm_overlap,
            reasm_stale_retransmits=reasm_stale,
            reasm_overflow_drops=reasm_overflow,
            reasm_window_grows=reasm_grows,
            reasm_window_shrinks=reasm_shrinks,
            fault_counters=fault_counters,
            stage_cycle_hist=stage_cycle_hist,
            reasm_hist=reasm_hist,
            reasm_occ_sum=reasm_occ_sum,
            reasm_peak_bytes=reasm_peak,
            trace_events=trace_events,
        )
