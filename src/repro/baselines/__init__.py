"""IDS / monitor baselines for the Figure 6 comparison.

The paper compares Retina against I/O-optimized builds of Zeek, Snort,
and Suricata on a single core, all performing the same task: log
connections matching a TLS server name. These baselines embody the
architectural property the comparison isolates — *full visibility*
pipelines that decode every packet, track every flow, and copy-based
reassemble every TCP byte stream, with no subscription-aware early
discard. Each runs real work over the same packets (header decode,
buffered reassembly, TLS parsing, and for Snort an exhaustive
content scan) and charges a per-system cost model calibrated to the
paper's measured single-core rates.
"""

from repro.baselines.common import BaselineReport, EagerAnalyzer
from repro.baselines.zeek_like import ZeekLikeAnalyzer
from repro.baselines.snort_like import SnortLikeAnalyzer
from repro.baselines.suricata_like import SuricataLikeAnalyzer

__all__ = [
    "BaselineReport",
    "EagerAnalyzer",
    "ZeekLikeAnalyzer",
    "SnortLikeAnalyzer",
    "SuricataLikeAnalyzer",
]
