"""Shared machinery for the eager full-visibility baselines.

:class:`EagerAnalyzer` is the architectural opposite of Retina's
pipeline: every packet is decoded, every flow is tracked to
termination, every TCP byte is copied into a stream buffer, every
stream is probed and parsed — regardless of what the analysis task
needs. Subclasses supply a :class:`BaselineCosts` table expressing how
expensive each of those steps is on the system being modeled, plus
optional extra work (e.g. Snort's exhaustive pattern matching).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.conntrack.five_tuple import FiveTuple
from repro.packet.mbuf import Mbuf
from repro.packet.stack import parse_stack
from repro.protocols.base import ParseResult, ProbeResult
from repro.protocols.registry import default_parser_registry
from repro.stream.buffered import BufferedReassembler
from repro.stream.pdu import L4Pdu, StreamSegment


@dataclass(frozen=True)
class BaselineCosts:
    """Per-step cycle costs for one modeled system.

    ``*_per_packet`` values are cycles per packet; ``*_per_byte``
    values are cycles per payload byte. Calibration targets are the
    paper's measured single-core zero-loss rates (Section 6.2).
    """

    name: str
    capture_per_packet: float
    decode_per_packet: float
    flow_per_packet: float
    reassembly_per_byte: float
    parse_per_byte: float
    detect_per_byte: float
    log_per_match: float
    cpu_hz: float = 3.0e9
    #: Loss the paper tolerates before the curve goes dashed.
    loss_threshold: float = 0.01


@dataclass
class BaselineReport:
    """Outcome of one baseline run."""

    name: str
    packets: int
    wire_bytes: int
    payload_bytes: int
    matches: int
    cycles: float
    duration: float
    cpu_hz: float

    @property
    def cycles_per_byte(self) -> float:
        return self.cycles / self.wire_bytes if self.wire_bytes else 0.0

    def max_zero_loss_gbps(self, cores: int = 1) -> float:
        """Highest offered rate sustainable without loss."""
        if not self.cycles:
            return float("inf")
        return self.cpu_hz * cores / self.cycles_per_byte * 8 / 1e9

    def processed_gbps(self, offered_gbps: float, cores: int = 1) -> float:
        """Bytes processed at an offered rate (Figure 6's y-axis):
        capped at capacity once the core saturates."""
        return min(offered_gbps, self.max_zero_loss_gbps(cores))

    def loss_at(self, offered_gbps: float, cores: int = 1) -> float:
        capacity = self.max_zero_loss_gbps(cores)
        if offered_gbps <= capacity:
            return 0.0
        return 1.0 - capacity / offered_gbps


class EagerAnalyzer:
    """Full-visibility pipeline: decode → flow → copy-reassemble →
    probe/parse everything, then apply the analysis task at the end."""

    #: Protocols the system's analyzers are enabled for. The Figure 6
    #: task disables everything but SSL/TLS, as the paper does.
    enabled_protocols = ("tls",)

    def __init__(self, costs: BaselineCosts,
                 sni_pattern: str = r".") -> None:
        self.costs = costs
        self.sni_re = re.compile(sni_pattern)
        self.registry = default_parser_registry()

    # -- hooks ------------------------------------------------------------
    def extra_packet_work(self, stack, payload: bytes) -> float:
        """Additional per-packet cycles (e.g. Snort's pattern scan)."""
        return 0.0

    # -- the run -----------------------------------------------------------
    def analyze(self, packets: Iterable[Mbuf]) -> BaselineReport:
        costs = self.costs
        cycles = 0.0
        n_packets = 0
        wire_bytes = 0
        payload_bytes = 0
        matches = 0
        first_ts: Optional[float] = None
        last_ts = 0.0
        flows: Dict[tuple, dict] = {}
        for mbuf in packets:
            n_packets += 1
            wire_bytes += len(mbuf)
            if first_ts is None:
                first_ts = mbuf.timestamp
            last_ts = max(last_ts, mbuf.timestamp)
            cycles += costs.capture_per_packet
            stack = parse_stack(mbuf)
            cycles += costs.decode_per_packet
            tup = FiveTuple.from_stack(stack)
            if tup is None:
                continue
            cycles += costs.flow_per_packet
            payload = stack.l4_payload()
            payload_bytes += len(payload)
            cycles += self.extra_packet_work(stack, payload)
            key = tup.canonical()
            flow = flows.get(key)
            if flow is None:
                flow = {
                    "tuple": tup,
                    "reasm": BufferedReassembler(),
                    "parser": None,
                    "probing": True,
                    "done": False,
                }
                flows[key] = flow
            # Full-visibility systems reassemble and run detection over
            # every payload byte for the life of the connection — there
            # is no subscription to tell them to stop.
            cycles += (costs.reassembly_per_byte +
                       costs.detect_per_byte) * len(payload)
            if flow["done"]:
                continue
            segments = self._reassemble(flow, stack, tup, payload)
            for segment in segments:
                cycles += self._feed(flow, segment, costs)
                if flow["matched_now"]:
                    matches += 1
                    cycles += costs.log_per_match
                    flow["matched_now"] = False
        duration = (last_ts - first_ts) if first_ts is not None else 0.0
        return BaselineReport(
            name=costs.name,
            packets=n_packets,
            wire_bytes=wire_bytes,
            payload_bytes=payload_bytes,
            matches=matches,
            cycles=cycles,
            duration=max(duration, 1e-9),
            cpu_hz=costs.cpu_hz,
        )

    def _reassemble(self, flow, stack, tup, payload) -> List[StreamSegment]:
        if tup.protocol == 17:
            if not payload:
                return []
            return [StreamSegment(payload, True, stack.mbuf.timestamp)]
        pdu = L4Pdu.from_stack(stack, tup, flow["tuple"])
        return flow["reasm"].push(pdu)

    def _feed(self, flow, segment: StreamSegment,
              costs: BaselineCosts) -> float:
        """Probe/parse one in-order segment; returns cycles spent."""
        spent = 0.0
        flow.setdefault("matched_now", False)
        if flow["probing"]:
            spent += costs.parse_per_byte * len(segment.payload)
            for proto in self.enabled_protocols:
                parser = flow.get("candidate_" + proto)
                if parser is None:
                    parser = self.registry.create(proto)
                    flow["candidate_" + proto] = parser
                outcome = parser.probe(segment)
                if outcome is ProbeResult.MATCH:
                    flow["parser"] = parser
                    flow["probing"] = False
                    break
            else:
                return spent
        parser = flow["parser"]
        if parser is None:
            return spent
        spent += costs.parse_per_byte * len(segment.payload)
        result = parser.parse(segment)
        for session in parser.drain_sessions():
            sni = getattr(session.data, "sni", lambda: None)()
            if sni and self.sni_re.search(sni):
                flow["matched_now"] = True
        if result in (ParseResult.DONE, ParseResult.ERROR):
            # The analyzer for this flow is finished, but the system
            # keeps reassembling (full visibility, no early discard).
            flow["done"] = True
        return spent
