"""A Suricata-shaped baseline (Section 6.2's Suricata + DPDK).

Suricata has a more modern multi-threaded engine (restricted to one
core here, as the paper does), rule-aware protocol detection, and a
stream engine that still copies and inspects every TCP byte. The paper
configures a single SNI rule and measures roughly half of Retina's
throughput in processed bytes but packet drops starting above
~10 Gbps.
"""

from __future__ import annotations

from repro.baselines.common import BaselineCosts, EagerAnalyzer


def suricata_costs() -> BaselineCosts:
    return BaselineCosts(
        name="suricata",
        capture_per_packet=180.0,    # DPDK (our extension, per paper)
        decode_per_packet=220.0,
        flow_per_packet=150.0,
        reassembly_per_byte=0.8,     # stream engine copy
        parse_per_byte=0.6,          # TLS app-layer parser
        detect_per_byte=1.2,         # rule engine over streams
        log_per_match=6000.0,        # eve.json output
    )


class SuricataLikeAnalyzer(EagerAnalyzer):
    """Suricata with a single TLS-SNI rule."""

    def __init__(self, sni_pattern: str = r".") -> None:
        super().__init__(suricata_costs(), sni_pattern)
