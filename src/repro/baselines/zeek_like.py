"""A Zeek-shaped baseline (Section 6.2's Zeek + AF_PACKET).

Zeek is natively single-threaded and event-driven: every packet raises
events into the script layer, every TCP byte is copied through the
stream engine, and analyzers run until connection end. The paper
disables all but the SSL analyzer and uses AF_PACKET capture (their
DPDK plugin attempt was not faster). Costs are calibrated so the
single-core zero-loss rate lands near the paper's ~4 Gbps (with
advertised performance "on par with [20] and estimates from [76]").
"""

from __future__ import annotations

from repro.baselines.common import BaselineCosts, EagerAnalyzer


def zeek_costs() -> BaselineCosts:
    return BaselineCosts(
        name="zeek",
        capture_per_packet=1200.0,   # AF_PACKET + kernel crossing
        decode_per_packet=800.0,     # event generation per packet
        flow_per_packet=700.0,       # conn.log state + script dispatch
        reassembly_per_byte=4.0,     # stream engine copy + delivery
        parse_per_byte=2.0,          # SSL analyzer
        detect_per_byte=0.0,         # no rule engine in this task
        log_per_match=15000.0,       # ssl.log write via the logging ipc
    )


class ZeekLikeAnalyzer(EagerAnalyzer):
    """Zeek with only the SSL analyzer enabled, logging SNI matches."""

    def __init__(self, sni_pattern: str = r".") -> None:
        super().__init__(zeek_costs(), sni_pattern)
