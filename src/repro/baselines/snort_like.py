"""A Snort-shaped baseline (Section 6.2's Snort + DPDK).

Snort is single-threaded; the paper extends it with DPDK capture and
configures a single SSL rule plus only the Stream5/TCP/SSL
preprocessors. Its defining cost in the comparison is that the
pattern-matching engine cannot be restricted to selected packets: the
Aho-Corasick content scan runs over (essentially) every payload byte
even though the rule could only fire in a ClientHello. The paper
measures ~1 Gbps at best and ~400 Mbps with zero loss.

The exhaustive scan is *actually performed* here (a byte-level
multi-pattern match), not just charged for, so the architectural claim
is embodied rather than assumed.
"""

from __future__ import annotations

from repro.baselines.common import BaselineCosts, EagerAnalyzer

#: Content patterns of an SSL ClientHello rule (type/version markers).
_PATTERNS = (b"\x16\x03\x01", b"\x16\x03\x03", b"\x01\x00")


def snort_costs() -> BaselineCosts:
    return BaselineCosts(
        name="snort",
        capture_per_packet=200.0,    # DPDK (our extension, per paper)
        decode_per_packet=300.0,
        flow_per_packet=200.0,       # Stream5 lookup
        reassembly_per_byte=1.0,     # Stream5 copy
        parse_per_byte=1.5,          # SSL preprocessor
        detect_per_byte=55.0,        # unrestricted multi-pattern scan
        log_per_match=8000.0,
    )


class SnortLikeAnalyzer(EagerAnalyzer):
    """Snort with one SSL SNI rule: scans every packet regardless."""

    def __init__(self, sni_pattern: str = r".") -> None:
        super().__init__(snort_costs(), sni_pattern)
        self.scanned_bytes = 0

    def extra_packet_work(self, stack, payload: bytes) -> float:
        """The unrestricted content scan. The cycles are charged via
        ``detect_per_byte``; this hook performs the real search so the
        behaviour (and its result) is genuine."""
        self.scanned_bytes += len(payload)
        for pattern in _PATTERNS:
            payload.find(pattern)
        return 0.0
