"""Command-line interface: run a subscription over a pcap or synthetic
traffic.

Examples::

    python -m repro --filter "tls.sni ~ 'netflix'" \\
        --datatype tls_handshake --pcap trace.pcap

    python -m repro --filter "tcp" --datatype connection \\
        --synthetic campus --duration 0.5 --gbps 0.2 --cores 8 --monitor

    python -m repro --describe-filter "(ipv4 and tcp.port >= 100 and \\
        tls.sni ~ 'netflix') or http"

    python -m repro --subscriptions tenants.json \\
        --reconfigure-at 0.5:drop:dns --reconfigure-at 0.5:add:late \\
        --synthetic campus --duration 1.0 --tenants-out tenants-stats.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import Runtime, RuntimeConfig, compile_filter
from repro.core.datatypes import SUBSCRIBABLES
from repro.core.monitor import StatsMonitor
from repro.errors import RetinaError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Retina-reproduction traffic analysis runtime",
    )
    parser.add_argument("--filter", default="", dest="filter_str",
                        help="subscription filter (default: match all)")
    parser.add_argument("--datatype", default="packet",
                        choices=sorted(SUBSCRIBABLES),
                        help="subscribable data type")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--pcap", help="read traffic from a pcap file")
    source.add_argument("--synthetic", choices=["campus", "https", "burst"],
                        help="generate synthetic traffic")
    parser.add_argument("--duration", type=float, default=0.5,
                        help="synthetic traffic duration (virtual s)")
    parser.add_argument("--gbps", type=float, default=0.2,
                        help="synthetic campus traffic rate")
    parser.add_argument("--seed", type=int, default=0,
                        help="synthetic traffic seed")
    parser.add_argument("--burst-intensity", type=float, default=8.0,
                        metavar="X",
                        help="with --synthetic burst, arrival-rate "
                             "multiplier inside the burst window "
                             "(default: 8.0)")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--parallel", type=int, metavar="N", default=0,
                        help="run N cores as real OS worker processes "
                             "(overrides --cores; 0 = sequential)")
    parser.add_argument("--batch-size", type=int, default=256,
                        help="packets per dispatch batch (both backends)")
    parser.add_argument("--ipc", default="auto",
                        choices=["auto", "shm", "queue"],
                        help="parallel feeder->worker transport: shared-"
                             "memory mempool + descriptor rings, pickled "
                             "bounded queues, or auto (shm where the "
                             "platform supports it; default)")
    parser.add_argument("--mode", default="codegen",
                        choices=["codegen", "interp"],
                        help="filter execution backend")
    parser.add_argument("--no-hardware-filter", action="store_true",
                        help="disable NIC flow-rule offload")
    parser.add_argument("--no-columnar", action="store_true",
                        help="disable the columnar batch hot path "
                             "(bulk header decode + mask filters)")
    parser.add_argument("--sink-fraction", type=float, default=0.0,
                        help="flow-sample fraction dropped at the NIC")
    parser.add_argument("--print-limit", type=int, default=10,
                        help="print at most N deliveries (0: none)")
    parser.add_argument("--monitor", action="store_true",
                        help="emit periodic throughput/loss/memory lines")
    parser.add_argument("--json-stats", metavar="PATH",
                        help="write the run's aggregate stats as JSON")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write Prometheus-text metrics (funnel, "
                             "stage histograms, connection outcomes)")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write sampled connection-lifecycle traces "
                             "as NDJSON")
    parser.add_argument("--trace-sample", type=float, default=None,
                        metavar="F",
                        help="fraction of connections traced when "
                             "--trace-out is set (default: 0.01)")
    spans = parser.add_argument_group(
        "spans", "burst span tracing, flight recorder and hot-path "
        "profiler (see docs/OBSERVABILITY.md)")
    spans.add_argument("--spans-out", metavar="PATH",
                       help="write sampled burst span trees as Chrome "
                            "trace-event JSON (load in Perfetto)")
    spans.add_argument("--spans-ndjson", metavar="PATH",
                       help="write burst spans, trigger events and the "
                            "profile summary as NDJSON")
    spans.add_argument("--flight-out", metavar="PATH",
                       help="write the flight-recorder dump (last N "
                            "bursts per core around each trigger) as "
                            "JSON")
    spans.add_argument("--span-sample", type=int, default=None,
                       metavar="K",
                       help="profile every Kth burst per core "
                            "(default: 1 when a span output is set)")
    spans.add_argument("--flight-recorder-depth", type=int, default=None,
                       metavar="N",
                       help="bursts retained per core in the flight "
                            "ring (default: 8 when --flight-out is "
                            "set)")
    tenancy = parser.add_argument_group(
        "tenancy", "multi-tenant subscriptions and live "
        "reconfiguration (see docs/MULTITENANT.md)")
    tenancy.add_argument("--subscriptions", metavar="PATH",
                         help="JSON tenant subscriptions file: run all "
                              "tenants over one shared filter table "
                              "(conflicts with --filter)")
    tenancy.add_argument("--reconfigure-at", metavar="T:ACTION:NAME",
                         action="append", default=[],
                         help="schedule a live reconfiguration at "
                              "virtual time T: <vt>:<add|drop>:<name> "
                              "(repeatable; requires --subscriptions)")
    tenancy.add_argument("--tenants-out", metavar="PATH",
                         help="write per-tenant aggregate stats and "
                              "shed ledgers as JSON")
    resilience = parser.add_argument_group(
        "resilience", "fault injection, supervision and degradation "
        "(see docs/RESILIENCE.md)")
    resilience.add_argument("--fault-plan", metavar="PLAN",
                            help="JSON fault plan: a file path or an "
                                 "inline JSON object")
    resilience.add_argument("--callback-errors", default="raise",
                            choices=["raise", "isolate"],
                            help="callback exception policy: abort the "
                                 "run or isolate per subscription "
                                 "(default: raise)")
    resilience.add_argument("--callback-error-budget", type=int,
                            default=3, metavar="N",
                            help="with --callback-errors isolate, "
                                 "quarantine a core's subscription "
                                 "after N errors (default: 3)")
    resilience.add_argument("--memory-policy", default="record",
                            choices=["record", "evict", "shed"],
                            help="memory-pressure policy when a limit "
                                 "is set (default: record)")
    resilience.add_argument("--memory-limit", type=int, default=0,
                            metavar="BYTES",
                            help="total connection-state budget in "
                                 "bytes (0: unlimited)")
    resilience.add_argument("--supervise", action="store_true",
                            help="supervise parallel workers: restart "
                                 "crashed/hung cores with batch replay")
    resilience.add_argument("--faults-out", metavar="PATH",
                            help="write the run's fault report as JSON")
    overload = parser.add_argument_group(
        "overload", "closed-loop overload control "
        "(see docs/OVERLOAD.md)")
    overload.add_argument("--overload-policy", default="off",
                          choices=["off", "ladder", "failfast"],
                          help="degradation ladder under sustained "
                               "pressure, failfast abort, or off "
                               "(default: off)")
    overload.add_argument("--overload-target-lag", type=float,
                          default=0.05, metavar="S",
                          help="virtual seconds a core may lag the "
                               "arrival clock before climbing the "
                               "ladder (default: 0.05)")
    overload.add_argument("--overload-out", metavar="PATH",
                          help="write the loss ledger as NDJSON")
    netem = parser.add_argument_group(
        "netem", "seeded link impairment and degraded-link mitigation "
        "(see docs/SCENARIOS.md)")
    netem.add_argument("--impair-loss", type=float, default=0.0,
                       metavar="F",
                       help="independent per-packet loss probability")
    netem.add_argument("--impair-burst", metavar="P,R[,LB[,LG]]",
                       help="Gilbert-Elliott burst loss: good->bad "
                            "prob P, bad->good prob R, optional "
                            "loss-while-bad (default 1.0) and "
                            "loss-while-good (default 0.0)")
    netem.add_argument("--impair-corrupt", type=float, default=0.0,
                       metavar="F",
                       help="per-packet frame-corruption probability "
                            "(1-8 payload bit flips)")
    netem.add_argument("--impair-corrupt-silent", action="store_true",
                       help="recompute checksums after corrupting "
                            "(silent corruption: undetectable by "
                            "checksum quarantine)")
    netem.add_argument("--impair-reorder", type=float, default=0.0,
                       metavar="F",
                       help="per-packet bounded-reordering probability")
    netem.add_argument("--impair-reorder-depth", type=int, default=None,
                       metavar="N",
                       help="max positions a reordered packet is "
                            "displaced (default: 8)")
    netem.add_argument("--impair-dup", type=float, default=0.0,
                       metavar="F",
                       help="per-packet duplication probability")
    netem.add_argument("--impair-jitter", type=float, default=0.0,
                       metavar="S",
                       help="max extra per-packet latency (virtual s)")
    netem.add_argument("--impair-seed", type=int, default=None,
                       metavar="N",
                       help="impairment RNG seed (default: --seed)")
    netem.add_argument("--impair-trace", metavar="PATH",
                       help="replay per-packet impairment decisions "
                            "from a recorded trace file")
    netem.add_argument("--impair-record", metavar="PATH",
                       help="record every sampled impairment decision "
                            "to a replayable trace file")
    netem.add_argument("--impair-quarantine", action="store_true",
                       help="verify IPv4/TCP/UDP checksums at ingress "
                            "and drop (quarantine) frames that fail, "
                            "attributed per link")
    netem.add_argument("--impair-disable-threshold", type=int,
                       default=0, metavar="N",
                       help="disable an ingress link after N detected-"
                            "bad frames within the sliding window "
                            "(0: policy off)")
    netem.add_argument("--impair-disable-window", type=int,
                       default=None, metavar="N",
                       help="sliding window (frames) for the disable "
                            "decision (default: 256)")
    netem.add_argument("--impair-repair-time", type=float, default=None,
                       metavar="S",
                       help="virtual seconds a disabled link stays "
                            "down (default: 0.5)")
    netem.add_argument("--impair-adaptive-reassembly",
                       action="store_true",
                       help="let the reassembler widen/narrow its "
                            "out-of-order window with observed reorder "
                            "depth")
    netem.add_argument("--impair-out", metavar="PATH",
                       help="write the impairment ledger as NDJSON")
    parser.add_argument("--describe-filter", metavar="FILTER",
                        help="print a filter's decomposition and exit")
    return parser


def _load_fault_plan(spec: Optional[str]):
    """Parse --fault-plan: inline JSON (starts with '{') or a file."""
    if not spec:
        return None
    from repro.resilience import FaultPlan
    return FaultPlan.from_json(spec)


def _render(obj) -> str:
    name = type(obj).__name__
    if hasattr(obj, "sni"):
        return f"{name}: sni={obj.sni()} cipher={getattr(obj, 'cipher', lambda: None)()}"
    if hasattr(obj, "uri"):
        return f"{name}: {obj.method()} {obj.uri()} -> {obj.status_code()}"
    if hasattr(obj, "query_name"):
        return f"{name}: {obj.query_name()} rc={obj.response_code()}"
    if hasattr(obj, "five_tuple") and hasattr(obj, "total_packets"):
        return (f"{name}: {obj.five_tuple} pkts={obj.total_packets} "
                f"bytes={obj.total_bytes} svc={obj.service}")
    if hasattr(obj, "mbuf"):
        return f"{name}: {len(obj.mbuf)}B @ {obj.timestamp:.6f}"
    return f"{name}: {obj!r}"


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.describe_filter is not None:
        try:
            compiled = compile_filter(args.describe_filter)
        except RetinaError as exc:
            print(f"filter error: {exc}", file=sys.stderr)
            return 2
        print(compiled.describe())
        print()
        print("generated code:")
        print(compiled.generated_source)
        return 0

    # Conflicting-flag validation, with errors that say what to change
    # instead of just what is wrong.
    if args.overload_policy != "off" and \
            args.memory_policy in ("evict", "shed"):
        print(f"error: --overload-policy {args.overload_policy} "
              f"conflicts with --memory-policy {args.memory_policy}: "
              f"the overload ladder already owns admission control "
              f"under memory pressure; drop --memory-policy (keeping "
              f"the default 'record') or use --overload-policy off",
              file=sys.stderr)
        return 2
    if args.subscriptions and args.filter_str:
        print("error: --subscriptions conflicts with --filter: tenant "
              "filters live in the subscriptions file (one per "
              "tenant); move the filter into a tenant entry or drop "
              "--subscriptions", file=sys.stderr)
        return 2
    if args.reconfigure_at and not args.subscriptions:
        print("error: --reconfigure-at has no effect without "
              "--subscriptions: live reconfiguration swaps tenants in "
              "a multi-tenant filter table; add --subscriptions PATH "
              "or drop --reconfigure-at", file=sys.stderr)
        return 2
    if args.tenants_out and not args.subscriptions:
        print("error: --tenants-out has no effect without "
              "--subscriptions: per-tenant stats only exist on a "
              "multi-tenant run; add --subscriptions PATH or drop "
              "--tenants-out", file=sys.stderr)
        return 2
    if args.subscriptions and args.fault_plan:
        try:
            plan_probe = _load_fault_plan(args.fault_plan)
        except RetinaError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        from repro.resilience.faults import WORKER_FAULT_KINDS
        if plan_probe is not None and any(
                s.kind not in WORKER_FAULT_KINDS
                for s in plan_probe.faults):
            print("error: --subscriptions conflicts with non-worker "
                  "--fault-plan entries: pipeline-level faults "
                  "(callback_error/parser_error/corrupt_packet/...) "
                  "cannot be attributed to one tenant from a run-level "
                  "plan; keep only worker_crash/worker_hang entries",
                  file=sys.stderr)
            return 2
    tenancy_specs = None
    tenancy_events = []
    if args.subscriptions:
        from repro.tenancy import load_subscriptions, parse_reconfigure
        try:
            tenancy_specs = load_subscriptions(args.subscriptions)
            tenancy_events = [parse_reconfigure(text)
                              for text in args.reconfigure_at]
        except RetinaError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.supervise and args.parallel <= 0:
        print("error: --supervise requires --parallel N: supervision "
              "restarts worker *processes*, which only exist on the "
              "parallel backend; add --parallel 2 (or more) or drop "
              "--supervise", file=sys.stderr)
        return 2
    if args.overload_target_lag <= 0:
        print("error: --overload-target-lag must be positive "
              "(virtual seconds of tolerated backlog)", file=sys.stderr)
        return 2
    if args.burst_intensity < 1.0:
        print("error: --burst-intensity must be >= 1.0 (it multiplies "
              "the baseline arrival rate)", file=sys.stderr)
        return 2
    if args.ipc != "auto" and args.parallel <= 0:
        print("error: --ipc has no effect without --parallel: the "
              "transport only carries feeder->worker batches; add "
              "--parallel N or drop --ipc", file=sys.stderr)
        return 2
    if args.trace_sample is not None and not args.trace_out:
        print("error: --trace-sample has no effect without --trace-out: "
              "connection tracing is off; add --trace-out PATH or drop "
              "--trace-sample", file=sys.stderr)
        return 2
    span_output = bool(args.spans_out or args.spans_ndjson
                       or args.flight_out)
    if args.span_sample is not None and args.span_sample <= 0:
        print("error: --span-sample must be >= 1 (profile every Kth "
              "burst per core; use --span-sample 1 to profile every "
              "burst)", file=sys.stderr)
        return 2
    if args.span_sample is not None and not span_output:
        print("error: --span-sample has no effect without a span "
              "output: add --spans-out, --spans-ndjson or --flight-out, "
              "or drop --span-sample", file=sys.stderr)
        return 2
    if args.flight_recorder_depth is not None and \
            args.flight_recorder_depth <= 0:
        print("error: --flight-recorder-depth must be >= 1 (bursts "
              "retained per core in the flight ring)", file=sys.stderr)
        return 2
    if args.flight_recorder_depth is not None and not args.flight_out:
        print("error: --flight-recorder-depth has no effect without "
              "--flight-out: the ring is only dumped there; add "
              "--flight-out PATH or drop --flight-recorder-depth",
              file=sys.stderr)
        return 2
    impair_models = bool(args.impair_loss or args.impair_burst
                         or args.impair_corrupt or args.impair_reorder
                         or args.impair_dup or args.impair_jitter)
    impair_any = (impair_models or args.impair_trace
                  or args.impair_record or args.impair_quarantine
                  or args.impair_disable_threshold > 0)
    if args.impair_trace and impair_models:
        print("error: --impair-trace conflicts with the impairment "
              "model flags (--impair-loss/--impair-burst/"
              "--impair-corrupt/--impair-reorder/--impair-dup/"
              "--impair-jitter): a replay trace already fixes every "
              "per-packet decision; drop the model flags or the trace",
              file=sys.stderr)
        return 2
    if args.impair_record and args.impair_trace:
        print("error: --impair-record with --impair-trace would "
              "re-record the replayed trace verbatim; drop one of them",
              file=sys.stderr)
        return 2
    if args.impair_corrupt_silent and not (args.impair_corrupt
                                           or args.impair_trace):
        print("error: --impair-corrupt-silent has no effect without "
              "--impair-corrupt (corrupt_silent only changes how "
              "flipped bits are checksummed); add --impair-corrupt F "
              "or drop --impair-corrupt-silent", file=sys.stderr)
        return 2
    if args.impair_reorder_depth is not None and not args.impair_reorder:
        print("error: --impair-reorder-depth has no effect without "
              "--impair-reorder: no packets are displaced; add "
              "--impair-reorder F or drop --impair-reorder-depth",
              file=sys.stderr)
        return 2
    if (args.impair_disable_window is not None
            or args.impair_repair_time is not None) and \
            args.impair_disable_threshold <= 0:
        print("error: --impair-disable-window/--impair-repair-time "
              "have no effect without --impair-disable-threshold: the "
              "disable-and-repair policy is off; add "
              "--impair-disable-threshold N or drop them",
              file=sys.stderr)
        return 2
    if args.impair_out and not impair_any:
        print("error: --impair-out has no effect without an impairment "
              "or mitigation flag: no ledger is kept; add an "
              "--impair-* flag (e.g. --impair-loss) or drop "
              "--impair-out", file=sys.stderr)
        return 2
    if impair_any and args.fault_plan:
        try:
            plan_probe = _load_fault_plan(args.fault_plan)
        except RetinaError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if plan_probe is not None and plan_probe.has_packet_faults:
            print("error: --impair-* flags conflict with --fault-plan "
                  "packet-corruption entries (corrupt_packet/"
                  "truncate_packet): two uncoordinated layers mutating "
                  "the same frames make loss attribution ambiguous; "
                  "move the corruption into the impairment layer "
                  "(--impair-corrupt) or strip packet faults from the "
                  "plan", file=sys.stderr)
            return 2

    if args.pcap:
        from repro.traffic.pcap import iter_pcap
        traffic = iter_pcap(args.pcap)
    elif args.synthetic == "https":
        from repro.traffic import HttpsWorkloadGenerator
        traffic = iter(HttpsWorkloadGenerator(seed=args.seed).packets(
            requests_per_second=50, duration=args.duration))
    elif args.synthetic == "burst":
        from repro.traffic import BurstTrafficGenerator, BurstWindow
        traffic = iter(BurstTrafficGenerator(
            seed=args.seed,
            windows=(BurstWindow(intensity=args.burst_intensity),),
        ).packets(duration=args.duration, gbps=args.gbps))
    else:
        from repro.traffic import CampusTrafficGenerator
        traffic = iter(CampusTrafficGenerator(seed=args.seed).packets(
            duration=args.duration, gbps=args.gbps))

    printed = 0

    def callback(obj) -> None:
        nonlocal printed
        if printed < args.print_limit:
            print(_render(obj))
            printed += 1
        elif printed == args.print_limit:
            print("... (further deliveries suppressed)")
            printed += 1

    try:
        fault_plan = _load_fault_plan(args.fault_plan)
        impairment = None
        if impair_any:
            from repro.netem import GilbertElliott, ImpairmentConfig
            impairment = ImpairmentConfig(
                seed=(args.impair_seed if args.impair_seed is not None
                      else args.seed),
                loss_rate=args.impair_loss,
                burst=(GilbertElliott.parse(args.impair_burst)
                       if args.impair_burst else None),
                corrupt_rate=args.impair_corrupt,
                corrupt_silent=args.impair_corrupt_silent,
                reorder_rate=args.impair_reorder,
                reorder_depth=(args.impair_reorder_depth
                               if args.impair_reorder_depth is not None
                               else 8),
                duplicate_rate=args.impair_dup,
                jitter_s=args.impair_jitter,
                trace_path=args.impair_trace,
                record_path=args.impair_record,
                quarantine=args.impair_quarantine,
                disable_threshold=args.impair_disable_threshold,
                disable_window=(args.impair_disable_window
                                if args.impair_disable_window is not None
                                else 256),
                repair_time=(args.impair_repair_time
                             if args.impair_repair_time is not None
                             else 0.5),
            )
        config = RuntimeConfig(
            cores=args.parallel if args.parallel > 0 else args.cores,
            parallel=args.parallel > 0,
            parallel_batch_size=args.batch_size,
            ipc_transport=args.ipc,
            filter_mode=args.mode,
            hardware_filter=not args.no_hardware_filter,
            columnar=not args.no_columnar,
            sink_fraction=args.sink_fraction,
            telemetry=bool(args.metrics_out or args.trace_out),
            trace_sample=(args.trace_sample if args.trace_sample
                          is not None else 0.01)
            if args.trace_out else 0.0,
            span_sample=(args.span_sample if args.span_sample is not None
                         else 1) if (args.spans_out or args.spans_ndjson)
            else (args.span_sample or 0),
            flight_recorder_depth=(
                args.flight_recorder_depth
                if args.flight_recorder_depth is not None
                else 8) if args.flight_out else 0,
            fault_plan=fault_plan,
            callback_error_policy=args.callback_errors,
            callback_error_budget=args.callback_error_budget,
            memory_policy=args.memory_policy,
            memory_limit_bytes=args.memory_limit or None,
            supervise=args.supervise,
            overload_policy=args.overload_policy,
            overload_target_lag=args.overload_target_lag,
            impairment=impairment,
            ooo_adaptive=args.impair_adaptive_reassembly,
        )
        if tenancy_specs is not None:
            from repro.tenancy import TenantRuntime
            runtime = TenantRuntime(config, tenancy_specs,
                                    events=tenancy_events)
        else:
            runtime = Runtime(config, filter_str=args.filter_str,
                              datatype=args.datatype, callback=callback)
    except RetinaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    monitor = StatsMonitor(emit=print) if args.monitor else None
    try:
        report = runtime.run(traffic, monitor=monitor)
    except RetinaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print()
    print(report.stats.describe())
    tenancy_payload = None
    if tenancy_specs is not None:
        tenants = runtime.aggregate_tenants(report)
        ledgers = runtime.tenant_ledgers(report)
        tenancy_payload = {"epoch": runtime.table.epoch,
                           "active": list(runtime.table.active),
                           "tenants": tenants, "shed": ledgers}
        print(f"tenants: {len(tenants)} seen, epoch "
              f"{runtime.table.epoch}, active "
              f"{','.join(runtime.table.active) or '(none)'}")
        for name in sorted(tenants):
            stats = tenants[name]
            line = (f"  {name}: processed={stats.processed_packets} "
                    f"callbacks={stats.callbacks} "
                    f"conns={stats.conns_delivered}")
            shed = ledgers.get(name)
            if shed is not None and shed.packets_shed:
                line += f" shed={shed.packets_shed}"
            print(line)
        if args.tenants_out:
            import json
            payload = {
                "epoch": runtime.table.epoch,
                "active": list(runtime.table.active),
                "tenants": {
                    name: {
                        "stats": stats.to_dict(),
                        "shed": (ledgers[name].to_dict()
                                 if name in ledgers else None),
                    }
                    for name, stats in tenants.items()
                },
            }
            with open(args.tenants_out, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            print(f"(per-tenant stats written to {args.tenants_out})")
    if report.impairment is not None:
        print(report.impairment.describe())
    if report.overload is not None:
        print(report.overload.describe())
    if report.faults is not None:
        faults = report.faults
        line = (f"faults: injected={sum(faults.injected.values())} "
                f"callback_errors={faults.callback_errors} "
                f"restarts={faults.worker_restarts} "
                f"replayed={faults.replayed_batches}")
        if faults.degraded:
            line += f" DEGRADED lost_cores={faults.lost_cores}"
        print(line)
    if args.faults_out:
        import json
        payload = (report.faults.to_dict()
                   if report.faults is not None else {})
        with open(args.faults_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"(fault report written to {args.faults_out})")
    if args.json_stats:
        import json
        with open(args.json_stats, "w") as handle:
            json.dump(report.stats.to_dict(), handle, indent=2)
        print(f"(stats written to {args.json_stats})")
    if args.metrics_out:
        from repro.telemetry import export
        export.write_metrics(args.metrics_out, report.stats,
                             backend_health=report.backend_health,
                             faults=report.faults,
                             overload=report.overload,
                             impairment=report.impairment,
                             tenancy=tenancy_payload)
        print(f"(metrics written to {args.metrics_out})")
    if args.trace_out:
        from repro.telemetry import export
        events = export.write_trace(args.trace_out, report.stats)
        print(f"({events} trace events written to {args.trace_out})")
    if span_output:
        from repro.telemetry import export
        if report.spans is None:
            print("(no span data recorded)", file=sys.stderr)
        else:
            if args.spans_out:
                n = export.write_chrome_trace(args.spans_out,
                                              report.spans)
                print(f"({n} span events written to {args.spans_out})")
            if args.spans_ndjson:
                n = export.write_spans(args.spans_ndjson, report.spans)
                print(f"({n} span records written to "
                      f"{args.spans_ndjson})")
            if args.flight_out:
                n = export.write_flight(args.flight_out, report.spans)
                print(f"({n} flight dumps written to {args.flight_out})")
    if args.overload_out and report.overload is not None:
        from repro.telemetry import export
        records = export.write_overload(args.overload_out,
                                        report.overload)
        print(f"({records} overload records written to "
              f"{args.overload_out})")
    if args.impair_out and report.impairment is not None:
        from repro.telemetry import export
        records = export.write_impairment(args.impair_out,
                                          report.impairment)
        print(f"({records} impairment records written to "
              f"{args.impair_out})")
    if args.impair_record and report.impairment is not None:
        print(f"(impairment trace recorded to {args.impair_record})")
    if report.failed_fast:
        print(f"aborted: overload failfast at "
              f"{report.overload.failfast_at:.3f}s", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
