"""Statistical distributions calibrating the synthetic campus traffic.

Targets come from the paper's Appendix C (Table 2 and Figure 13):

* average packet size 895 B with a bimodal distribution (control
  packets near the 54-90 B floor, data packets at the 1514 B MTU);
* 69.7% TCP / 29.8% UDP connections; 72.4% of bytes in TCP streams;
* 65% of TCP connections are single unanswered SYNs;
* ~121 packets per connection on average (heavy-tailed);
* 6% of flows with out-of-order arrivals, 4.6% incomplete;
* P99 SYN→SYN-ACK of 1 s, P99 inter-segment gap 163 s.

These are expressed as tunable knobs so the Table 2 benchmark can
report generated-vs-paper values.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class ServiceMix:
    """Relative weights of application protocols on data connections."""

    tls: float = 0.62
    http: float = 0.12
    ssh: float = 0.03
    opaque_tcp: float = 0.23

    def choose(self, rng: random.Random) -> str:
        roll = rng.random() * (self.tls + self.http + self.ssh +
                               self.opaque_tcp)
        if roll < self.tls:
            return "tls"
        roll -= self.tls
        if roll < self.http:
            return "http"
        roll -= self.http
        if roll < self.ssh:
            return "ssh"
        return "opaque_tcp"


#: SNI / host popularity, a Zipf-flavored campus mix. Video domains are
#: prominent (Sections 6.3, 7.3 filter on them); a long tail of .com /
#: .net / .edu domains exercises the quickstart filter.
DOMAINS: List[Tuple[str, float]] = [
    ("www.google.com", 0.14),
    ("i.ytimg.com", 0.04),
    ("rr4---sn-abc.googlevideo.com", 0.10),
    ("occ-0-1234.1.nflxvideo.net", 0.08),
    ("www.netflix.com", 0.02),
    ("static.xx.fbcdn.net", 0.05),
    ("www.facebook.com", 0.04),
    ("cdn.jsdelivr.net", 0.04),
    ("www.amazon.com", 0.05),
    ("api.segment.io", 0.03),
    ("www.stanford.edu", 0.05),
    ("canvas.university.edu", 0.04),
    ("mail.campus.edu", 0.03),
    ("updates.microsoft.com", 0.05),
    ("www.wikipedia.org", 0.04),
    ("slack.com", 0.04),
    ("zoom.us", 0.05),
    ("www.example.com", 0.03),
    ("tracker.badsite.io", 0.02),
    ("legacy.intranet.local", 0.06),
]


def choose_domain(rng: random.Random) -> str:
    roll = rng.random()
    acc = 0.0
    for domain, weight in DOMAINS:
        acc += weight
        if roll < acc:
            return domain
    return DOMAINS[-1][0]


@dataclass
class FlowSizeModel:
    """Heavy-tailed flow sizes (application bytes per data connection).

    Lognormal body with a cap: campus traffic mixes many small
    request/response flows with a few elephants. Defaults are chosen so
    the all-connection average lands near Table 2's 121 packets.
    """

    mu: float = 10.2         # median ≈ 27 kB
    sigma: float = 2.2
    cap_bytes: int = 8_000_000

    def sample(self, rng: random.Random) -> int:
        size = int(rng.lognormvariate(self.mu, self.sigma))
        return max(256, min(size, self.cap_bytes))

    @property
    def mean_bytes(self) -> float:
        """Analytic mean of the (uncapped) lognormal."""
        return math.exp(self.mu + self.sigma ** 2 / 2)


@dataclass
class TimingModel:
    """Connection-level timing (Appendix C's P99 columns)."""

    #: SYN → SYN-ACK latency distribution (exponential, P99 ≈ 1 s).
    synack_p99: float = 1.0
    #: In-flow inter-segment gaps for long-lived flows (P99 ≈ 163 s is
    #: dominated by idle keepalive connections; the bulk is packet-gap).
    long_idle_fraction: float = 0.01
    long_idle_p99: float = 163.0

    def synack_delay(self, rng: random.Random) -> float:
        # Exponential with P99 at synack_p99: rate = ln(100)/p99.
        return rng.expovariate(math.log(100) / self.synack_p99)

    def maybe_idle_gap(self, rng: random.Random) -> float:
        if rng.random() < self.long_idle_fraction:
            return rng.expovariate(math.log(100) / self.long_idle_p99)
        return 0.0
