"""Deterministic bursty traffic: a baseline load with arrival spikes.

The overload ladder (:mod:`repro.overload`) degrades gracefully under
*transient* pressure and recovers when it passes. Exercising that needs
traffic whose arrival rate is deliberately non-stationary: this module
wraps the campus generator with a seeded burst schedule — uniform
baseline connection arrivals plus configurable windows during which the
arrival rate is multiplied. Everything downstream (flow construction,
payloads, perturbation) is the campus generator's, so bursty traffic
stresses the same parsing path as the steady mix.

Determinism: for a fixed seed, profile, and window schedule the packet
stream is byte-identical run to run and backend-independent, which is
what lets tests assert exact shed counts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.packet.batch import DEFAULT_BATCH_SIZE, PackedBatch, pack_stream
from repro.packet.mbuf import Mbuf
from repro.traffic.campus import CampusProfile, CampusTrafficGenerator


@dataclass(frozen=True)
class BurstWindow:
    """One arrival-rate spike, in fractions of the run duration.

    ``start`` and ``duration`` are fractions in [0, 1] of the stream's
    total duration; ``intensity`` multiplies the baseline arrival rate
    inside the window (8.0 = eight times the steady-state rate).
    """

    start: float = 0.4
    duration: float = 0.2
    intensity: float = 8.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start <= 1.0:
            raise ValueError("burst start must be a fraction in [0, 1]")
        if not 0.0 < self.duration <= 1.0:
            raise ValueError("burst duration must be in (0, 1]")
        if self.intensity < 1.0:
            raise ValueError("burst intensity must be >= 1.0")


class BurstTrafficGenerator:
    """Campus-mix traffic with deterministic arrival-rate bursts."""

    def __init__(
        self,
        seed: int = 0,
        profile: Optional[CampusProfile] = None,
        windows: Optional[Sequence[BurstWindow]] = None,
    ) -> None:
        # Short-lived flows by default: the burst should pressure the
        # admission path, not sit in week-long streaming connections.
        self.profile = profile or CampusProfile(long_lived_fraction=0.0)
        self.windows = tuple(windows) if windows is not None \
            else (BurstWindow(),)
        self._campus = CampusTrafficGenerator(seed, self.profile)
        self.rng = self._campus.rng

    def packets(
        self,
        duration: float = 1.0,
        gbps: float = 0.1,
        start_ts: float = 0.0,
    ) -> List[Mbuf]:
        """Generate ``duration`` seconds of bursty traffic.

        ``gbps`` sets the *baseline* rate; each window contributes its
        own extra arrivals on top, so the total volume exceeds the
        baseline by ``sum((intensity - 1) * duration_fraction)``.
        """
        target_bytes = gbps * 1e9 / 8 * duration
        mean_conn_bytes = self.profile.estimate_mean_conn_bytes()
        n_base = max(1, int(target_bytes / mean_conn_bytes))
        rng = self.rng
        arrivals = [start_ts + rng.random() * duration
                    for _ in range(n_base)]
        for window in self.windows:
            extra = int(n_base * (window.intensity - 1.0)
                        * window.duration)
            w_start = start_ts + window.start * duration
            w_len = window.duration * duration
            arrivals.extend(w_start + rng.random() * w_len
                            for _ in range(extra))
        arrivals.sort()
        flows = [self._campus._one_connection(ts) for ts in arrivals]
        return list(heapq.merge(*flows, key=lambda mbuf: mbuf.timestamp))

    def packed_batches(
        self,
        duration: float = 1.0,
        gbps: float = 0.1,
        start_ts: float = 0.0,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> Iterator[PackedBatch]:
        """Like :meth:`packets`, emitted as flat-buffer batches."""
        yield from pack_stream(
            self.packets(duration, gbps, start_ts), batch_size)
