"""Reading and writing classic libpcap capture files.

Appendix B benchmarks Retina's offline mode against Stratosphere pcap
traces; this module implements the real libpcap file format (magic
0xa1b2c3d4, version 2.4, LINKTYPE_ETHERNET) so synthesized traces
round-trip through the same on-disk representation.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.errors import RetinaError
from repro.packet.mbuf import Mbuf

_MAGIC = 0xA1B2C3D4
_MAGIC_SWAPPED = 0xD4C3B2A1
_MAGIC_NS = 0xA1B23C4D
_VERSION = (2, 4)
_LINKTYPE_ETHERNET = 1
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_PACKET_HEADER = struct.Struct("<IIII")


class PcapFormatError(RetinaError):
    """The file is not a readable classic pcap capture."""


def write_pcap(path: Union[str, Path], mbufs: Iterable[Mbuf],
               snaplen: int = 65535) -> int:
    """Write frames to ``path``; returns the number written."""
    count = 0
    with open(path, "wb") as handle:
        handle.write(_GLOBAL_HEADER.pack(
            _MAGIC, _VERSION[0], _VERSION[1], 0, 0, snaplen,
            _LINKTYPE_ETHERNET,
        ))
        for mbuf in mbufs:
            seconds = int(mbuf.timestamp)
            micros = int(round((mbuf.timestamp - seconds) * 1e6))
            if micros >= 1_000_000:
                seconds += 1
                micros -= 1_000_000
            data = mbuf.data[:snaplen]
            handle.write(_PACKET_HEADER.pack(
                seconds, micros, len(data), len(mbuf.data)))
            handle.write(data)
            count += 1
    return count


def read_pcap(path: Union[str, Path]) -> List[Mbuf]:
    """Read all frames from a classic pcap file."""
    return list(iter_pcap(path))


def iter_pcap(path: Union[str, Path]) -> Iterator[Mbuf]:
    """Stream frames from a classic pcap file."""
    with open(path, "rb") as handle:
        header = handle.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise PcapFormatError("truncated global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == _MAGIC:
            endian = "<"
            ts_divisor = 1e6
        elif magic == _MAGIC_SWAPPED:
            endian = ">"
            ts_divisor = 1e6
        elif magic == _MAGIC_NS:
            endian = "<"
            ts_divisor = 1e9
        else:
            raise PcapFormatError(f"bad magic 0x{magic:08x}")
        fields = struct.unpack(endian + "IHHiIII", header)
        linktype = fields[6]
        if linktype != _LINKTYPE_ETHERNET:
            raise PcapFormatError(
                f"unsupported link type {linktype} (want Ethernet)")
        packet_header = struct.Struct(endian + "IIII")
        while True:
            raw = handle.read(packet_header.size)
            if not raw:
                return
            if len(raw) < packet_header.size:
                raise PcapFormatError("truncated packet header")
            seconds, sub, incl_len, _orig_len = packet_header.unpack(raw)
            data = handle.read(incl_len)
            if len(data) < incl_len:
                raise PcapFormatError("truncated packet body")
            yield Mbuf(data, timestamp=seconds + sub / ts_divisor)
