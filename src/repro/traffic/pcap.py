"""Reading and writing classic libpcap capture files.

Appendix B benchmarks Retina's offline mode against Stratosphere pcap
traces; this module implements the real libpcap file format (magic
0xa1b2c3d4, version 2.4, LINKTYPE_ETHERNET) so synthesized traces
round-trip through the same on-disk representation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from repro.errors import RetinaError
from repro.packet.mbuf import Mbuf

_MAGIC = 0xA1B2C3D4
_MAGIC_SWAPPED = 0xD4C3B2A1
_MAGIC_NS = 0xA1B23C4D
_VERSION = (2, 4)
_LINKTYPE_ETHERNET = 1
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_PACKET_HEADER = struct.Struct("<IIII")


class PcapFormatError(RetinaError):
    """The file is not a readable classic pcap capture."""


@dataclass
class PcapReadStats:
    """Counters filled in by :func:`iter_pcap` (pass ``stats=``).

    ``truncated_tail`` counts final records cut off mid-header or
    mid-body — the usual signature of a capture interrupted by a crash
    or a full disk. In strict mode (default) such a record raises
    :class:`PcapFormatError`; in tolerant mode it is counted here and
    the stream ends cleanly with every complete record delivered.
    """

    packets: int = 0
    truncated_tail: int = 0


def write_pcap(path: Union[str, Path], mbufs: Iterable[Mbuf],
               snaplen: int = 65535) -> int:
    """Write frames to ``path``; returns the number written."""
    count = 0
    with open(path, "wb") as handle:
        handle.write(_GLOBAL_HEADER.pack(
            _MAGIC, _VERSION[0], _VERSION[1], 0, 0, snaplen,
            _LINKTYPE_ETHERNET,
        ))
        for mbuf in mbufs:
            seconds = int(mbuf.timestamp)
            micros = int(round((mbuf.timestamp - seconds) * 1e6))
            if micros >= 1_000_000:
                seconds += 1
                micros -= 1_000_000
            data = mbuf.data[:snaplen]
            handle.write(_PACKET_HEADER.pack(
                seconds, micros, len(data), len(mbuf.data)))
            handle.write(data)
            count += 1
    return count


def read_pcap(path: Union[str, Path]) -> List[Mbuf]:
    """Read all frames from a classic pcap file."""
    return list(iter_pcap(path))


def iter_pcap(path: Union[str, Path], strict: bool = True,
              stats: Optional[PcapReadStats] = None) -> Iterator[Mbuf]:
    """Stream frames from a classic pcap file.

    Args:
        path: Capture file to read.
        strict: With the default True, a record truncated by an
            interrupted capture raises :class:`PcapFormatError`. With
            False, the truncated tail is dropped, counted in ``stats``
            (when given), reported once via :mod:`warnings`, and the
            iterator ends cleanly — long offline analyses survive a
            ragged final record instead of dying at 99%. Global-header
            and magic/linktype errors always raise: a file whose very
            framing is wrong is not a pcap, not a damaged one.
        stats: Optional :class:`PcapReadStats` to fill with packet and
            truncation counts.
    """
    with open(path, "rb") as handle:
        header = handle.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise PcapFormatError("truncated global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == _MAGIC:
            endian = "<"
            ts_divisor = 1e6
        elif magic == _MAGIC_SWAPPED:
            endian = ">"
            ts_divisor = 1e6
        elif magic == _MAGIC_NS:
            endian = "<"
            ts_divisor = 1e9
        else:
            raise PcapFormatError(f"bad magic 0x{magic:08x}")
        fields = struct.unpack(endian + "IHHiIII", header)
        linktype = fields[6]
        if linktype != _LINKTYPE_ETHERNET:
            raise PcapFormatError(
                f"unsupported link type {linktype} (want Ethernet)")
        packet_header = struct.Struct(endian + "IIII")
        while True:
            raw = handle.read(packet_header.size)
            if not raw:
                return
            if len(raw) < packet_header.size:
                if strict:
                    raise PcapFormatError("truncated packet header")
                _note_truncation(path, stats, "header")
                return
            seconds, sub, incl_len, _orig_len = packet_header.unpack(raw)
            data = handle.read(incl_len)
            if len(data) < incl_len:
                if strict:
                    raise PcapFormatError("truncated packet body")
                _note_truncation(path, stats, "body")
                return
            if stats is not None:
                stats.packets += 1
            yield Mbuf(data, timestamp=seconds + sub / ts_divisor)


def _note_truncation(path, stats: Optional[PcapReadStats],
                     where: str) -> None:
    import warnings
    if stats is not None:
        stats.truncated_tail += 1
    warnings.warn(
        f"{path}: final pcap record truncated mid-{where}; "
        f"dropping it and stopping cleanly (tolerant mode)",
        RuntimeWarning, stacklevel=3)
