"""The campus-traffic generator (the paper's monitoring environment).

Synthesizes a live-tap-shaped packet stream: Poisson connection
arrivals; 65% of TCP connections are single unanswered SYNs (scanning);
data connections carry real TLS/HTTP/SSH payloads with heavy-tailed
sizes; UDP is a DNS + opaque-datagram mix; a configurable fraction of
flows arrive out of order or incomplete. The output is a
timestamp-sorted stream of :class:`~repro.packet.mbuf.Mbuf`.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.packet.batch import DEFAULT_BATCH_SIZE, PackedBatch, pack_stream
from repro.packet.mbuf import Mbuf
from repro.traffic.distributions import (
    FlowSizeModel,
    ServiceMix,
    TimingModel,
    choose_domain,
)
from repro.traffic.flows import (
    FlowSpec,
    TcpFlow,
    dns_flow,
    http_flow,
    ping_flow,
    quic_flow,
    single_syn,
    ssh_flow,
    tls_flow,
    udp_flow,
)


@dataclass
class CampusProfile:
    """Composition knobs, calibrated to Appendix C."""

    #: Fraction of connections that are TCP (Table 2: 69.7%).
    tcp_fraction: float = 0.697
    #: Of TCP connections, fraction that are single unanswered SYNs
    #: (Section 5.2: ~65%).
    single_syn_fraction: float = 0.65
    #: Of UDP connections, fraction that are DNS lookups.
    dns_fraction: float = 0.6
    #: Fraction of data flows with injected reordering (Table 2: 6%).
    ooo_flow_fraction: float = 0.06
    #: Fraction of data flows with a lost segment (Table 2: 4.6%).
    incomplete_flow_fraction: float = 0.046
    #: Fraction of data TCP flows torn down by RST instead of FIN.
    rst_fraction: float = 0.08
    #: Fraction of data flows stretched over a long lifetime (idle
    #: keepalive/streaming connections; drives Table 2's 163 s P99
    #: inter-segment gap and Figure 8's established population).
    long_lived_fraction: float = 0.25
    long_lived_max_duration: float = 600.0
    #: Fraction of connections carried over IPv6 (dual-stack campus).
    ipv6_fraction: float = 0.25
    service_mix: ServiceMix = field(default_factory=ServiceMix)
    flow_sizes: FlowSizeModel = field(default_factory=FlowSizeModel)
    timing: TimingModel = field(default_factory=TimingModel)

    #: Mean wire bytes contributed per connection, used to convert a
    #: target bit-rate into a connection arrival rate. Estimated from
    #: the mix (single SYNs ≈ 54 B; data flows ≈ sizes + overhead).
    def estimate_mean_conn_bytes(self) -> float:
        data_fraction = self.tcp_fraction * (1 - self.single_syn_fraction)
        syn_fraction = self.tcp_fraction * self.single_syn_fraction
        udp_fraction = 1 - self.tcp_fraction
        data_bytes = self.flow_sizes.mean_bytes * 1.12 + 2000  # hdr overhead
        return (
            syn_fraction * 54
            + udp_fraction * 600
            + data_fraction * data_bytes
        )


class CampusTrafficGenerator:
    """Deterministic (seeded) campus-mix traffic source."""

    def __init__(
        self,
        seed: int = 0,
        profile: Optional[CampusProfile] = None,
        client_subnet: str = "10.{a}.{b}.{c}",
        server_subnet: str = "171.64.{b}.{c}",
    ) -> None:
        self.rng = random.Random(seed)
        self.profile = profile or CampusProfile()
        self._client_subnet = client_subnet
        self._server_subnet = server_subnet
        self._flow_counter = 0

    # -- addressing -----------------------------------------------------------
    def _fresh_spec(self, server_port: int) -> FlowSpec:
        rng = self.rng
        self._flow_counter += 1
        if rng.random() < self.profile.ipv6_fraction:
            client = (f"2607:f6d0:{rng.randrange(1, 0xffff):x}:"
                      f"{rng.randrange(0xffff):x}::"
                      f"{rng.randrange(1, 0xffff):x}")
            server = (f"2607:f010:{rng.randrange(0xffff):x}::"
                      f"{rng.randrange(1, 0xffff):x}")
        else:
            client = self._client_subnet.format(
                a=rng.randrange(1, 32), b=rng.randrange(256),
                c=rng.randrange(1, 255),
            )
            server = self._server_subnet.format(
                b=rng.randrange(256), c=rng.randrange(1, 255),
            )
        return FlowSpec(client, server,
                        rng.randrange(16384, 65535), server_port)

    # -- one connection ---------------------------------------------------------
    def _one_connection(self, start_ts: float) -> List[Mbuf]:
        rng = self.rng
        profile = self.profile
        if rng.random() < profile.tcp_fraction:
            if rng.random() < profile.single_syn_fraction:
                return single_syn(self._fresh_spec(
                    rng.choice((22, 80, 443, 3389, 8080))), start_ts)
            return self._data_tcp_flow(start_ts)
        if rng.random() < profile.dns_fraction:
            return dns_flow(
                self._fresh_spec(53),
                name=choose_domain(rng),
                qtype=rng.choice(("A", "AAAA", "HTTPS")),
                rcode=0 if rng.random() < 0.92 else 3,
                txn_id=rng.randrange(1 << 16),
                start_ts=start_ts,
            )
        # Bulk UDP: QUIC-framed on 443 (real Initial + short-header
        # packets), opaque datagrams on VPN/STUN ports.
        sizes = [rng.randrange(400, 1350)
                 for _ in range(rng.randrange(10, 220))]
        port = rng.choice((443, 443, 51820, 3478))
        if port == 443:
            return quic_flow(
                self._fresh_spec(443), payload_sizes=sizes,
                dcid=rng.randbytes(8), scid=rng.randbytes(8),
                start_ts=start_ts,
            )
        return udp_flow(self._fresh_spec(port),
                        payload_sizes=sizes, start_ts=start_ts)

    def _data_tcp_flow(self, start_ts: float) -> List[Mbuf]:
        rng = self.rng
        profile = self.profile
        service = profile.service_mix.choose(rng)
        size = profile.flow_sizes.sample(rng)
        rtt = rng.uniform(0.002, 0.08)
        synack_delay = profile.timing.synack_delay(rng)
        teardown = "rst" if rng.random() < profile.rst_fraction else "fin"
        if service == "tls":
            domain = choose_domain(rng)
            packets = tls_flow(
                self._fresh_spec(443), domain, start_ts=start_ts,
                client_random=rng.randbytes(32),
                server_random=rng.randbytes(32),
                cipher_suite=rng.choice((0x1301, 0x1302, 0xC02F, 0xC030)),
                selected_version=rng.choice((0x0304, 0x0304, None)),
                appdata_bytes=size,
                appdata_up_bytes=min(size // 8, 4096),
                rtt=rtt, teardown=teardown, synack_delay=synack_delay,
                rng=rng,
            )
        elif service == "http":
            domain = choose_domain(rng)
            packets = http_flow(
                self._fresh_spec(80), host=domain,
                uri=f"/asset/{rng.randrange(1 << 20):x}",
                user_agent=rng.choice((
                    "Mozilla/5.0 (X11; Linux x86_64) Firefox/117.0",
                    "Mozilla/5.0 (Windows NT 10.0) Chrome/117.0",
                    "curl/8.1.2",
                )),
                response_bytes=size, start_ts=start_ts, rtt=rtt,
                teardown=teardown, synack_delay=synack_delay,
            )
        elif service == "ssh":
            packets = ssh_flow(
                self._fresh_spec(22),
                client_software=rng.choice((
                    "OpenSSH_8.9p1", "OpenSSH_9.3", "libssh2_1.10.0",
                )),
                start_ts=start_ts, kex_bytes=min(size, 16384), rtt=rtt,
                synack_delay=synack_delay,
            )
        else:  # opaque TCP (already-encrypted or unknown protocols)
            flow_builder = TcpFlow(self._fresh_spec(
                rng.choice((8443, 9000, 5223))), start_ts=start_ts, rtt=rtt)
            flow_builder.handshake(synack_delay)
            half = max(size // 2, 64)
            flow_builder.send(True, rng.randbytes(min(half, 4096)))
            flow_builder.send(False, bytes(half))
            if teardown == "fin":
                flow_builder.fin()
            else:
                flow_builder.rst()
            packets = flow_builder.build()
        packets = self._stretch(packets, start_ts)
        packets = self._perturb(packets)
        return packets

    def _stretch(self, packets: List[Mbuf], start_ts: float) -> List[Mbuf]:
        """Spread a fraction of data flows over minutes of lifetime."""
        rng = self.rng
        profile = self.profile
        if len(packets) < 6 or \
                rng.random() >= profile.long_lived_fraction:
            return packets
        target = rng.uniform(20.0, profile.long_lived_max_duration)
        actual = packets[-1].timestamp - packets[0].timestamp
        if actual <= 0:
            return packets
        # Keep the connection handshake at its natural pace; stretch
        # only the data phase.
        factor = target / actual
        for mbuf in packets[3:]:
            mbuf.timestamp = start_ts + (mbuf.timestamp - start_ts) * factor
        return packets

    def _perturb(self, packets: List[Mbuf]) -> List[Mbuf]:
        """Apply reordering / truncation to a built flow."""
        rng = self.rng
        profile = self.profile
        if len(packets) >= 5 and rng.random() < profile.ooo_flow_fraction:
            # Displace a payload-bearing packet so the reordering is
            # observable at the sequence level (pure ACK swaps are not).
            data_idx = [i for i, m in enumerate(packets)
                        if i >= 4 and len(m) > 100]
            if data_idx:
                index = rng.choice(data_idx)
                jump = min(rng.randrange(1, 4), index - 3)
                packets[index - jump], packets[index] = \
                    packets[index], packets[index - jump]
                times = sorted(m.timestamp for m in packets)
                for mbuf, ts in zip(packets, times):
                    mbuf.timestamp = ts
        if len(packets) >= 6 and \
                rng.random() < profile.incomplete_flow_fraction:
            # An incomplete flow: the tap never sees its termination
            # (mid-flow outage, asymmetric routing change, ...).
            cut = rng.randrange(4, len(packets))
            del packets[cut:]
        return packets

    # -- the stream ---------------------------------------------------------------
    def packets(
        self,
        duration: float = 1.0,
        gbps: float = 1.0,
        start_ts: float = 0.0,
    ) -> List[Mbuf]:
        """Generate ~``gbps`` of traffic for ``duration`` virtual seconds.

        Connection arrivals are Poisson at a rate derived from the
        profile's mean bytes per connection; all flows' packets are
        merged into one timestamp-sorted stream.
        """
        target_bytes = gbps * 1e9 / 8 * duration
        mean_conn_bytes = self.profile.estimate_mean_conn_bytes()
        n_conns = max(1, int(target_bytes / mean_conn_bytes))
        arrival_times = sorted(
            start_ts + self.rng.random() * duration for _ in range(n_conns)
        )
        flows = [self._one_connection(ts) for ts in arrival_times]
        merged = list(heapq.merge(
            *flows, key=lambda mbuf: mbuf.timestamp))
        return merged

    def connections(self, n_conns: int,
                    duration: float = 1.0,
                    start_ts: float = 0.0) -> List[Mbuf]:
        """Generate exactly ``n_conns`` connections over ``duration``."""
        arrival_times = sorted(
            start_ts + self.rng.random() * duration
            for _ in range(n_conns)
        )
        flows = [self._one_connection(ts) for ts in arrival_times]
        return list(heapq.merge(*flows, key=lambda mbuf: mbuf.timestamp))

    def packed_batches(
        self,
        duration: float = 1.0,
        gbps: float = 1.0,
        start_ts: float = 0.0,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> Iterator["PackedBatch"]:
        """Like :meth:`packets`, emitted as flat-buffer batches.

        Yields :class:`~repro.packet.batch.PackedBatch` chunks that
        ``Runtime.run`` consumes directly; packet content, order, and
        timestamps are identical to the per-mbuf stream (float64
        timestamps round-trip exactly).
        """
        yield from pack_stream(
            self.packets(duration, gbps, start_ts), batch_size)
