"""Stratosphere-like "normal user" traces (Appendix B's workloads).

The paper's filter-compilation microbenchmark replays four Stratosphere
CTU-Normal captures (7, 12, 20, 30) — desktop machines doing ordinary
browsing. We cannot ship those captures, so this module synthesizes
single-host traces with the same flavor: bursts of DNS lookups,
TLS-dominated browsing with a long domain tail, some plain HTTP, and
periodic keepalives. Each named trace uses a fixed seed and slightly
different composition so the four Appendix B bars differ, as the
originals do.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, List

from repro.packet.mbuf import Mbuf
from repro.traffic.distributions import choose_domain
from repro.traffic.flows import FlowSpec, dns_flow, http_flow, tls_flow

#: Named trace profiles: (seed, flows, http_share, mean_response_kb).
_PROFILES: Dict[str, tuple] = {
    "CTU-Normal-7": (7, 260, 0.25, 40),
    "CTU-Normal-12": (12, 420, 0.15, 90),
    "CTU-Normal-20": (20, 610, 0.08, 140),
    "CTU-Normal-30": (30, 540, 0.20, 60),
}


def trace_names() -> List[str]:
    return list(_PROFILES)


def stratosphere_trace(name: str, duration: float = 60.0) -> List[Mbuf]:
    """Synthesize one of the named normal-user traces."""
    try:
        seed, n_flows, http_share, mean_kb = _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown trace {name!r}; known: {trace_names()}") from None
    rng = random.Random(seed)
    host_ip = f"192.168.1.{10 + seed % 100}"
    flows: List[List[Mbuf]] = []
    port = 30000
    for _ in range(n_flows):
        start = rng.random() * duration
        port = 30000 + (port - 29999) % 30000
        domain = choose_domain(rng)
        roll = rng.random()
        if roll < 0.22:
            flows.append(dns_flow(
                FlowSpec(host_ip, "192.168.1.1", port, 53),
                name=domain, txn_id=rng.randrange(1 << 16),
                qtype=rng.choice(("A", "AAAA")), start_ts=start,
            ))
        elif roll < 0.22 + http_share:
            flows.append(http_flow(
                FlowSpec(host_ip, _server_ip(rng), port, 80),
                host=domain, uri=f"/{rng.randrange(1 << 16):x}",
                user_agent="Mozilla/5.0 (X11; Linux x86_64) Firefox/91.0",
                response_bytes=int(rng.expovariate(1 / (mean_kb * 256))),
                start_ts=start,
            ))
        else:
            flows.append(tls_flow(
                FlowSpec(host_ip, _server_ip(rng), port, 443),
                domain, start_ts=start,
                client_random=rng.randbytes(32),
                server_random=rng.randbytes(32),
                cipher_suite=rng.choice((0x1301, 0xC02F, 0xC030, 0x009C)),
                selected_version=rng.choice((0x0304, None)),
                appdata_bytes=int(rng.expovariate(1 / (mean_kb * 1024))),
                rng=rng,
            ))
    return list(heapq.merge(*flows, key=lambda m: m.timestamp))


def _server_ip(rng: random.Random) -> str:
    # Mix of CDN-looking space plus the odd Netflix prefix so the
    # 32-predicate Appendix B filter has something to match.
    if rng.random() < 0.06:
        return f"23.246.{rng.randrange(64)}.{rng.randrange(1, 255)}"
    return (f"{rng.choice((13, 31, 52, 104, 142, 151, 172))}."
            f"{rng.randrange(256)}.{rng.randrange(256)}."
            f"{rng.randrange(1, 255)}")
