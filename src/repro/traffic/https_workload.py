"""Closed-loop HTTPS workload (the Figure 6 testbed substitute).

The paper drives the IDS comparison with wrk2 generating 128 parallel
closed-loop 256 KB HTTPS requests against Nginx at swept request
rates. This generator reproduces that offered-load structure: a fixed
pool of client connections issuing back-to-back HTTPS requests (real
TLS handshake + 256 KB of application data each) so that the aggregate
request rate matches the sweep point.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import List

from repro.packet.mbuf import Mbuf
from repro.traffic.flows import FlowSpec, tls_flow


@dataclass
class HttpsWorkloadGenerator:
    """wrk2/Nginx-shaped closed-loop HTTPS traffic."""

    seed: int = 0
    parallel_clients: int = 128
    response_bytes: int = 256 * 1024
    server_ip: str = "192.168.100.10"
    sni: str = "bench.nginx.test"
    rtt: float = 0.0005  # LAN testbed

    def packets(self, requests_per_second: float,
                duration: float = 1.0) -> List[Mbuf]:
        """Generate ``requests_per_second`` of 256 KB HTTPS requests.

        Each request is one TLS connection (handshake + request + 256 KB
        response + teardown), spread across the client pool.
        """
        rng = random.Random(self.seed)
        total_requests = max(1, int(requests_per_second * duration))
        flows: List[List[Mbuf]] = []
        for i in range(total_requests):
            start = (i / requests_per_second) if requests_per_second else 0.0
            client = i % self.parallel_clients
            spec = FlowSpec(
                client_ip=f"192.168.{1 + client // 250}.{1 + client % 250}",
                server_ip=self.server_ip,
                client_port=20000 + (i % 40000),
                server_port=443,
            )
            flows.append(tls_flow(
                spec, self.sni, start_ts=start,
                client_random=rng.randbytes(32),
                server_random=rng.randbytes(32),
                appdata_bytes=self.response_bytes,
                appdata_up_bytes=300,
                rtt=self.rtt, rng=rng,
            ))
        return list(heapq.merge(*flows, key=lambda m: m.timestamp))

    def bytes_per_request(self) -> int:
        """Wire bytes of one request's flow (for rate conversions)."""
        sample = tls_flow(
            FlowSpec("10.0.0.1", self.server_ip, 30000, 443),
            self.sni, appdata_bytes=self.response_bytes,
            appdata_up_bytes=300, rtt=self.rtt,
        )
        return sum(len(m) for m in sample)
