"""Byte-accurate flow synthesis.

:class:`TcpFlow` builds a TCP conversation packet by packet — real
handshakes, sequence/ack arithmetic, MSS segmentation, FIN/RST
teardown — and returns timestamped :class:`~repro.packet.mbuf.Mbuf`
frames. Higher-level helpers wrap it with real application payloads
(TLS, HTTP, SSH, DNS) built by the protocol modules' wire-format
builders.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.packet.builder import (
    build_icmp_echo,
    build_tcp_packet,
    build_udp_packet,
)
from repro.packet.mbuf import Mbuf
from repro.packet.tcp import TcpFlags
from repro.protocols.dns.build import build_dns_query, build_dns_response
from repro.protocols.quic.build import (
    build_quic_initial,
    build_quic_short,
)
from repro.protocols.tls.build import (
    build_application_data,
    build_certificate,
    build_client_hello,
    build_server_hello,
    build_server_hello_done,
)

_SYN = int(TcpFlags.SYN)
_SYNACK = int(TcpFlags.SYN | TcpFlags.ACK)
_ACK = int(TcpFlags.ACK)
_PSH_ACK = int(TcpFlags.PSH | TcpFlags.ACK)
_FIN_ACK = int(TcpFlags.FIN | TcpFlags.ACK)
_RST = int(TcpFlags.RST)

DEFAULT_MSS = 1448


@dataclass
class FlowSpec:
    """Addressing for one flow."""

    client_ip: str
    server_ip: str
    client_port: int
    server_port: int


class TcpFlow:
    """Stateful builder for one TCP conversation.

    Timestamps advance by ``packet_gap`` within a burst and by ``rtt``
    when the speaking direction flips, approximating request/response
    pacing.
    """

    def __init__(
        self,
        spec: FlowSpec,
        start_ts: float = 0.0,
        rtt: float = 0.02,
        packet_gap: float = 20e-6,
        mss: int = DEFAULT_MSS,
        client_isn: int = 1000,
        server_isn: int = 9_000_000,
    ) -> None:
        self.spec = spec
        self.ts = start_ts
        self.rtt = rtt
        self.packet_gap = packet_gap
        self.mss = mss
        self.client_seq = client_isn
        self.server_seq = server_isn
        self.packets: List[Mbuf] = []
        self._last_from_client: Optional[bool] = None

    # -- internals -----------------------------------------------------------
    def _advance_time(self, from_client: bool) -> None:
        if self._last_from_client is None:
            pass
        elif self._last_from_client == from_client:
            self.ts += self.packet_gap
        else:
            self.ts += self.rtt / 2
        self._last_from_client = from_client

    def _emit(self, from_client: bool, payload: bytes, flags: int) -> Mbuf:
        self._advance_time(from_client)
        spec = self.spec
        if from_client:
            src, dst = spec.client_ip, spec.server_ip
            sport, dport = spec.client_port, spec.server_port
            seq, ack = self.client_seq, self.server_seq
        else:
            src, dst = spec.server_ip, spec.client_ip
            sport, dport = spec.server_port, spec.client_port
            seq, ack = self.server_seq, self.client_seq
        frame = build_tcp_packet(
            src, dst, sport, dport, payload=payload,
            seq=seq, ack=ack, flags=flags,
        )
        mbuf = Mbuf(frame, timestamp=self.ts)
        self.packets.append(mbuf)
        span = len(payload)
        if flags & (_SYN | int(TcpFlags.FIN)):
            span += 1
        if from_client:
            self.client_seq = (self.client_seq + span) % (1 << 32)
        else:
            self.server_seq = (self.server_seq + span) % (1 << 32)
        return mbuf

    # -- conversation steps ---------------------------------------------------
    def syn(self) -> "TcpFlow":
        self._emit(True, b"", _SYN)
        return self

    def handshake(self, synack_delay: Optional[float] = None) -> "TcpFlow":
        """Three-way handshake; ``synack_delay`` overrides the RTT-based
        SYN→SYN-ACK latency (Table 2 models its P99 at 1 s)."""
        self._emit(True, b"", _SYN)
        if synack_delay is not None:
            self.ts += max(synack_delay - self.rtt / 2, 0.0)
        self._emit(False, b"", _SYNACK)
        self._emit(True, b"", _ACK)
        return self

    def send(self, from_client: bool, data: bytes,
             ack_every: int = 2) -> "TcpFlow":
        """Send ``data``, segmented at the MSS.

        The receiver emits a delayed ACK every ``ack_every`` segments
        (0 disables), reproducing the small-packet population real
        transfers carry (Figure 13's low mode).
        """
        if not data:
            self._emit(from_client, b"", _ACK)
            return self
        segments = 0
        for offset in range(0, len(data), self.mss):
            chunk = data[offset:offset + self.mss]
            self._emit(from_client, chunk, _PSH_ACK)
            segments += 1
            if ack_every and segments % ack_every == 0:
                self._emit(not from_client, b"", _ACK)
        return self

    def ack(self, from_client: bool) -> "TcpFlow":
        self._emit(from_client, b"", _ACK)
        return self

    def fin(self) -> "TcpFlow":
        """Graceful bidirectional teardown."""
        self._emit(True, b"", _FIN_ACK)
        self._emit(False, b"", _FIN_ACK)
        self._emit(True, b"", _ACK)
        return self

    def rst(self, from_client: bool = True) -> "TcpFlow":
        self._emit(from_client, b"", _RST)
        return self

    def idle(self, seconds: float) -> "TcpFlow":
        self.ts += seconds
        return self

    def build(self) -> List[Mbuf]:
        return self.packets

    # -- perturbations ----------------------------------------------------------
    def shuffle_segments(self, rng: random.Random,
                         displacement: int = 3) -> "TcpFlow":
        """Introduce out-of-order arrivals by displacing data packets a
        few slots, as reordering on real paths does (Table 2's 6% of
        flows). Timestamps are re-sorted so the trace stays monotonic."""
        packets = self.packets
        if len(packets) < 4:
            return self
        index = rng.randrange(3, len(packets))
        jump = max(1, min(displacement, index - 3))
        packets[index - jump], packets[index] = \
            packets[index], packets[index - jump]
        times = sorted(m.timestamp for m in packets)
        for mbuf, ts in zip(packets, times):
            mbuf.timestamp = ts
        return self

    def drop_segment(self, rng: random.Random) -> "TcpFlow":
        """Lose one data packet (incomplete flow, Table 2's 4.6%)."""
        candidates = [i for i, m in enumerate(self.packets)
                      if len(m) > 60 and i >= 3]
        if candidates:
            del self.packets[rng.choice(candidates)]
        return self


# ---------------------------------------------------------------------------
# application-level flows
# ---------------------------------------------------------------------------

def tls_flow(
    spec: FlowSpec,
    sni: Optional[str],
    start_ts: float = 0.0,
    client_random: Optional[bytes] = None,
    server_random: Optional[bytes] = None,
    cipher_suite: int = 0x1301,
    selected_version: Optional[int] = 0x0304,
    appdata_bytes: int = 8192,
    appdata_up_bytes: int = 512,
    cert_bytes: int = 3000,
    rtt: float = 0.02,
    teardown: str = "fin",
    synack_delay: Optional[float] = None,
    rng: Optional[random.Random] = None,
) -> List[Mbuf]:
    """A full HTTPS-shaped TLS connection with a real handshake."""
    rng = rng or random.Random(0)
    client_random = client_random or rng.randbytes(32)
    server_random = server_random or rng.randbytes(32)
    flow = TcpFlow(spec, start_ts=start_ts, rtt=rtt)
    flow.handshake(synack_delay)
    flow.send(True, build_client_hello(
        sni, client_random,
        supported_versions=[0x0304, 0x0303] if selected_version else None,
    ))
    server_flight = (
        build_server_hello(server_random, cipher_suite=cipher_suite,
                           selected_version=selected_version)
        + build_certificate(b"\x30\x82" + bytes(cert_bytes))
        + build_server_hello_done()
    )
    flow.send(False, server_flight)
    if appdata_up_bytes:
        flow.send(True, build_application_data(bytes(appdata_up_bytes)))
    remaining = appdata_bytes
    while remaining > 0:
        chunk = min(remaining, 16000)
        flow.send(False, build_application_data(bytes(chunk)))
        remaining -= chunk
    if teardown == "fin":
        flow.fin()
    elif teardown == "rst":
        flow.rst()
    return flow.build()


def http_flow(
    spec: FlowSpec,
    host: str = "example.com",
    uri: str = "/",
    method: str = "GET",
    user_agent: str = "Mozilla/5.0",
    status: int = 200,
    response_bytes: int = 4096,
    start_ts: float = 0.0,
    rtt: float = 0.02,
    teardown: str = "fin",
    synack_delay: Optional[float] = None,
) -> List[Mbuf]:
    """A plain HTTP/1.1 transaction over a fresh connection."""
    request = (
        f"{method} {uri} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"User-Agent: {user_agent}\r\n"
        f"Accept: */*\r\n\r\n"
    ).encode()
    body = bytes(response_bytes)
    response = (
        f"HTTP/1.1 {status} OK\r\n"
        f"Content-Type: application/octet-stream\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body
    flow = TcpFlow(spec, start_ts=start_ts, rtt=rtt)
    flow.handshake(synack_delay)
    flow.send(True, request)
    flow.send(False, response)
    if teardown == "fin":
        flow.fin()
    return flow.build()


def ssh_flow(
    spec: FlowSpec,
    client_software: str = "OpenSSH_8.9p1",
    server_software: str = "OpenSSH_8.4",
    start_ts: float = 0.0,
    kex_bytes: int = 2048,
    rtt: float = 0.02,
    synack_delay: Optional[float] = None,
) -> List[Mbuf]:
    """An SSH connection: banner exchange plus opaque key-exchange."""
    flow = TcpFlow(spec, start_ts=start_ts, rtt=rtt)
    flow.handshake(synack_delay)
    flow.send(True, f"SSH-2.0-{client_software}\r\n".encode())
    flow.send(False, f"SSH-2.0-{server_software}\r\n".encode())
    flow.send(True, bytes(kex_bytes // 2))
    flow.send(False, bytes(kex_bytes // 2))
    flow.fin()
    return flow.build()


def dns_flow(
    spec: FlowSpec,
    name: str = "example.com",
    qtype: str = "A",
    answer: str = "93.184.216.34",
    rcode: int = 0,
    txn_id: int = 0x1234,
    start_ts: float = 0.0,
    rtt: float = 0.01,
) -> List[Mbuf]:
    """A UDP DNS lookup: one query, one response."""
    query = build_dns_query(name, qtype=qtype, txn_id=txn_id)
    response = build_dns_response(name, answer, qtype=qtype,
                                  txn_id=txn_id, rcode=rcode)
    spec_frames = [
        Mbuf(build_udp_packet(spec.client_ip, spec.server_ip,
                              spec.client_port, spec.server_port, query),
             timestamp=start_ts),
        Mbuf(build_udp_packet(spec.server_ip, spec.client_ip,
                              spec.server_port, spec.client_port, response),
             timestamp=start_ts + rtt),
    ]
    return spec_frames


def udp_flow(
    spec: FlowSpec,
    payload_sizes: Sequence[int] = (200, 1200, 1200),
    start_ts: float = 0.0,
    gap: float = 0.001,
) -> List[Mbuf]:
    """Generic UDP traffic (QUIC-ish opaque datagrams)."""
    frames = []
    ts = start_ts
    for i, size in enumerate(payload_sizes):
        from_client = i % 2 == 0
        src = spec.client_ip if from_client else spec.server_ip
        dst = spec.server_ip if from_client else spec.client_ip
        sport = spec.client_port if from_client else spec.server_port
        dport = spec.server_port if from_client else spec.client_port
        frames.append(Mbuf(
            build_udp_packet(src, dst, sport, dport, bytes(size)),
            timestamp=ts,
        ))
        ts += gap
    return frames


def quic_flow(
    spec: FlowSpec,
    payload_sizes: Sequence[int] = (1252, 1252, 1000, 1000),
    version: int = 0x00000001,
    dcid: bytes = b"\x11" * 8,
    scid: bytes = b"\x22" * 8,
    start_ts: float = 0.0,
    gap: float = 0.001,
) -> List[Mbuf]:
    """A QUIC connection over UDP: client and server Initials followed
    by short-header 1-RTT packets, with the requested datagram sizes."""
    frames = []
    ts = start_ts
    for i, size in enumerate(payload_sizes):
        from_client = i % 2 == 0
        if i == 0:
            datagram = build_quic_initial(
                dcid, scid, version=version,
                payload_len=max(size - 60, 32))
        elif i == 1:
            datagram = build_quic_initial(
                scid, dcid, version=version,
                payload_len=max(size - 60, 32))
        else:
            datagram = build_quic_short(
                dcid if from_client else scid,
                payload_len=max(size - 20, 16))
        src = spec.client_ip if from_client else spec.server_ip
        dst = spec.server_ip if from_client else spec.client_ip
        sport = spec.client_port if from_client else spec.server_port
        dport = spec.server_port if from_client else spec.client_port
        frames.append(Mbuf(
            build_udp_packet(src, dst, sport, dport, datagram),
            timestamp=ts,
        ))
        ts += gap
    return frames


def ping_flow(
    spec: FlowSpec,
    count: int = 3,
    start_ts: float = 0.0,
    rtt: float = 0.01,
) -> List[Mbuf]:
    """An ICMP echo request/reply exchange."""
    frames = []
    ts = start_ts
    for sequence in range(1, count + 1):
        frames.append(Mbuf(build_icmp_echo(
            spec.client_ip, spec.server_ip, identifier=spec.client_port,
            sequence=sequence), timestamp=ts))
        frames.append(Mbuf(build_icmp_echo(
            spec.server_ip, spec.client_ip, identifier=spec.client_port,
            sequence=sequence, reply=True), timestamp=ts + rtt))
        ts += 1.0
    return frames


def single_syn(spec: FlowSpec, start_ts: float = 0.0) -> List[Mbuf]:
    """An unanswered SYN — the scanner population (65% of campus
    connections, Table 2)."""
    return TcpFlow(spec, start_ts=start_ts).syn().build()


def duplicate_across_ports(packets: Sequence[Mbuf],
                           ports: int = 2) -> List[Mbuf]:
    """Duplicate a traffic stream across NIC ports, interleaved by
    timestamp — the paper's Section 6 stress setup ("packets duplicated
    across the two links such that we receive double the regular
    traffic")."""
    if ports < 1:
        raise ValueError("need at least one port")
    out: List[Mbuf] = []
    for mbuf in packets:
        for port in range(ports):
            out.append(Mbuf(mbuf.data, timestamp=mbuf.timestamp,
                            port=port))
    return out
