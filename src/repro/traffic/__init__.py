"""Synthetic traffic generation.

The paper evaluates on a live campus tap we do not have; this package
synthesizes byte-accurate traffic whose statistics are calibrated to
the paper's Appendix C (Table 2 and Figure 13): packet-size mix,
TCP/UDP shares, the 65% single-SYN population, out-of-order fractions,
and heavy-tailed flow sizes. Application payloads are real wire-format
bytes (TLS handshakes, HTTP messages, SSH banners, DNS messages) so
the full parsing path is exercised.
"""

from repro.traffic.flows import (
    FlowSpec,
    TcpFlow,
    dns_flow,
    duplicate_across_ports,
    http_flow,
    ping_flow,
    quic_flow,
    single_syn,
    ssh_flow,
    tls_flow,
    udp_flow,
)
from repro.traffic.campus import CampusTrafficGenerator, CampusProfile
from repro.traffic.burst import BurstTrafficGenerator, BurstWindow
from repro.traffic.https_workload import HttpsWorkloadGenerator
from repro.traffic.strato import stratosphere_trace
from repro.traffic.pcap import read_pcap, write_pcap

__all__ = [
    "TcpFlow",
    "FlowSpec",
    "tls_flow",
    "http_flow",
    "ssh_flow",
    "dns_flow",
    "udp_flow",
    "quic_flow",
    "ping_flow",
    "single_syn",
    "duplicate_across_ports",
    "CampusTrafficGenerator",
    "CampusProfile",
    "BurstTrafficGenerator",
    "BurstWindow",
    "HttpsWorkloadGenerator",
    "stratosphere_trace",
    "read_pcap",
    "write_pcap",
]
