"""Stream reassembly (Section 5.2, "Light-Weight Stream Reassembly").

Two implementations with one interface:

* :class:`~repro.stream.reassembly.LazyReassembler` — Retina's design:
  packets are only *reordered*, never copied into stream buffers.
  In-sequence segments pass straight through; out-of-order segments are
  held by reference in a bounded ring (default 500 packets) and flushed
  when the hole fills.
* :class:`~repro.stream.buffered.BufferedReassembler` — the traditional
  copy-into-receive-buffer design used as the ablation baseline.
"""

from repro.stream.pdu import L4Pdu, StreamSegment
from repro.stream.reassembly import (
    DEFAULT_OOO_CAPACITY,
    FlowDirectionState,
    LazyReassembler,
)
from repro.stream.buffered import BufferedReassembler

__all__ = [
    "L4Pdu",
    "StreamSegment",
    "LazyReassembler",
    "BufferedReassembler",
    "FlowDirectionState",
    "DEFAULT_OOO_CAPACITY",
]
