"""L4 protocol data units and in-order stream segments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.conntrack.five_tuple import FiveTuple
from repro.packet.mbuf import Mbuf
from repro.packet.stack import PacketStack
from repro.packet.tcp import TcpFlags


@dataclass
class L4Pdu:
    """One transport segment as handed to the reassembler.

    ``payload`` references the mbuf's bytes (no copy); ``from_orig``
    orients the segment relative to the connection originator.
    """

    mbuf: Mbuf
    payload: bytes
    seq: int
    flags: int
    from_orig: bool
    timestamp: float

    @classmethod
    def from_stack(
        cls,
        stack: PacketStack,
        five_tuple: FiveTuple,
        conn_tuple: FiveTuple,
        payload: Optional[bytes] = None,
    ) -> "L4Pdu":
        """Build a PDU from a parsed packet.

        UDP datagrams get a synthetic always-in-order sequence of 0 and
        no flags — they bypass reordering by construction. Callers that
        already computed ``stack.l4_payload()`` pass it in to avoid
        re-slicing.
        """
        if payload is None:
            payload = stack.l4_payload()
        tcp = stack.tcp
        if tcp is not None:
            seq = tcp.seq_no()
            flags = tcp.flags_raw()
        else:
            seq, flags = 0, 0
        return cls(
            mbuf=stack.mbuf,
            payload=payload,
            seq=seq,
            flags=flags,
            from_orig=conn_tuple.same_direction(five_tuple),
            timestamp=stack.mbuf.timestamp,
        )

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & TcpFlags.SYN)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & TcpFlags.FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & TcpFlags.RST)

    @property
    def seq_span(self) -> int:
        """Sequence numbers this segment consumes."""
        return len(self.payload) + (1 if self.is_syn else 0) + \
            (1 if self.is_fin else 0)


@dataclass
class StreamSegment:
    """An in-order chunk of application bytes leaving the reassembler."""

    payload: bytes
    from_orig: bool
    timestamp: float
    #: True if this segment had arrived out of order and was held.
    was_held: bool = False
