"""Traditional copy-based stream reassembly (ablation baseline).

This is the design Section 5.2 argues against: every payload is copied
into a per-direction receive buffer keyed by stream offset, and
contiguous prefixes are handed to the application as they complete.
Memory cost is the buffered byte count (copies), not held references.
Used by the lazy-vs-eager ablation benchmark and the IDS baselines.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.stream.pdu import L4Pdu, StreamSegment
from repro.stream.reassembly import seq_diff

_SEQ_MOD = 1 << 32


class _BufferedDirection:
    """Receive buffer for one direction."""

    __slots__ = ("base", "segments", "buffered_bytes", "ooo_events",
                 "dup_segments", "copied_bytes", "max_buffer",
                 "truncated_segments", "truncated_bytes",
                 "pending_truncations")

    def __init__(self, max_buffer: int) -> None:
        self.base: Optional[int] = None  # seq of next byte to deliver
        #: Out-of-order byte ranges keyed by sequence number (copies).
        self.segments: Dict[int, bytes] = {}
        self.buffered_bytes = 0
        self.ooo_events = 0
        self.dup_segments = 0
        #: Total bytes memcpy'd — the cost lazy reassembly avoids.
        self.copied_bytes = 0
        self.max_buffer = max_buffer
        #: Segments dropped because buffering them would overflow
        #: ``max_buffer`` (typically a never-filled hole forcing
        #: unbounded out-of-order growth). Each drop truncates the
        #: reconstructed stream; the pipeline drains
        #: ``pending_truncations`` into telemetry and the loss ledger
        #: so the loss is explicit, not just a memory-accounting blip.
        self.truncated_segments = 0
        self.truncated_bytes = 0
        self.pending_truncations: List[int] = []

    def push(self, pdu: L4Pdu) -> List[StreamSegment]:
        if self.base is None:
            self.base = (pdu.seq + (1 if pdu.is_syn else 0)) % _SEQ_MOD
        seq = (pdu.seq + (1 if pdu.is_syn else 0)) % _SEQ_MOD
        payload = pdu.payload
        if payload:
            diff = seq_diff(seq, self.base)
            if diff < 0:
                if diff + len(payload) <= 0:
                    self.dup_segments += 1
                    payload = b""
                else:
                    payload = payload[-(diff + len(payload)):]
                    seq = self.base
            if payload and self.buffered_bytes + len(payload) \
                    <= self.max_buffer:
                if seq_diff(seq, self.base) > 0:
                    self.ooo_events += 1
                # The copy: this is the work the lazy design skips.
                self.segments[seq] = bytes(payload)
                self.copied_bytes += len(payload)
                self.buffered_bytes += len(payload)
            elif payload:
                # Buffer overflow: the segment is dropped and the
                # stream truncated at the hole. Record an explicit
                # truncation event for the pipeline to drain.
                self.truncated_segments += 1
                self.truncated_bytes += len(payload)
                self.pending_truncations.append(len(payload))
        if pdu.is_fin:
            pass  # FIN consumes a seqno but carries no data to copy
        return self._drain(pdu)

    def _drain(self, pdu: L4Pdu) -> List[StreamSegment]:
        out: List[StreamSegment] = []
        while True:
            chunk = self.segments.pop(self.base, None)
            if chunk is None:
                # Tolerate overlap-trimmed segments starting below base.
                stale = [
                    s for s in self.segments if seq_diff(s, self.base) < 0
                ]
                for s in stale:
                    data = self.segments.pop(s)
                    self.buffered_bytes -= len(data)
                    keep = seq_diff(s, self.base) + len(data)
                    if keep > 0:
                        self.segments[self.base] = data[-keep:]
                        self.buffered_bytes += keep
                if not stale:
                    break
                continue
            self.buffered_bytes -= len(chunk)
            self.base = (self.base + len(chunk)) % _SEQ_MOD
            out.append(StreamSegment(chunk, pdu.from_orig, pdu.timestamp))
        return out

    @property
    def memory_bytes(self) -> int:
        return self.buffered_bytes


class BufferedReassembler:
    """Two-direction traditional reassembler for one connection."""

    def __init__(self, max_buffer: int = 4 * 1024 * 1024) -> None:
        self.orig = _BufferedDirection(max_buffer)
        self.resp = _BufferedDirection(max_buffer)

    def push(self, pdu: L4Pdu) -> List[StreamSegment]:
        state = self.orig if pdu.from_orig else self.resp
        return state.push(pdu)

    @property
    def ooo_events(self) -> int:
        return self.orig.ooo_events + self.resp.ooo_events

    @property
    def truncated_segments(self) -> int:
        return self.orig.truncated_segments + self.resp.truncated_segments

    @property
    def truncated_bytes(self) -> int:
        return self.orig.truncated_bytes + self.resp.truncated_bytes

    def drain_truncations(self) -> List[int]:
        """Pop the dropped-payload byte counts recorded since the last
        drain (orig direction first — a deterministic order)."""
        if not self.orig.pending_truncations and \
                not self.resp.pending_truncations:
            return []
        events = self.orig.pending_truncations + \
            self.resp.pending_truncations
        self.orig.pending_truncations = []
        self.resp.pending_truncations = []
        return events

    @property
    def copied_bytes(self) -> int:
        return self.orig.copied_bytes + self.resp.copied_bytes

    @property
    def memory_bytes(self) -> int:
        return self.orig.memory_bytes + self.resp.memory_bytes

    @property
    def has_hole(self) -> bool:
        return bool(self.orig.segments) or bool(self.resp.segments)
