"""Retina's lazy pass-through stream reassembler.

Traditional reassembly copies every payload into a per-flow receive
buffer. The paper observes that 94% of flows arrive fully in order and
the median hole fills after a single packet, so Retina instead only
*reorders*: the next expected sequence number is tracked per direction,
in-sequence segments are forwarded immediately, and out-of-order
segments are held *by reference* in a bounded ring (default 500
packets) flushed when the expected segment arrives. Most packets
simply pass through.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.stream.pdu import L4Pdu, StreamSegment

#: Paper default: maximum out-of-order packets held per direction.
DEFAULT_OOO_CAPACITY = 500

_SEQ_MOD = 1 << 32
_SEQ_HALF = 1 << 31


def seq_diff(a: int, b: int) -> int:
    """Signed circular difference ``a - b`` over 32-bit sequence space."""
    diff = (a - b) % _SEQ_MOD
    if diff >= _SEQ_HALF:
        diff -= _SEQ_MOD
    return diff


#: In-order segments on one direction before an adaptive window shrinks.
ADAPTIVE_SHRINK_STREAK = 512


class FlowDirectionState:
    """Reorder state for one direction of one flow."""

    __slots__ = ("expected", "held", "held_bytes", "ooo_events",
                 "dup_segments", "overlap_segments", "stale_retransmits",
                 "overflow_drops", "capacity", "adaptive",
                 "min_capacity", "max_capacity", "inorder_streak",
                 "window_grows", "window_shrinks", "stats")

    def __init__(self, capacity: int, adaptive: bool = False,
                 min_capacity: int = 1,
                 max_capacity: Optional[int] = None,
                 stats=None) -> None:
        self.expected: Optional[int] = None
        #: Held out-of-order PDUs keyed by sequence number.
        self.held: Dict[int, L4Pdu] = {}
        self.held_bytes = 0
        self.ooo_events = 0
        #: Fresh full retransmits of already-delivered data, discarded.
        self.dup_segments = 0
        #: Partial overlaps with delivered data (only the new tail was
        #: forwarded) — previously discarded bytes went uncounted.
        self.overlap_segments = 0
        #: Held segments wholly superseded before their flush slot (the
        #: "retransmit raced the hole fill" path) — previously silent.
        self.stale_retransmits = 0
        self.overflow_drops = 0
        self.capacity = capacity
        #: Adaptive out-of-order window: grow (×2 up to max_capacity)
        #: instead of dropping on overflow, shrink (÷2 down to
        #: min_capacity) after a long fully-in-order streak. Driven by
        #: packet events only, so it is deterministic across backends.
        self.adaptive = adaptive
        self.min_capacity = min_capacity
        self.max_capacity = capacity if max_capacity is None \
            else max_capacity
        self.inorder_streak = 0
        self.window_grows = 0
        self.window_shrinks = 0
        #: Optional per-core :class:`~repro.core.stats.CoreStats` sink;
        #: the rare-path counters above are mirrored onto it so the
        #: filter-funnel telemetry can distinguish loss from
        #: dup-discard. None for standalone use.
        self.stats = stats

    @property
    def has_hole(self) -> bool:
        return bool(self.held)

    def push(self, pdu: L4Pdu) -> List[StreamSegment]:
        """Insert one PDU; return the in-order segments now released."""
        if self.expected is None:
            # First segment seen in this direction anchors the stream.
            self.expected = (pdu.seq + pdu.seq_span) % _SEQ_MOD
            return self._emit(pdu, held=False)
        diff = seq_diff(pdu.seq, self.expected)
        if diff == 0:
            self.expected = (pdu.seq + pdu.seq_span) % _SEQ_MOD
            out = self._emit(pdu, held=False)
            out.extend(self._flush())
            if self.adaptive and not self.held:
                self.inorder_streak += 1
                if self.inorder_streak >= ADAPTIVE_SHRINK_STREAK and \
                        self.capacity > self.min_capacity:
                    self.capacity = max(self.capacity // 2,
                                        self.min_capacity)
                    self.window_shrinks += 1
                    if self.stats is not None:
                        self.stats.reasm_window_shrinks += 1
                    self.inorder_streak = 0
            return out
        if diff < 0:
            return self._handle_old(pdu, diff)
        # Future segment: hole. Hold by reference if the ring has room.
        self.ooo_events += 1
        self.inorder_streak = 0
        if len(self.held) >= self.capacity:
            if self.adaptive and self.capacity < self.max_capacity:
                # Observed reorder depth exceeds the window: widen it
                # instead of truncating the stream.
                self.capacity = min(self.capacity * 2,
                                    self.max_capacity)
                self.window_grows += 1
                if self.stats is not None:
                    self.stats.reasm_window_grows += 1
            else:
                self.overflow_drops += 1
                if self.stats is not None:
                    self.stats.reasm_overflow_drops += 1
                return []
        if pdu.seq not in self.held:
            self.held[pdu.seq] = pdu
            self.held_bytes += len(pdu.mbuf)
        return []

    def _handle_old(self, pdu: L4Pdu, diff: int) -> List[StreamSegment]:
        """Retransmission or partial overlap with delivered data."""
        tail_len = len(pdu.payload) + diff  # bytes beyond `expected`
        if tail_len <= 0:
            self.dup_segments += 1
            if self.stats is not None:
                self.stats.reasm_dup_segments += 1
            return []
        self.overlap_segments += 1
        if self.stats is not None:
            self.stats.reasm_overlap_segments += 1
        new_payload = pdu.payload[-tail_len:]
        self.expected = (self.expected + tail_len +
                         (1 if pdu.is_fin else 0)) % _SEQ_MOD
        out = [StreamSegment(new_payload, pdu.from_orig, pdu.timestamp)]
        out.extend(self._flush())
        return out

    def _flush(self) -> List[StreamSegment]:
        """Release held segments made contiguous by the last arrival."""
        out: List[StreamSegment] = []
        while self.held:
            pdu = self.held.pop(self.expected, None)
            if pdu is not None:
                self.held_bytes -= len(pdu.mbuf)
                self.expected = (pdu.seq + pdu.seq_span) % _SEQ_MOD
                out.extend(self._emit(pdu, held=True))
                continue
            # No exact match: check for a held segment overlapping the
            # expected point (rare: retransmit raced the hole fill).
            overlap = None
            stale = False
            for seq, held_pdu in self.held.items():
                diff = seq_diff(seq, self.expected)
                if diff < 0 and diff + len(held_pdu.payload) > 0:
                    overlap = seq
                    break
                if diff < 0 and diff + held_pdu.seq_span <= 0:
                    overlap = seq  # fully stale, discard below
                    stale = True
                    break
            if overlap is None:
                break
            pdu = self.held.pop(overlap)
            self.held_bytes -= len(pdu.mbuf)
            if stale:
                # A held copy wholly superseded while it waited: the
                # hole it guarded was filled by a retransmit. Count it
                # distinctly — these discards used to vanish silently.
                self.stale_retransmits += 1
                if self.stats is not None:
                    self.stats.reasm_stale_retransmits += 1
                continue
            out.extend(self._handle_old(pdu, seq_diff(pdu.seq,
                                                      self.expected)))
        return out

    @staticmethod
    def _emit(pdu: L4Pdu, held: bool) -> List[StreamSegment]:
        if not pdu.payload:
            return []
        return [StreamSegment(pdu.payload, pdu.from_orig, pdu.timestamp,
                              was_held=held)]

    @property
    def memory_bytes(self) -> int:
        """Held mbuf bytes (segments are stored by reference; the cost
        is the retained packet memory)."""
        return self.held_bytes


class LazyReassembler:
    """Two-direction lazy reassembler for one connection."""

    def __init__(self, capacity: int = DEFAULT_OOO_CAPACITY,
                 adaptive: bool = False, min_capacity: int = 1,
                 max_capacity: Optional[int] = None,
                 stats=None) -> None:
        self.orig = FlowDirectionState(capacity, adaptive, min_capacity,
                                       max_capacity, stats)
        self.resp = FlowDirectionState(capacity, adaptive, min_capacity,
                                       max_capacity, stats)

    def push(self, pdu: L4Pdu) -> List[StreamSegment]:
        state = self.orig if pdu.from_orig else self.resp
        return state.push(pdu)

    @property
    def ooo_events(self) -> int:
        return self.orig.ooo_events + self.resp.ooo_events

    @property
    def dup_segments(self) -> int:
        return self.orig.dup_segments + self.resp.dup_segments

    @property
    def overlap_segments(self) -> int:
        return self.orig.overlap_segments + self.resp.overlap_segments

    @property
    def stale_retransmits(self) -> int:
        return self.orig.stale_retransmits + self.resp.stale_retransmits

    @property
    def overflow_drops(self) -> int:
        return self.orig.overflow_drops + self.resp.overflow_drops

    @property
    def memory_bytes(self) -> int:
        return self.orig.memory_bytes + self.resp.memory_bytes

    @property
    def has_hole(self) -> bool:
        return self.orig.has_hole or self.resp.has_hole
