"""TLS client fingerprinting at scale (a Section 7.1-style study).

Section 7.1 motivates passive measurement by the "long-tail of client
configurations in less popular applications, which are more likely to
contain vulnerabilities". JA3 fingerprints are how operators find that
tail: common fingerprints are mainstream browsers/libraries; rare ones
are the interesting population. :class:`Ja3Counter` is the callback
side of that study.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


class Ja3Counter:
    """Counts JA3 fingerprints across TLS handshake deliveries."""

    def __init__(self) -> None:
        self.counts: Counter = Counter()
        self.sni_examples: Dict[str, Set[str]] = {}
        self.handshakes = 0
        self.no_fingerprint = 0

    def __call__(self, handshake) -> None:
        """Use directly as a ``tls_handshake`` subscription callback."""
        fingerprint = handshake.data.ja3()
        self.handshakes += 1
        if fingerprint is None:
            self.no_fingerprint += 1
            return
        self.counts[fingerprint] += 1
        sni = handshake.sni()
        if sni:
            examples = self.sni_examples.setdefault(fingerprint, set())
            if len(examples) < 5:
                examples.add(sni)

    # -- analysis -------------------------------------------------------------
    @property
    def distinct(self) -> int:
        return len(self.counts)

    def top(self, k: int = 10) -> List[Tuple[str, int]]:
        return self.counts.most_common(k)

    def long_tail(self, max_count: int = 1) -> List[str]:
        """Fingerprints seen at most ``max_count`` times — the rare
        client implementations worth a closer look."""
        return [fp for fp, count in self.counts.items()
                if count <= max_count]

    def summary(self) -> str:
        lines = [
            f"{self.handshakes} handshakes, {self.distinct} distinct "
            f"JA3 fingerprints, {len(self.long_tail())} singletons",
        ]
        for fingerprint, count in self.top(5):
            domains = sorted(self.sni_examples.get(fingerprint, ()))[:3]
            lines.append(
                f"  {fingerprint}  x{count}  "
                f"(e.g. {', '.join(domains) if domains else 'no SNI'})")
        return "\n".join(lines)
