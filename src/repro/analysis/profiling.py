"""Traffic profiling (one of Section 7's listed applications).

Aggregate link-level statistics from connection records: protocol and
service mixes, top server ports, top talkers (privacy-aware: client
addresses are hashed), and byte/packet totals. The callback side of a
"what is my network doing" dashboard.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.datatypes import ConnectionRecord


class TrafficProfiler:
    """Accumulates a profile from ConnectionRecord deliveries."""

    def __init__(self, salt: bytes = b"profile") -> None:
        self._salt = salt
        self.connections = 0
        self.packets = 0
        self.bytes = 0
        self.by_transport: Counter = Counter()
        self.by_service: Counter = Counter()
        self.service_bytes: Counter = Counter()
        self.server_ports: Counter = Counter()
        self.talker_bytes: Counter = Counter()
        self.single_syns = 0
        self.incomplete = 0

    def __call__(self, record: ConnectionRecord) -> None:
        self.connections += 1
        self.packets += record.total_packets
        self.bytes += record.total_bytes
        transport = {6: "tcp", 17: "udp"}.get(
            record.five_tuple.protocol, str(record.five_tuple.protocol))
        self.by_transport[transport] += 1
        service = record.service or "unidentified"
        self.by_service[service] += 1
        self.service_bytes[service] += record.total_bytes
        self.server_ports[record.five_tuple.dst_port] += 1
        self.talker_bytes[self._hash_addr(record.five_tuple.src_ip)] += \
            record.total_bytes
        if record.is_single_syn:
            self.single_syns += 1
        elif not record.terminated_gracefully:
            self.incomplete += 1

    def _hash_addr(self, addr: bytes) -> str:
        """Privacy-preserving talker key (the paper's ethics posture:
        never surface individual addresses)."""
        return hashlib.blake2s(addr, key=self._salt[:32],
                               digest_size=6).hexdigest()

    # -- report ---------------------------------------------------------------
    def top_services(self, k: int = 5) -> List[Tuple[str, int]]:
        return self.service_bytes.most_common(k)

    def top_ports(self, k: int = 5) -> List[Tuple[int, int]]:
        return self.server_ports.most_common(k)

    def top_talkers(self, k: int = 5) -> List[Tuple[str, int]]:
        return self.talker_bytes.most_common(k)

    def summary(self) -> str:
        lines = [
            f"{self.connections} connections, {self.packets} packets, "
            f"{self.bytes / 1e6:.1f} MB",
            f"transports: " + ", ".join(
                f"{name}={count}" for name, count in
                self.by_transport.most_common()),
            f"single-SYN scanners: {self.single_syns}, "
            f"incomplete flows: {self.incomplete}",
            "top services by bytes:",
        ]
        for service, volume in self.top_services():
            lines.append(f"  {service:14s} {volume / 1e6:9.2f} MB "
                         f"({self.by_service[service]} conns)")
        lines.append("top server ports: " + ", ".join(
            f"{port}({count})" for port, count in self.top_ports()))
        lines.append("top talkers (hashed): " + ", ".join(
            f"{talker}={volume / 1e6:.1f}MB"
            for talker, volume in self.top_talkers(3)))
        return "\n".join(lines)
