"""Video traffic feature extraction (the Section 7.3 application).

The paper's callback aggregates network flows into *video sessions*
and logs the features Bronzino et al. use to infer streaming quality:
number of parallel flows, total bytes up/down, average out-of-order
packets up/down, and total download throughput. A session is all
flows from one client to one service that overlap within an idle gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.datatypes import ConnectionRecord


@dataclass
class VideoSessionFeatures:
    """Features of one video session (Bronzino et al.'s inputs)."""

    client_ip: bytes
    service: str
    start_ts: float
    end_ts: float
    flows: int = 0
    bytes_up: int = 0
    bytes_down: int = 0
    ooo_up: int = 0
    ooo_down: int = 0

    @property
    def duration(self) -> float:
        return max(self.end_ts - self.start_ts, 1e-9)

    @property
    def download_throughput_bps(self) -> float:
        return self.bytes_down * 8 / self.duration

    @property
    def avg_ooo_up(self) -> float:
        return self.ooo_up / self.flows if self.flows else 0.0

    @property
    def avg_ooo_down(self) -> float:
        return self.ooo_down / self.flows if self.flows else 0.0


class VideoSessionAggregator:
    """Groups connection records into per-client video sessions.

    Use an instance as the subscription callback for a
    ``ConnectionRecord`` subscription filtered to the video service's
    SNI (Section 7.3's filters for nflxvideo / googlevideo).
    """

    def __init__(self, service: str, idle_gap: float = 30.0) -> None:
        self.service = service
        self.idle_gap = idle_gap
        self._open: Dict[bytes, VideoSessionFeatures] = {}
        self.sessions: List[VideoSessionFeatures] = []

    def __call__(self, record: ConnectionRecord) -> None:
        client = record.five_tuple.src_ip
        session = self._open.get(client)
        if session is not None and \
                record.first_ts - session.end_ts > self.idle_gap:
            self.sessions.append(session)
            session = None
        if session is None:
            session = VideoSessionFeatures(
                client_ip=client, service=self.service,
                start_ts=record.first_ts, end_ts=record.last_ts,
            )
            self._open[client] = session
        session.flows += 1
        session.bytes_up += record.bytes_orig
        session.bytes_down += record.bytes_resp
        session.ooo_up += record.ooo_orig
        session.ooo_down += record.ooo_resp
        session.end_ts = max(session.end_ts, record.last_ts)

    def finish(self) -> List[VideoSessionFeatures]:
        """Close out open sessions and return all sessions."""
        self.sessions.extend(self._open.values())
        self._open.clear()
        return self.sessions

    # -- distribution helpers (Figure 9) ------------------------------------
    def byte_cdf(self, direction: str = "down") -> List[Tuple[float, float]]:
        """CDF points (megabytes, cumulative fraction) per session."""
        sessions = self.sessions or list(self._open.values())
        values = sorted(
            (s.bytes_down if direction == "down" else s.bytes_up) / 1e6
            for s in sessions
        )
        n = len(values)
        return [(v, (i + 1) / n) for i, v in enumerate(values)]
