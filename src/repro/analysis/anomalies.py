"""TLS client-random anomaly detection (the Section 7.1 application).

Cryptographic nonces should essentially never repeat. The paper counts
distinct TLS client randoms across 13.4M handshakes in 10 minutes and
finds heavy repeaters (a single value 8,340 times, ``417a7572...``
with trailing zeros, and the all-zero random) — symptoms of broken
entropy or non-compliant implementations. This module is the callback
side: an accumulator over :class:`~repro.core.datatypes.TlsHandshake`
deliveries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

ALL_ZERO_RANDOM = bytes(32)


@dataclass
class ClientRandomCounter:
    """Counts client randoms and summarizes repeats."""

    counts: Counter = field(default_factory=Counter)
    handshakes: int = 0

    def __call__(self, handshake) -> None:
        """Use directly as the subscription callback."""
        random_value = handshake.client_random()
        if random_value is None:
            return
        self.handshakes += 1
        self.counts[bytes(random_value)] += 1

    # -- reporting ------------------------------------------------------------
    def top(self, k: int = 10) -> List[Tuple[bytes, int]]:
        return self.counts.most_common(k)

    @property
    def distinct(self) -> int:
        return len(self.counts)

    @property
    def repeated(self) -> int:
        """Handshakes whose random had been seen before."""
        return self.handshakes - self.distinct

    @property
    def all_zero_count(self) -> int:
        return self.counts.get(ALL_ZERO_RANDOM, 0)

    def anomalies(self, threshold: int = 2) -> List[Tuple[bytes, int]]:
        """Randoms repeated at least ``threshold`` times."""
        return [(value, count) for value, count in
                self.counts.most_common() if count >= threshold]

    def summary(self) -> str:
        lines = [
            f"{self.handshakes} handshakes, {self.distinct} distinct "
            f"client randoms, {self.repeated} repeats",
        ]
        for value, count in self.top(3):
            if count < 2:
                break
            lines.append(f"  {value[:8].hex()}...{value[-4:].hex()}: "
                         f"{count} occurrences")
        return "\n".join(lines)
