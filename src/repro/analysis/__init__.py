"""Analysis applications built on the public API (Section 7's case
studies): IP anonymization, TLS nonce anomaly detection, and video
traffic feature extraction."""

from repro.analysis.ipcrypt import (
    IpCrypt,
    PrefixPreservingEncryptor,
    anonymize_packet,
)
from repro.analysis.anomalies import ClientRandomCounter
from repro.analysis.fingerprints import Ja3Counter
from repro.analysis.logwriter import (
    BufferedRecordWriter,
    DirectRecordWriter,
    render_record,
)
from repro.analysis.profiling import TrafficProfiler
from repro.analysis.video import VideoSessionAggregator, VideoSessionFeatures

__all__ = [
    "IpCrypt",
    "PrefixPreservingEncryptor",
    "anonymize_packet",
    "ClientRandomCounter",
    "Ja3Counter",
    "DirectRecordWriter",
    "BufferedRecordWriter",
    "render_record",
    "TrafficProfiler",
    "VideoSessionAggregator",
    "VideoSessionFeatures",
]
