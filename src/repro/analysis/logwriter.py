"""Record logging with buffered writes (Section 5.3's tuning advice).

Section 6.1 measures "logging connection records to a shared file
takes around 12K cycles" and Section 5.3 advises a user whose callback
cannot keep up to "consider using a buffered writer". This module
provides both callback styles so the trade-off is concrete:

* :class:`DirectRecordWriter` — one formatted write + flush per record
  (the 12K-cycle behaviour);
* :class:`BufferedRecordWriter` — records accumulate in memory and hit
  the file in batches, amortizing the per-record cost.

Both render NDJSON, degrade bytes to hex, and can be used directly as
subscription callbacks.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any, IO, Optional, Union

#: Calibrated per-record costs (cycles), for use as ``callback_cycles``.
DIRECT_WRITE_CYCLES = 12_000.0
BUFFERED_WRITE_CYCLES = 1_500.0


def _jsonable(value: Any) -> Any:
    if isinstance(value, bytes):
        return value.hex()
    if hasattr(value, "five_tuple"):
        return str(value)
    return value


def render_record(obj: Any) -> str:
    """Render a subscribable object as one NDJSON line."""
    if hasattr(obj, "five_tuple") and hasattr(obj, "total_packets"):
        payload = {
            "type": "connection",
            "five_tuple": str(obj.five_tuple),
            "first_ts": obj.first_ts,
            "last_ts": obj.last_ts,
            "pkts": obj.total_packets,
            "bytes": obj.total_bytes,
            "service": obj.service,
            "history": obj.history,
        }
    elif hasattr(obj, "sni"):
        payload = {
            "type": "tls",
            "sni": obj.sni(),
            "cipher": obj.cipher(),
            "version": obj.version(),
        }
    elif hasattr(obj, "uri"):
        payload = {
            "type": "http",
            "method": obj.method(),
            "uri": obj.uri(),
            "host": obj.host(),
            "status": obj.status_code(),
        }
    elif hasattr(obj, "query_name"):
        payload = {
            "type": "dns",
            "query": obj.query_name(),
            "rcode": obj.response_code(),
        }
    elif hasattr(obj, "mbuf"):
        payload = {
            "type": "packet",
            "len": len(obj.mbuf),
            "ts": obj.timestamp,
        }
    else:
        payload = {"type": type(obj).__name__}
    return json.dumps({k: _jsonable(v) for k, v in payload.items()},
                      separators=(",", ":"))


class DirectRecordWriter:
    """Unbuffered per-record logging: write + flush every delivery."""

    #: Suggested ``RuntimeConfig.callback_cycles`` for this callback.
    cycles = DIRECT_WRITE_CYCLES

    def __init__(self, sink: Union[str, Path, IO[str]]) -> None:
        if isinstance(sink, (str, Path)):
            self._handle: IO[str] = open(sink, "w")
            self._owns = True
        else:
            self._handle = sink
            self._owns = False
        self.records = 0
        self.flushes = 0

    def __call__(self, obj: Any) -> None:
        self._handle.write(render_record(obj) + "\n")
        self._handle.flush()
        self.records += 1
        self.flushes += 1

    def close(self) -> None:
        if self._owns:
            self._handle.close()


class BufferedLineWriter:
    """Batched line sink: accumulate lines, flush every ``batch_size``
    (or on close).

    The flush-on-close guarantee is absolute: ``close()`` is idempotent,
    runs from ``__exit__``, and — as a last resort — from ``__del__``,
    so a writer that simply goes out of scope cannot silently drop its
    buffered tail. (The context-manager form is still the right way to
    use it; ``__del__`` is the safety net, not the API.)
    """

    def __init__(self, sink: Union[str, Path, IO[str]],
                 batch_size: int = 256) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if isinstance(sink, (str, Path)):
            self._handle: IO[str] = open(sink, "w")
            self._owns = True
        else:
            self._handle = sink
            self._owns = False
        self.batch_size = batch_size
        self._pending: list = []
        self._closed = False
        self.records = 0
        self.flushes = 0

    def write_line(self, line: str) -> None:
        if self._closed:
            raise ValueError("writer is closed")
        self._pending.append(line)
        self.records += 1
        if len(self._pending) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        if not self._pending:
            return
        self._handle.write("\n".join(self._pending) + "\n")
        self._handle.flush()
        self._pending.clear()
        self.flushes += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.flush()
        if self._owns:
            self._handle.close()

    def __enter__(self) -> "BufferedLineWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            # Interpreter shutdown can invalidate the handle; the
            # explicit close/with paths are the reliable ones.
            pass


class BufferedRecordWriter(BufferedLineWriter):
    """Batched logging: flush every ``batch_size`` records (or close)."""

    cycles = BUFFERED_WRITE_CYCLES

    def __call__(self, obj: Any) -> None:
        self.write_line(render_record(obj))

    def __enter__(self) -> "BufferedRecordWriter":
        return self
