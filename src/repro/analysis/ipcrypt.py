"""IP address anonymization (the Section 7.2 application).

Two schemes, matching the paper's use of the Rust ``ipcrypt`` crate:

* :class:`IpCrypt` — format-preserving IPv4 encryption: a 4-byte ARX
  block cipher under a 16-byte key (Aumasson's ipcrypt construction:
  four rounds of key mixing around three ARX permutations). An
  encrypted address is a valid IPv4 address and decrypts exactly.
* :class:`PrefixPreservingEncryptor` — Crypto-PAn-style prefix
  preservation: two addresses sharing an *n*-bit prefix encrypt to
  addresses sharing an *n*-bit prefix, so subnet structure survives
  anonymization (what Section 7.2 means by "preserving subnet
  structures").
"""

from __future__ import annotations

import hashlib
import ipaddress
from typing import Union

from repro.packet.builder import checksum16
from repro.packet.ethernet import Ethernet
from repro.packet.ipv4 import Ipv4
from repro.packet.mbuf import Mbuf

IPv4Like = Union[str, ipaddress.IPv4Address]


def _rotl8(value: int, shift: int) -> int:
    return ((value << shift) | (value >> (8 - shift))) & 0xFF


def _permute_fwd(state: list) -> None:
    b0, b1, b2, b3 = state
    b0 = (b0 + b1) & 0xFF
    b2 = (b2 + b3) & 0xFF
    b1 = _rotl8(b1, 2) ^ b0
    b3 = _rotl8(b3, 5) ^ b2
    b0 = _rotl8(b0, 4)
    b0 = (b0 + b3) & 0xFF
    b2 = (b2 + b1) & 0xFF
    b1 = _rotl8(b1, 3) ^ b2
    b3 = _rotl8(b3, 7) ^ b0
    b2 = _rotl8(b2, 4)
    state[:] = [b0, b1, b2, b3]


def _rotr8(value: int, shift: int) -> int:
    return ((value >> shift) | (value << (8 - shift))) & 0xFF


def _permute_bwd(state: list) -> None:
    b0, b1, b2, b3 = state
    b2 = _rotr8(b2, 4)
    b1 = _rotr8(b1 ^ b2, 3)
    b3 = _rotr8(b3 ^ b0, 7)
    b0 = (b0 - b3) & 0xFF
    b2 = (b2 - b1) & 0xFF
    b0 = _rotr8(b0, 4)
    b1 = _rotr8(b1 ^ b0, 2)
    b3 = _rotr8(b3 ^ b2, 5)
    b0 = (b0 - b1) & 0xFF
    b2 = (b2 - b3) & 0xFF
    state[:] = [b0, b1, b2, b3]


class IpCrypt:
    """Format-preserving IPv4 encryption under a 16-byte key."""

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError("ipcrypt key must be exactly 16 bytes")
        self._subkeys = [key[i:i + 4] for i in range(0, 16, 4)]

    def encrypt(self, addr: IPv4Like) -> ipaddress.IPv4Address:
        state = list(ipaddress.IPv4Address(addr).packed)
        for round_index in range(3):
            self._xor_key(state, round_index)
            _permute_fwd(state)
        self._xor_key(state, 3)
        return ipaddress.IPv4Address(bytes(state))

    def decrypt(self, addr: IPv4Like) -> ipaddress.IPv4Address:
        state = list(ipaddress.IPv4Address(addr).packed)
        self._xor_key(state, 3)
        for round_index in (2, 1, 0):
            _permute_bwd(state)
            self._xor_key(state, round_index)
        return ipaddress.IPv4Address(bytes(state))

    def _xor_key(self, state: list, round_index: int) -> None:
        subkey = self._subkeys[round_index]
        for i in range(4):
            state[i] ^= subkey[i]


class PrefixPreservingEncryptor:
    """Crypto-PAn-style prefix-preserving IPv4 anonymization.

    Bit *i* of the output is bit *i* of the input XOR a pseudorandom
    function of the *i*-bit input prefix, so equal prefixes map to
    equal prefixes (and nothing longer).
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("need at least a 16-byte key")
        self._key = bytes(key)

    def _prf_bit(self, prefix_bits: int, length: int) -> int:
        digest = hashlib.sha256(
            self._key + length.to_bytes(1, "big")
            + prefix_bits.to_bytes(4, "big")
        ).digest()
        return digest[0] & 1

    def encrypt(self, addr: IPv4Like) -> ipaddress.IPv4Address:
        value = int(ipaddress.IPv4Address(addr))
        out = 0
        for i in range(32):
            prefix = value >> (32 - i) if i else 0
            flip = self._prf_bit(prefix, i)
            bit = (value >> (31 - i)) & 1
            out = (out << 1) | (bit ^ flip)
        return ipaddress.IPv4Address(out)


def anonymize_packet(mbuf: Mbuf, encryptor: PrefixPreservingEncryptor
                     ) -> Mbuf:
    """Return a copy of an IPv4 frame with src/dst addresses encrypted
    (and the IPv4 header checksum fixed up) — the Section 7.2 callback
    body."""
    eth = Ethernet.parse(mbuf)
    ip = Ipv4.parse_from(eth)
    data = bytearray(mbuf.data)
    src = encryptor.encrypt(ip.src_addr()).packed
    dst = encryptor.encrypt(ip.dst_addr()).packed
    ip_off = ip.offset
    data[ip_off + 12:ip_off + 16] = src
    data[ip_off + 16:ip_off + 20] = dst
    data[ip_off + 10:ip_off + 12] = b"\x00\x00"
    header = bytes(data[ip_off:ip_off + ip.header_len()])
    csum = checksum16(header)
    data[ip_off + 10:ip_off + 12] = csum.to_bytes(2, "big")
    return Mbuf(bytes(data), timestamp=mbuf.timestamp, port=mbuf.port,
                queue=mbuf.queue)
