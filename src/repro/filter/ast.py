"""Abstract syntax for the filter language (Table 1 of the paper).

A filter is a logical expression over *predicates*. Each predicate is
either unary (``ipv4`` — "the packet/connection is ipv4/tls/...") or
binary (``ipv4.ttl > 64`` — compare a protocol field against a
constant). RHS constants may be integers, strings, IPv4/IPv6 addresses
or CIDR prefixes, or integer ranges (``80..100``).
"""

from __future__ import annotations

import enum
import ipaddress
import re
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.errors import FilterSemanticsError
from repro.filter.fields import (
    DEFAULT_REGISTRY,
    FieldRegistry,
    Layer,
    ValueType,
)


class Op(enum.Enum):
    """Binary predicate operators."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN = "in"
    MATCHES = "matches"


#: Operators valid per value type.
_OPS_FOR_TYPE = {
    ValueType.INT: {Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE, Op.IN},
    ValueType.STRING: {Op.EQ, Op.NE, Op.MATCHES},
    ValueType.ADDR: {Op.EQ, Op.NE, Op.IN},
}

RhsValue = Union[
    int,
    str,
    ipaddress.IPv4Address,
    ipaddress.IPv6Address,
    ipaddress.IPv4Network,
    ipaddress.IPv6Network,
    Tuple[int, int],
]


@dataclass(frozen=True)
class Predicate:
    """An atomic constraint.

    ``field``/``op``/``value`` are ``None`` for unary predicates.
    """

    protocol: str
    field: Optional[str] = None
    op: Optional[Op] = None
    value: Optional[RhsValue] = None

    @property
    def is_unary(self) -> bool:
        return self.field is None

    def __str__(self) -> str:
        if self.is_unary:
            return self.protocol
        value = self.value
        if isinstance(value, str):
            rhs = f"'{value}'"
        elif isinstance(value, tuple):
            rhs = f"{value[0]}..{value[1]}"
        else:
            rhs = str(value)
        op = "~" if self.op is Op.MATCHES else self.op.value
        return f"{self.protocol}.{self.field} {op} {rhs}"

    def validate(self, registry: FieldRegistry = DEFAULT_REGISTRY) -> None:
        """Check protocol/field existence and operator/type agreement."""
        proto = registry.protocol(self.protocol)
        if self.is_unary:
            return
        fdef = registry.field(self.protocol, self.field)
        if self.op not in _OPS_FOR_TYPE[fdef.vtype]:
            raise FilterSemanticsError(
                f"operator '{self.op.value}' not valid for "
                f"{fdef.vtype.value} field {self.protocol}.{self.field}"
            )
        self._validate_value(fdef.vtype, proto.name)

    def _validate_value(self, vtype: ValueType, proto_name: str) -> None:
        value = self.value
        if vtype is ValueType.INT:
            if self.op is Op.IN:
                if not (isinstance(value, tuple) and len(value) == 2):
                    raise FilterSemanticsError(
                        f"{self}: 'in' on an int field needs a lo..hi range"
                    )
            elif not isinstance(value, int):
                raise FilterSemanticsError(f"{self}: expected integer RHS")
        elif vtype is ValueType.STRING:
            if not isinstance(value, str):
                raise FilterSemanticsError(f"{self}: expected string RHS")
            if self.op is Op.MATCHES:
                try:
                    re.compile(value)
                except re.error as exc:
                    raise FilterSemanticsError(
                        f"{self}: bad regex: {exc}"
                    ) from exc
        elif vtype is ValueType.ADDR:
            if self.op is Op.IN:
                if not isinstance(
                    value, (ipaddress.IPv4Network, ipaddress.IPv6Network)
                ):
                    raise FilterSemanticsError(
                        f"{self}: 'in' on an address field needs a CIDR prefix"
                    )
            elif not isinstance(
                value, (ipaddress.IPv4Address, ipaddress.IPv6Address)
            ):
                raise FilterSemanticsError(f"{self}: expected an IP address")
            # An ipv6 literal on an ipv4 field (or vice versa) can never
            # match; reject early rather than silently never matching.
            want = 4 if proto_name == "ipv4" else 6 if proto_name == "ipv6" else None
            if want is not None and value.version != want:
                raise FilterSemanticsError(
                    f"{self}: IPv{value.version} literal on an "
                    f"IPv{want} field"
                )

    def layer(self, registry: FieldRegistry = DEFAULT_REGISTRY) -> Layer:
        """The filter layer this predicate is evaluated at."""
        proto = registry.protocol(self.protocol)
        if self.is_unary:
            return proto.layer
        return proto.field_layer


class Expr:
    """Base class for filter expression nodes."""

    def predicates(self) -> List[Predicate]:
        raise NotImplementedError

    def validate(self, registry: FieldRegistry = DEFAULT_REGISTRY) -> None:
        for pred in self.predicates():
            pred.validate(registry)


@dataclass(frozen=True)
class Pred(Expr):
    """Leaf node wrapping a single predicate."""

    predicate: Predicate

    def predicates(self) -> List[Predicate]:
        return [self.predicate]

    def __str__(self) -> str:
        return str(self.predicate)


@dataclass(frozen=True)
class And(Expr):
    """Conjunction of two or more sub-expressions."""

    operands: Tuple[Expr, ...]

    def predicates(self) -> List[Predicate]:
        return [p for operand in self.operands for p in operand.predicates()]

    def __str__(self) -> str:
        return "(" + " and ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Or(Expr):
    """Disjunction of two or more sub-expressions."""

    operands: Tuple[Expr, ...]

    def predicates(self) -> List[Predicate]:
        return [p for operand in self.operands for p in operand.predicates()]

    def __str__(self) -> str:
        return "(" + " or ".join(str(o) for o in self.operands) + ")"


#: The always-true filter (subscribe to all traffic) is represented by
#: an empty conjunction.
MATCH_ALL = And(())
