"""Filter expression pretty-printing.

Renders an :class:`~repro.filter.ast.Expr` back into filter syntax that
:func:`~repro.filter.parser.parse_filter` accepts, with minimal
parenthesization. The round-trip property (``parse(print(e))``
equivalent to ``e``) is enforced in the test suite and makes filters
safe to persist, log, and display.
"""

from __future__ import annotations

import ipaddress

from repro.filter.ast import And, Expr, MATCH_ALL, Op, Or, Pred, Predicate


def format_predicate(pred: Predicate) -> str:
    """One predicate in parseable filter syntax."""
    if pred.is_unary:
        return pred.protocol
    value = pred.value
    if isinstance(value, str):
        escaped = value.replace("'", "\\'")
        rhs = f"'{escaped}'"
    elif isinstance(value, tuple):
        rhs = f"{value[0]}..{value[1]}"
    elif isinstance(value, (ipaddress.IPv4Network, ipaddress.IPv6Network,
                            ipaddress.IPv4Address, ipaddress.IPv6Address)):
        rhs = str(value)
    else:
        rhs = str(value)
    op = "matches" if pred.op is Op.MATCHES else pred.op.value
    return f"{pred.protocol}.{pred.field} {op} {rhs}"


def format_filter(expr: Expr) -> str:
    """Render an expression tree back to filter syntax.

    ``or`` operands that are conjunctions get parentheses; everything
    else relies on precedence (``and`` binds tighter than ``or``).
    """
    if expr == MATCH_ALL:
        return ""
    return _format(expr, parent=None)


def _format(expr: Expr, parent) -> str:
    if isinstance(expr, Pred):
        return format_predicate(expr.predicate)
    if isinstance(expr, And):
        body = " and ".join(_format(op, And) for op in expr.operands)
        if parent is Or or parent is None:
            return body
        return f"({body})"
    if isinstance(expr, Or):
        body = " or ".join(_format(op, Or) for op in expr.operands)
        if parent is None:
            return body
        return f"({body})"
    raise TypeError(f"unexpected node {type(expr).__name__}")
