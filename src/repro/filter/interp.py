"""Runtime-interpreted filter execution (the Appendix B baseline).

This walker evaluates the predicate trie structure on every invocation:
it looks up accessors with ``getattr``, dispatches on the operator enum,
and recurses over child lists — the work Retina's static code
generation eliminates. Semantics are identical to
:mod:`repro.filter.codegen` (property-tested in the suite); only the
execution strategy differs, which is exactly what Figure 12 measures.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional

from repro.filter.ast import Op, Predicate
from repro.filter.batch import (
    NO_MATCH,
    binary_supported,
    encode_verdict,
    make_pred_evaluator,
    trie_batch_supported,
    unary_kind,
)
from repro.filter.fields import DEFAULT_REGISTRY, FieldRegistry, Layer
from repro.filter.result import FilterResult
from repro.filter.trie import PredicateTrie, TrieNode
from repro.packet.mbuf import Mbuf
from repro.packet.stack import parse_stack


def evaluate_binary(pred: Predicate, obj: Any,
                    registry: FieldRegistry = DEFAULT_REGISTRY) -> bool:
    """Evaluate a binary predicate against a parsed object, interpreting
    the operator and accessor list at call time."""
    fdef = registry.field(pred.protocol, pred.field)
    for accessor in fdef.accessors:
        value = getattr(obj, accessor)()
        if value is None:
            continue
        if _compare(pred.op, value, pred.value):
            return True
    return False


def _compare(op: Op, lhs: Any, rhs: Any) -> bool:
    if op is Op.EQ:
        return lhs == rhs
    if op is Op.NE:
        return lhs != rhs
    if op is Op.LT:
        return lhs < rhs
    if op is Op.LE:
        return lhs <= rhs
    if op is Op.GT:
        return lhs > rhs
    if op is Op.GE:
        return lhs >= rhs
    if op is Op.IN:
        if isinstance(rhs, tuple):
            return rhs[0] <= lhs <= rhs[1]
        return lhs in rhs
    if op is Op.MATCHES:
        return re.search(rhs, lhs) is not None
    raise AssertionError(f"unhandled operator {op}")


class InterpretedFilter:
    """Trie-walking implementation of the three sub-filters."""

    def __init__(
        self,
        trie: PredicateTrie,
        registry: FieldRegistry = DEFAULT_REGISTRY,
    ) -> None:
        self.trie = trie
        self.registry = registry
        #: Batch variant over ColumnarBatch columns, or None when the
        #: trie uses predicates the columnar layer cannot express.
        self.packet_filter_batch: Optional[Callable] = None
        if trie_batch_supported(trie, registry):
            # Nodes inside pruned (ipv6/icmp) subtrees are never batch
            # evaluated and may be inexpressible; skip them here.
            self._batch_evals: Dict[int, Callable] = {
                node.id: make_pred_evaluator(node.pred, registry)
                for node in trie.packet_nodes()
                if not node.pred.is_unary
                and binary_supported(node.pred, registry)
            }
            self.packet_filter_batch = self._packet_filter_batch

    # -- packet filter -------------------------------------------------------
    def packet_filter(self, mbuf: Mbuf) -> FilterResult:
        """Walk the trie against the memoized parse-once stack.

        Both execution strategies (this walker and the generated code)
        read the same :class:`~repro.packet.stack.PacketStack` views,
        so their semantics — including skipping the transport layer on
        non-first IP fragments — stay aligned with the reference
        oracle by construction.
        """
        root = self.trie.root
        if root.terminal:
            return FilterResult.match_terminal(0)
        stack = mbuf.stack
        if stack is None:
            stack = parse_stack(mbuf)
        if stack.eth is None:
            return FilterResult.no_match()
        headers: Dict[str, Any] = {
            "eth": stack.eth,
            "ipv4": stack.ipv4,
            "ipv6": stack.ipv6,
            "tcp": stack.tcp,
            "udp": stack.udp,
            "icmp": stack.icmp,
        }
        for child in root.children:
            if child.layer is not Layer.PACKET:
                continue
            result = self._walk_packet(child, headers, parsed_unary=True)
            if result is not None:
                return result
        return FilterResult.no_match()

    def _walk_packet(
        self,
        node: TrieNode,
        headers: Dict[str, Any],
        parsed_unary: bool = False,
    ) -> Optional[FilterResult]:
        pred = node.pred
        if pred.is_unary and not parsed_unary:
            if headers.get(pred.protocol) is None:
                return None
        elif not pred.is_unary:
            obj = headers.get(pred.protocol)
            if obj is None or not evaluate_binary(pred, obj, self.registry):
                return None
        for child in node.children:
            if child.layer is not Layer.PACKET:
                continue
            result = self._walk_packet(child, headers)
            if result is not None:
                return result
        if node.terminal:
            return FilterResult.match_terminal(node.id)
        if any(c.layer is not Layer.PACKET for c in node.children):
            return FilterResult.match_non_terminal(node.id)
        return None

    # -- batch packet filter -------------------------------------------------
    def _packet_filter_batch(self, cols: Any) -> List[int]:
        """Walk the trie once per *batch*, narrowing an index list.

        Returns one encoded verdict per row (see
        :mod:`repro.filter.batch`); verdicts are only meaningful for
        rows with ``cols.fast[i]`` set. The walk visits nodes in the
        same depth-first order as :meth:`_walk_packet` and writes
        verdicts first-match-wins, so per-row results are identical to
        the scalar walker by construction.
        """
        n = cols.n
        root = self.trie.root
        if root.terminal:
            return [1 if f else NO_MATCH for f in cols.fast]
        out = [NO_MATCH] * n
        fast = cols.fast
        idxs = [i for i in range(n) if fast[i]]
        if idxs:
            for child in root.children:
                if child.layer is Layer.PACKET:
                    self._walk_batch(child, cols, idxs, out)
        return out

    def _walk_batch(self, node: TrieNode, cols: Any, idxs: List[int],
                    out: List[int]) -> None:
        pred = node.pred
        if pred.is_unary:
            kind = unary_kind(pred.protocol)
            if kind == "never":
                # Fast rows are plain IP TCP/UDP; this subtree can
                # only match on the scalar slow path.
                return
            if kind != "always":
                col, val = kind
                colvals = getattr(cols, col)
                idxs = [i for i in idxs if colvals[i] == val]
        else:
            evaluate = self._batch_evals[node.id]
            idxs = [i for i in idxs if evaluate(cols, i)]
        if not idxs:
            return
        for child in node.children:
            if child.layer is Layer.PACKET:
                self._walk_batch(child, cols, idxs, out)
        if node.terminal:
            verdict = encode_verdict(node.id, True)
        elif any(c.layer is not Layer.PACKET for c in node.children):
            verdict = encode_verdict(node.id, False)
        else:
            return
        for i in idxs:
            if out[i] < 0:
                out[i] = verdict

    # -- connection filter -----------------------------------------------------
    def connection_filter(self, conn: Any, pkt_term_node: int) -> FilterResult:
        try:
            report = self.trie.node(pkt_term_node)
        except KeyError:
            return FilterResult.no_match()
        service = conn.service()
        for conn_node in self.trie.connection_candidates(report):
            if conn_node.pred.protocol == service:
                if conn_node.terminal:
                    return FilterResult.match_terminal(conn_node.id)
                return FilterResult.match_non_terminal(conn_node.id)
        return FilterResult.no_match()

    # -- session filter ----------------------------------------------------------
    def session_filter(self, session: Any, conn_term_node: int) -> bool:
        try:
            conn_node = self.trie.node(conn_term_node)
        except KeyError:
            return False
        if conn_node.layer is not Layer.CONNECTION:
            return False
        if conn_node.terminal:
            return True
        chains = self.trie.session_subtree(conn_node)
        if not chains:
            return True
        data = session.data
        for chain in chains:
            if all(
                evaluate_binary(n.pred, data, self.registry) for n in chain
            ):
                return True
        return False
