"""Hardware packet-filter generation (Section 4.1, "Hardware Packet Filter").

Commodity NICs can match-and-drop flows at zero CPU cost but differ in
which protocols, fields, and operands their flow tables support. As in
Retina, each filter predicate is expanded into a candidate flow-rule
item and *validated* against the device's capability profile; items the
NIC cannot express are dropped, widening the rule (the software packet
filter implements the remaining logic). The final rule set is therefore
always at least as broad as the subscription filter. Validated
predicates are cached, mirroring the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.filter.ast import Op, Predicate
from repro.filter.dnf import Pattern
from repro.filter.fields import DEFAULT_REGISTRY, FieldRegistry, Layer
from repro.filter.interp import evaluate_binary
from repro.packet.stack import PacketStack


@dataclass(frozen=True)
class NicCapabilities:
    """What a NIC's flow table can match on.

    Attributes:
        name: Profile name (for logs and repr).
        protocols: Unary protocol matches the NIC understands.
        field_ops: Allowed operators per (protocol, field). Fields not
            present cannot be matched in hardware at all.
        max_rules: Flow-table capacity; rule generation falls back to
            accept-all when exceeded.
    """

    name: str
    protocols: FrozenSet[str]
    field_ops: Dict[Tuple[str, str], FrozenSet[Op]]
    max_rules: int = 1024

    def supports_unary(self, proto: str) -> bool:
        return proto in self.protocols

    def supports_binary(self, pred: Predicate) -> bool:
        ops = self.field_ops.get((pred.protocol, pred.field))
        if ops is None or pred.op not in ops:
            return False
        # Range membership needs explicit range support; CIDR membership
        # is the common case NICs do support for addresses.
        return True


def connectx5_capabilities() -> NicCapabilities:
    """A ConnectX-5-like profile: 5-tuple exact matches plus CIDR
    prefixes on addresses; no ordered comparisons (the paper's example:
    ``tcp.port >= 100`` cannot be offloaded)."""
    eq_only = frozenset({Op.EQ})
    addr_ops = frozenset({Op.EQ, Op.IN})
    return NicCapabilities(
        name="connectx5",
        protocols=frozenset({"eth", "ipv4", "ipv6", "tcp", "udp"}),
        field_ops={
            ("ipv4", "src_addr"): addr_ops,
            ("ipv4", "dst_addr"): addr_ops,
            ("ipv4", "addr"): addr_ops,
            ("ipv6", "src_addr"): addr_ops,
            ("ipv6", "dst_addr"): addr_ops,
            ("ipv6", "addr"): addr_ops,
            ("tcp", "src_port"): eq_only,
            ("tcp", "dst_port"): eq_only,
            ("tcp", "port"): eq_only,
            ("udp", "src_port"): eq_only,
            ("udp", "dst_port"): eq_only,
            ("udp", "port"): eq_only,
        },
    )


def intel_e810_capabilities() -> NicCapabilities:
    """An E810-like profile: like CX-5 but with port ranges."""
    base = connectx5_capabilities()
    field_ops = dict(base.field_ops)
    port_ops = frozenset({Op.EQ, Op.IN})
    for proto in ("tcp", "udp"):
        for fname in ("src_port", "dst_port", "port"):
            field_ops[(proto, fname)] = port_ops
    return NicCapabilities("intel_e810", base.protocols, field_ops)


def no_offload_capabilities() -> NicCapabilities:
    """A NIC with no usable flow table (hardware filtering disabled)."""
    return NicCapabilities("none", frozenset(), {}, max_rules=0)


def p4_capabilities(
    registry: FieldRegistry = DEFAULT_REGISTRY,
) -> NicCapabilities:
    """A P4-programmable device in the filtering layer (the paper's
    conclusion suggests exactly this future optimization).

    A P4 pipeline can match on arbitrary packet-layer header fields
    with exact, range, and ordered comparisons (ternary/range tables) —
    everything except payload regexes. The capability table is built
    from the registry, so protocol modules added later are covered.
    """
    int_ops = frozenset({Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE, Op.IN})
    addr_ops = frozenset({Op.EQ, Op.NE, Op.IN})
    protocols = set()
    field_ops: Dict[Tuple[str, str], FrozenSet[Op]] = {}
    for proto_name in registry.protocols():
        proto = registry.protocol(proto_name)
        if proto.layer is not Layer.PACKET:
            continue
        protocols.add(proto_name)
        for field_name, fdef in proto.fields.items():
            from repro.filter.fields import ValueType
            if fdef.vtype is ValueType.INT:
                field_ops[(proto_name, field_name)] = int_ops
            elif fdef.vtype is ValueType.ADDR:
                field_ops[(proto_name, field_name)] = addr_ops
    return NicCapabilities("p4", frozenset(protocols), field_ops,
                           max_rules=65536)


@dataclass(frozen=True)
class FlowRule:
    """One hardware flow rule: protocol chain + field match items.

    ``action`` is ``"rss"`` (deliver and load-balance) for rules derived
    from filter patterns; the device applies an implicit ``ELSE → DROP``
    unless the rule set is accept-all.
    """

    protocols: Tuple[str, ...]
    items: Tuple[Predicate, ...] = ()
    action: str = "rss"

    def matches(self, stack: PacketStack,
                registry: FieldRegistry = DEFAULT_REGISTRY) -> bool:
        """Evaluate the rule against a parsed packet.

        Protocol names coincide with the :class:`PacketStack` slot
        names (``eth``/``ipv4``/``ipv6``/``tcp``/``udp``/``icmp``), so
        the parse-once views are read straight off the stack — this
        runs per ingress packet in the dispatching process.
        """
        for proto in self.protocols:
            if getattr(stack, proto, None) is None:
                return False
        for pred in self.items:
            obj = getattr(stack, pred.protocol, None)
            if obj is None or not evaluate_binary(pred, obj, registry):
                return False
        return True

    def describe(self) -> str:
        chain = "-".join(p.upper() for p in self.protocols) or "ANY"
        items = " ".join(str(p) for p in self.items)
        suffix = f" [{items}]" if items else ""
        return f"{chain}{suffix} -> {self.action.upper()}"


class HardwareFilter:
    """The validated flow-rule set installed on the (simulated) NIC."""

    def __init__(self, rules: Sequence[FlowRule], accept_all: bool) -> None:
        self.rules = list(rules)
        self.accept_all = accept_all

    def admits(self, stack: PacketStack,
               registry: FieldRegistry = DEFAULT_REGISTRY) -> bool:
        """True if the packet survives hardware filtering."""
        if self.accept_all:
            return True
        for rule in self.rules:  # plain loop: no genexpr frame/packet
            if rule.matches(stack, registry):
                return True
        return False

    def describe(self) -> List[str]:
        if self.accept_all:
            return ["* -> RSS"]
        return [rule.describe() for rule in self.rules] + ["ELSE -> DROP"]


def generate_hardware_filter(
    patterns: Sequence[Pattern],
    capabilities: NicCapabilities,
    registry: FieldRegistry = DEFAULT_REGISTRY,
) -> HardwareFilter:
    """Expand filter patterns into validated NIC flow rules.

    Every pattern yields one rule containing only the predicates the NIC
    supports (validated-with-cache, as in the paper); unsupported
    predicates are simply omitted, widening the rule. A pattern with no
    hardware-expressible constraints — or an empty (match-all) pattern —
    forces the accept-all configuration.
    """
    validation_cache: Dict[str, bool] = {}

    def supported(pred: Predicate) -> bool:
        key = str(pred)
        cached = validation_cache.get(key)
        if cached is None:
            if pred.is_unary:
                cached = capabilities.supports_unary(pred.protocol)
            else:
                cached = capabilities.supports_binary(pred)
            validation_cache[key] = cached
        return cached

    rules: List[FlowRule] = []
    seen: set = set()
    for pattern in patterns:
        packet_preds = [
            p for p in pattern if p.layer(registry) is Layer.PACKET
        ]
        protocols = tuple(
            p.protocol for p in packet_preds if p.is_unary and supported(p)
        )
        items = tuple(
            p for p in packet_preds if not p.is_unary and supported(p)
        )
        if not protocols and not items:
            return HardwareFilter([], accept_all=True)
        rule = FlowRule(protocols, items)
        key = rule.describe()
        if key not in seen:
            seen.add(key)
            rules.append(rule)
    if not rules or len(rules) > capabilities.max_rules:
        return HardwareFilter([], accept_all=True)
    return HardwareFilter(rules, accept_all=False)
