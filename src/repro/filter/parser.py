"""Recursive-descent parser for the filter language.

Grammar (``or`` binds loosest, ``and`` tighter, parentheses tightest)::

    expr      := term ( 'or' term )*
    term      := factor ( 'and' factor )*
    factor    := '(' expr ')' | predicate
    predicate := proto [ '.' field [ op rhs ] ]
    op        := '=' | '!=' | '<' | '<=' | '>' | '>=' | 'in' | 'matches' | '~'
    rhs       := int | int '..' int | 'string' | ip [ '/' prefix ]

The parser also performs semantic validation against the field registry
so that a successfully parsed :class:`~repro.filter.ast.Expr` is known
to reference only registered protocols/fields with type-correct
operators — mirroring how Retina's filters are statically verified at
compile time.
"""

from __future__ import annotations

import ipaddress
import re
from typing import List, Optional

from repro.errors import FilterSyntaxError
from repro.filter.ast import And, Expr, MATCH_ALL, Op, Or, Pred, Predicate
from repro.filter.fields import DEFAULT_REGISTRY, FieldRegistry
from repro.filter.lexer import TokKind, Token, tokenize

_RANGE_RE = re.compile(r"^(\d+)\.\.(\d+)$")
_INT_RE = re.compile(r"^\d+$|^0x[0-9a-fA-F]+$")


def parse_filter(
    text: str, registry: FieldRegistry = DEFAULT_REGISTRY
) -> Expr:
    """Parse and validate a filter string into an expression tree.

    An empty or whitespace-only string yields the match-all filter.
    """
    if not text.strip():
        return MATCH_ALL
    parser = _Parser(tokenize(text), registry)
    expr = parser.parse_expr()
    parser.expect(TokKind.EOF)
    expr.validate(registry)
    return expr


class _Parser:
    def __init__(self, tokens: List[Token], registry: FieldRegistry) -> None:
        self._tokens = tokens
        self._index = 0
        self._registry = registry

    # -- token helpers -----------------------------------------------------
    def peek(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def expect(self, kind: TokKind) -> Token:
        token = self.peek()
        if token.kind is not kind:
            raise FilterSyntaxError(
                f"expected {kind.value}, found {token.text!r} at {token.pos}",
                token.pos,
            )
        return self.advance()

    # -- grammar -----------------------------------------------------------
    def parse_expr(self) -> Expr:
        operands = [self.parse_term()]
        while self.peek().kind is TokKind.OR:
            self.advance()
            operands.append(self.parse_term())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def parse_term(self) -> Expr:
        operands = [self.parse_factor()]
        while self.peek().kind is TokKind.AND:
            self.advance()
            operands.append(self.parse_factor())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def parse_factor(self) -> Expr:
        token = self.peek()
        if token.kind is TokKind.LPAREN:
            self.advance()
            expr = self.parse_expr()
            self.expect(TokKind.RPAREN)
            return expr
        return self.parse_predicate()

    def parse_predicate(self) -> Expr:
        head = self.expect(TokKind.ATOM)
        protocol, field = self._split_head(head)
        token = self.peek()
        if token.kind is TokKind.OP:
            op = Op(self.advance().text)
        elif token.kind is TokKind.MATCHES:
            self.advance()
            op = Op.MATCHES
        elif token.kind is TokKind.IN:
            self.advance()
            op = Op.IN
        else:
            if field is not None:
                raise FilterSyntaxError(
                    f"field reference '{head.text}' needs a comparison "
                    f"operator at {head.pos}",
                    head.pos,
                )
            return Pred(Predicate(protocol))
        if field is None:
            raise FilterSyntaxError(
                f"unary predicate '{protocol}' cannot take an operator "
                f"at {token.pos}",
                token.pos,
            )
        value = self._parse_rhs(op)
        return Pred(Predicate(protocol, field, op, value))

    def _split_head(self, token: Token):
        text = token.text
        if "." in text:
            protocol, _, field = text.partition(".")
            if not protocol or not field or "." in field:
                raise FilterSyntaxError(
                    f"malformed field reference '{text}' at {token.pos}",
                    token.pos,
                )
            return protocol, field
        return text, None

    def _parse_rhs(self, op: Op):
        token = self.peek()
        if token.kind is TokKind.STRING:
            return self.advance().text
        if token.kind is not TokKind.ATOM:
            raise FilterSyntaxError(
                f"expected a value, found {token.text!r} at {token.pos}",
                token.pos,
            )
        text = self.advance().text
        range_match = _RANGE_RE.match(text)
        if range_match:
            lo, hi = int(range_match.group(1)), int(range_match.group(2))
            if lo > hi:
                raise FilterSyntaxError(
                    f"empty range {text} at {token.pos}", token.pos
                )
            return (lo, hi)
        if _INT_RE.match(text):
            return int(text, 0)
        value = self._try_ip(text)
        if value is not None:
            return value
        raise FilterSyntaxError(
            f"cannot interpret value '{text}' at {token.pos} "
            f"(strings must be quoted)",
            token.pos,
        )

    @staticmethod
    def _try_ip(text: str):
        try:
            if "/" in text:
                return ipaddress.ip_network(text, strict=False)
            return ipaddress.ip_address(text)
        except ValueError:
            return None
