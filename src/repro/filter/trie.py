"""Predicate trie: the intermediate representation for filter compilation.

Input data must match at least one root-to-leaf path to satisfy the
filter. As in the paper, every node has a single parent (patterns
sharing a prefix share nodes; divergence forks), nodes are tagged with
the layer they evaluate at (packet / connection / session) and with
whether a pattern *terminates* there, and an optimization pass prunes
branches subsumed by a terminal ancestor.

The trie also knows how to slice itself into the three software
sub-filters:

* the **packet sub-filter** — the packet-layer prefix of the trie;
* the **connection sub-filter** — for each packet-layer leaf, the
  connection-layer predicates reachable from the matched path;
* the **session sub-filter** — for each connection-layer node, the
  session-layer predicate subtree below it.

One deliberate deviation from the paper's Figure 3: when a packet
matches a *deep* packet-layer node (e.g. ``tcp.port >= 100``), patterns
branching from shallower ancestors (e.g. plain ``http`` under ``tcp``)
are still live. The figure's generated connection filter checks only
the deepest node's children; we collect connection predicates from the
entire matched path so such patterns are not lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.filter.ast import Predicate
from repro.filter.dnf import Pattern
from repro.filter.fields import DEFAULT_REGISTRY, FieldRegistry, Layer


@dataclass
class TrieNode:
    """One predicate in the trie."""

    id: int
    pred: Optional[Predicate]  # None only for the root
    layer: Layer
    parent: Optional["TrieNode"] = None
    children: List["TrieNode"] = dc_field(default_factory=list)
    #: True if some filter pattern's last predicate is this node.
    terminal: bool = False

    def child_matching(self, pred: Predicate) -> Optional["TrieNode"]:
        key = str(pred)
        for child in self.children:
            if child.pred is not None and str(child.pred) == key:
                return child
        return None

    def path(self) -> List["TrieNode"]:
        """Nodes from root (exclusive) to self (inclusive)."""
        nodes: List[TrieNode] = []
        node: Optional[TrieNode] = self
        while node is not None and node.pred is not None:
            nodes.append(node)
            node = node.parent
        nodes.reverse()
        return nodes

    def __repr__(self) -> str:
        label = str(self.pred) if self.pred is not None else "root"
        star = "*" if self.terminal else ""
        return f"<{self.id}:{label}{star}>"


class PredicateTrie:
    """Trie over expanded filter patterns plus sub-filter projections."""

    def __init__(
        self,
        patterns: Sequence[Pattern],
        registry: FieldRegistry = DEFAULT_REGISTRY,
    ) -> None:
        self.registry = registry
        self.root = TrieNode(0, None, Layer.PACKET, terminal=False)
        self._next_id = 1
        self._nodes: Dict[int, TrieNode] = {0: self.root}
        for pattern in patterns:
            self._insert(pattern)
        self._prune_subsumed(self.root)
        self._order_children(self.root)

    # -- construction ------------------------------------------------------
    def _insert(self, pattern: Pattern) -> None:
        node = self.root
        if not pattern:
            node.terminal = True
            return
        for pred in pattern:
            child = node.child_matching(pred)
            if child is None:
                child = TrieNode(
                    self._next_id, pred, pred.layer(self.registry),
                    parent=node,
                )
                self._next_id += 1
                self._nodes[child.id] = child
                node.children.append(child)
            node = child
        node.terminal = True

    def _prune_subsumed(self, node: TrieNode) -> None:
        """Drop subtrees below terminal nodes (they cannot change the
        match outcome: the terminal ancestor already accepts)."""
        if node.terminal:
            for child in node.children:
                self._forget(child)
            node.children = []
            return
        for child in node.children:
            self._prune_subsumed(child)

    def _order_children(self, node: TrieNode) -> None:
        """Order sibling branches so subtrees containing a terminal
        packet-layer node are evaluated first.

        The generated packet filter returns the first matching branch's
        report. If a packet satisfies two sibling branches — one ending
        a pure-packet pattern (terminal) and one merely prefixing a
        connection-layer pattern — the terminal match must win, since
        the filter as a whole is already satisfied.
        """
        node.children.sort(
            key=lambda c: 0 if self._has_packet_terminal(c) else 1
        )
        for child in node.children:
            self._order_children(child)

    def _has_packet_terminal(self, node: TrieNode) -> bool:
        if node.layer is not Layer.PACKET:
            return False
        if node.terminal:
            return True
        return any(self._has_packet_terminal(c) for c in node.children)

    def _forget(self, node: TrieNode) -> None:
        self._nodes.pop(node.id, None)
        for child in node.children:
            self._forget(child)

    # -- lookups -------------------------------------------------------------
    def node(self, node_id: int) -> TrieNode:
        return self._nodes[node_id]

    def nodes(self) -> List[TrieNode]:
        return [self._nodes[i] for i in sorted(self._nodes)]

    @property
    def match_all(self) -> bool:
        """True if the root itself is terminal (empty filter)."""
        return self.root.terminal

    # -- sub-filter projections ----------------------------------------------
    def packet_nodes(self) -> List[TrieNode]:
        return [n for n in self.nodes() if n.pred and n.layer is Layer.PACKET]

    def packet_report_nodes(self) -> List[TrieNode]:
        """Packet-layer nodes at which the packet filter reports a match.

        A node reports if it ends some pattern's packet-layer prefix:
        either the whole pattern terminates there, or the pattern
        continues with connection/session predicates. (A node can be a
        report point *and* have deeper packet-layer children from other
        patterns — Figure 3's node 2 under node 4 — in which case the
        generated code prefers the deepest matching report.)
        """
        report = []
        for node in self.packet_nodes():
            if node.terminal or any(
                c.layer is not Layer.PACKET for c in node.children
            ):
                report.append(node)
        return report

    def connection_candidates(self, pkt_leaf: TrieNode) -> List[TrieNode]:
        """Connection-layer nodes live after a packet-filter match at
        ``pkt_leaf`` — children of every node along the matched path.

        (See the module docstring for why the whole path is scanned.)
        """
        candidates: List[TrieNode] = []
        for path_node in [self.root] + pkt_leaf.path():
            for child in path_node.children:
                if child.layer is Layer.CONNECTION:
                    candidates.append(child)
        return candidates

    def session_subtree(self, conn_node: TrieNode) -> List[List[TrieNode]]:
        """Session-layer predicate chains below ``conn_node``.

        Each returned list is a conjunction (a root-to-leaf path through
        session-layer nodes); the connection matches if any chain does.
        Empty result means the connection node is itself terminal.
        """
        chains: List[List[TrieNode]] = []

        def walk(node: TrieNode, acc: List[TrieNode]) -> None:
            if node.terminal or not node.children:
                if acc:
                    chains.append(list(acc))
                return
            for child in node.children:
                if child.layer is Layer.SESSION:
                    acc.append(child)
                    walk(child, acc)
                    acc.pop()

        walk(conn_node, [])
        return chains

    # -- introspection ---------------------------------------------------------
    def describe(self) -> str:
        """Human-readable dump of the trie (for docs/tests/debugging)."""
        lines: List[str] = []

        def walk(node: TrieNode, depth: int) -> None:
            label = str(node.pred) if node.pred else "root"
            star = " [terminal]" if node.terminal else ""
            layer = node.layer.name.lower() if node.pred else ""
            lines.append(f"{'  ' * depth}{node.id}: {label} {layer}{star}".rstrip())
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)
