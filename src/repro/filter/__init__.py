"""Filter language, decomposition, and compilation (Section 4).

The main entry point is :func:`compile_filter`, which turns a filter
string like ``"(ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or
http"`` into a :class:`CompiledFilter` bundling the four decomposed
layers:

1. a validated NIC hardware rule set,
2. the software packet filter,
3. the connection filter,
4. the application-layer session filter,

plus the predicate trie they were generated from. The software layers
can be produced by static code generation (default, as in the paper) or
by the runtime-interpreted walker used as Appendix B's baseline.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.filter.ast import And, Expr, MATCH_ALL, Op, Or, Pred, Predicate
from repro.filter.codegen import GeneratedFilter
from repro.filter.dnf import Pattern, expand_patterns, to_dnf
from repro.filter.fields import (
    DEFAULT_REGISTRY,
    FieldDef,
    FieldRegistry,
    Layer,
    ProtocolDef,
    ValueType,
    default_registry,
)
from repro.filter.hardware import (
    FlowRule,
    HardwareFilter,
    NicCapabilities,
    connectx5_capabilities,
    generate_hardware_filter,
    intel_e810_capabilities,
    no_offload_capabilities,
)
from repro.filter.interp import InterpretedFilter
from repro.filter.parser import parse_filter
from repro.filter.printer import format_filter, format_predicate
from repro.filter.result import FilterResult
from repro.filter.trie import PredicateTrie, TrieNode

__all__ = [
    "CompiledFilter",
    "compile_filter",
    "parse_filter",
    "format_filter",
    "format_predicate",
    "expand_patterns",
    "to_dnf",
    "FilterResult",
    "PredicateTrie",
    "TrieNode",
    "Predicate",
    "Pred",
    "And",
    "Or",
    "Op",
    "Expr",
    "MATCH_ALL",
    "Layer",
    "FieldRegistry",
    "FieldDef",
    "ProtocolDef",
    "ValueType",
    "default_registry",
    "DEFAULT_REGISTRY",
    "HardwareFilter",
    "FlowRule",
    "NicCapabilities",
    "connectx5_capabilities",
    "intel_e810_capabilities",
    "no_offload_capabilities",
    "GeneratedFilter",
    "InterpretedFilter",
]


class CompiledFilter:
    """A fully decomposed, executable subscription filter."""

    def __init__(
        self,
        text: str,
        expr: Expr,
        patterns: List[Pattern],
        trie: PredicateTrie,
        hardware: HardwareFilter,
        backend,
        mode: str,
        registry: FieldRegistry,
    ) -> None:
        self.text = text
        self.expr = expr
        self.patterns = patterns
        self.trie = trie
        self.hardware = hardware
        self.mode = mode
        self.registry = registry
        self.packet_filter = backend.packet_filter
        #: Batch packet filter over ColumnarBatch columns (verdict ints,
        #: see repro.filter.batch), or None when the trie uses
        #: predicates the columnar layer cannot express.
        self.packet_filter_batch = getattr(
            backend, "packet_filter_batch", None)
        self.connection_filter = backend.connection_filter
        self.session_filter = backend.session_filter
        self._backend = backend

    # -- derived properties ------------------------------------------------
    @property
    def needs_connection_layer(self) -> bool:
        """True if any pattern continues past the packet layer."""
        return any(
            node.layer is not Layer.PACKET
            for node in self.trie.nodes()
            if node.pred is not None
        )

    @property
    def needs_session_layer(self) -> bool:
        return any(
            node.layer is Layer.SESSION
            for node in self.trie.nodes()
            if node.pred is not None
        )

    @property
    def app_protocols(self) -> Set[str]:
        """Application protocols the filter constrains (used to decide
        which parsers the connection tracker must probe with)."""
        return {
            node.pred.protocol
            for node in self.trie.nodes()
            if node.pred is not None and node.layer is Layer.CONNECTION
        }

    @property
    def generated_source(self) -> Optional[str]:
        """Source of the generated sub-filters (codegen mode only)."""
        return getattr(self._backend, "source", None)

    def describe(self) -> str:
        """Multi-line description: trie + hardware rules."""
        lines = [f"filter: {self.text or '<match-all>'}", "trie:"]
        lines.append(self.trie.describe())
        lines.append("hardware rules:")
        lines.extend(f"  {rule}" for rule in self.hardware.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"CompiledFilter({self.text!r}, mode={self.mode!r})"


def compile_filter(
    text: str,
    registry: FieldRegistry = DEFAULT_REGISTRY,
    mode: str = "codegen",
    nic: Optional[NicCapabilities] = None,
) -> CompiledFilter:
    """Parse, decompose, and compile a filter string.

    Args:
        text: Filter expression (empty string subscribes to everything).
        registry: Protocol/field registry (extensible, Section 3.3).
        mode: ``"codegen"`` for static code generation (the paper's
            approach) or ``"interp"`` for the runtime-interpreted
            baseline measured in Appendix B.
        nic: NIC capability profile for hardware-rule validation;
            defaults to a ConnectX-5-like profile.
    """
    if mode not in ("codegen", "interp"):
        raise ValueError(f"unknown filter mode {mode!r}")
    expr = parse_filter(text, registry)
    patterns = expand_patterns(expr, registry)
    trie = PredicateTrie(patterns, registry)
    capabilities = nic if nic is not None else connectx5_capabilities()
    hardware = generate_hardware_filter(patterns, capabilities, registry)
    if mode == "codegen":
        backend = GeneratedFilter(trie, registry)
    else:
        backend = InterpretedFilter(trie, registry)
    return CompiledFilter(
        text, expr, patterns, trie, hardware, backend, mode, registry
    )
