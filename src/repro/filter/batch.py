"""Batch (mask-based) filter support shared by both filter backends.

The columnar decode layer (:mod:`repro.packet.columnar`) turns a burst
of frames into field columns plus a ``fast`` eligibility mask. Both
filter backends can then evaluate the packet sub-filter *per batch*
instead of per packet: the generated backend emits list-comprehension
mask predicates over the columns, the interpreted backend walks the
trie once per batch narrowing an index list. This module holds what
the two share — which predicates are expressible over the columns, the
verdict encoding, per-predicate evaluator closures, and the compiled
fast-admit check for the simulated NIC's hardware filter.

Verdict encoding
----------------
A batch filter returns one int per row: ``NO_MATCH`` (−1) when no
pattern matched, else ``(node_id << 1) | terminal`` — the same
``(node, terminal)`` pair a scalar :class:`~repro.filter.result.FilterResult`
carries, flattened so 256 verdicts fit in one plain list. Verdicts are
only valid for rows with ``fast[i]`` set; slow rows must be re-run
through the scalar ``packet_filter``.

Anything not expressible over the columns (``ipv4.ttl``, string
regexes, ``udp.length``, …) disables batching for the whole trie —
``packet_filter_batch`` stays ``None`` and the pipeline keeps the
scalar path, so supported-predicate coverage is a pure optimization
knob, never a semantics question.
"""

from __future__ import annotations

import ipaddress
from typing import Callable, List, Optional, Tuple, Union

from repro.filter.ast import Op, Predicate
from repro.filter.fields import DEFAULT_REGISTRY, FieldRegistry, Layer
from repro.filter.trie import PredicateTrie, TrieNode
from repro.packet.columnar import ETHERTYPE_IPV4, ETHERTYPE_IPV6

#: Batch verdict for "no pattern matched this row".
NO_MATCH = -1


def encode_verdict(node_id: int, terminal: bool) -> int:
    """Flatten a match into one int: ``(node_id << 1) | terminal``."""
    return (node_id << 1) | (1 if terminal else 0)


#: (protocol, accessor) -> ColumnarBatch column holding that int field.
#: Accessors absent here (ttl, window, udp.length, ...) are not decoded
#: columnar-side and make the trie fall back to the scalar filter.
_INT_COLS = {
    ("eth", "next_protocol"): "ethertype",
    ("ipv4", "protocol"): "proto",
    ("ipv4", "total_length"): "ip_total_len",
    ("tcp", "src_port"): "src_port",
    ("tcp", "dst_port"): "dst_port",
    ("tcp", "flags"): "tcp_flags",
    ("tcp", "seq_no"): "tcp_seq",
    ("udp", "src_port"): "src_port",
    ("udp", "dst_port"): "dst_port",
}

#: (protocol, accessor) -> column holding raw address bytes (4 per row
#: on IPv4 rows, 16 on IPv6 rows; the unary protocol gate above every
#: address predicate keeps each predicate on its own rows).
_ADDR_COLS = {
    ("ipv4", "src_addr"): "src_ip",
    ("ipv4", "dst_addr"): "dst_ip",
    ("ipv6", "src_addr"): "src_ip",
    ("ipv6", "dst_addr"): "dst_ip",
}

_ORDERED_INT_OPS = frozenset({Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE})

#: Unary predicates on fast rows: always true (the eligibility gate
#: guarantees a parsed Ethernet header), an EtherType test (fast rows
#: are plain IPv4 or IPv6), an IP protocol-number test (TCP/UDP), or
#: never true (fast rows carry no ICMP — subtrees under these are
#: pruned from batch evaluation entirely).
_UNARY_ALWAYS = frozenset({"eth"})
_UNARY_NEVER = frozenset({"icmp"})
_UNARY_ETH = {"ipv4": ETHERTYPE_IPV4, "ipv6": ETHERTYPE_IPV6}
_UNARY_PROTO = {"tcp": 6, "udp": 17}


def unary_kind(protocol: str
               ) -> Optional[Union[str, Tuple[str, int]]]:
    """Classify a unary predicate for fast rows.

    Returns ``"always"``, ``"never"``, a ``(column, value)`` equality
    test, or ``None`` when the protocol is unknown to the columnar
    layer.
    """
    if protocol in _UNARY_ALWAYS:
        return "always"
    if protocol in _UNARY_NEVER:
        return "never"
    eth = _UNARY_ETH.get(protocol)
    if eth is not None:
        return ("ethertype", eth)
    proto = _UNARY_PROTO.get(protocol)
    if proto is not None:
        return ("proto", proto)
    return None


def _accessor_support(pred: Predicate, accessor: str) -> Optional[str]:
    """Column name if ``accessor`` of ``pred`` is batch-expressible."""
    op, value = pred.op, pred.value
    col = _INT_COLS.get((pred.protocol, accessor))
    if col is not None:
        if op in _ORDERED_INT_OPS and isinstance(value, int):
            return col
        if (op is Op.IN and isinstance(value, tuple) and len(value) == 2
                and isinstance(value[0], int) and isinstance(value[1], int)):
            return col
        return None
    col = _ADDR_COLS.get((pred.protocol, accessor))
    if col is not None:
        if op in (Op.EQ, Op.NE) and isinstance(
                value, (ipaddress.IPv4Address, ipaddress.IPv6Address)):
            return col
        if op is Op.IN and isinstance(
                value, (ipaddress.IPv4Network, ipaddress.IPv6Network)):
            return col
        return None
    return None


def _addr_family(protocol: str):
    """The network class whose members this protocol's addresses can be."""
    return ipaddress.IPv4Network if protocol == "ipv4" \
        else ipaddress.IPv6Network


def binary_supported(pred: Predicate,
                     registry: FieldRegistry = DEFAULT_REGISTRY) -> bool:
    """True if every accessor of the predicate maps onto a column."""
    fdef = registry.field(pred.protocol, pred.field)
    return all(
        _accessor_support(pred, accessor) is not None
        for accessor in fdef.accessors
    )


def _node_supported(node: TrieNode, registry: FieldRegistry) -> bool:
    pred = node.pred
    if pred.is_unary:
        kind = unary_kind(pred.protocol)
        if kind is None:
            return False
        if kind == "never":
            return True  # subtree pruned, children never evaluated
    elif not binary_supported(pred, registry):
        return False
    return all(
        _node_supported(child, registry)
        for child in node.children if child.layer is Layer.PACKET
    )


def trie_batch_supported(trie: PredicateTrie,
                         registry: FieldRegistry = DEFAULT_REGISTRY
                         ) -> bool:
    """True if the packet sub-filter can run as batch mask predicates."""
    root = trie.root
    if root.terminal:
        return True
    return all(
        _node_supported(child, registry)
        for child in root.children if child.layer is Layer.PACKET
    )


# -- interpreted-backend evaluators -------------------------------------------

def _one_accessor_eval(pred: Predicate, accessor: str) -> Callable:
    """Closure evaluating one accessor comparison: ``f(cols, i) -> bool``."""
    col = _accessor_support(pred, accessor)
    assert col is not None, f"unsupported accessor {accessor} of {pred}"
    op, value = pred.op, pred.value
    if (pred.protocol, accessor) in _ADDR_COLS:
        if op is Op.IN:
            if not isinstance(value, _addr_family(pred.protocol)):
                # Network of the other IP version: never holds this
                # protocol's addresses (the scalar version check).
                return lambda cols, i: False
            netval = int(value.network_address)
            mask = int(value.netmask)

            def in_net(cols, i, _c=col, _m=mask, _v=netval):
                return int.from_bytes(getattr(cols, _c)[i], "big") & _m == _v
            return in_net
        packed = value.packed
        if op is Op.EQ:
            return lambda cols, i, _c=col, _v=packed: \
                getattr(cols, _c)[i] == _v
        return lambda cols, i, _c=col, _v=packed: \
            getattr(cols, _c)[i] != _v
    if op is Op.IN:
        lo, hi = value
        return lambda cols, i, _c=col, _lo=lo, _hi=hi: \
            _lo <= getattr(cols, _c)[i] <= _hi
    if op is Op.EQ:
        return lambda cols, i, _c=col, _v=value: getattr(cols, _c)[i] == _v
    if op is Op.NE:
        return lambda cols, i, _c=col, _v=value: getattr(cols, _c)[i] != _v
    if op is Op.LT:
        return lambda cols, i, _c=col, _v=value: getattr(cols, _c)[i] < _v
    if op is Op.LE:
        return lambda cols, i, _c=col, _v=value: getattr(cols, _c)[i] <= _v
    if op is Op.GT:
        return lambda cols, i, _c=col, _v=value: getattr(cols, _c)[i] > _v
    if op is Op.GE:
        return lambda cols, i, _c=col, _v=value: getattr(cols, _c)[i] >= _v
    raise AssertionError(f"unhandled batch operator {op}")


def make_pred_evaluator(pred: Predicate,
                        registry: FieldRegistry = DEFAULT_REGISTRY
                        ) -> Callable:
    """Build ``f(cols, i) -> bool`` for a batch-supported binary predicate.

    Synthetic fields with two accessors (``tcp.port``, ``ipv4.addr``)
    OR the per-accessor tests, matching the scalar backends.
    """
    fdef = registry.field(pred.protocol, pred.field)
    tests = [_one_accessor_eval(pred, a) for a in fdef.accessors]
    if len(tests) == 1:
        return tests[0]
    t0, t1 = tests

    def either(cols, i):
        return t0(cols, i) or t1(cols, i)
    return either


# -- generated-backend expressions --------------------------------------------

def _one_accessor_expr(pred: Predicate, accessor: str,
                       used_cols: set) -> str:
    """Source expression for one accessor comparison over column locals.

    The generated batch function hoists each used column into a local
    named ``c_<column>``; expressions index it with the loop variable
    ``i``. Address constants embed as bytes literals, CIDR membership
    as an int mask-and-compare — no constant pool needed.
    """
    col = _accessor_support(pred, accessor)
    assert col is not None, f"unsupported accessor {accessor} of {pred}"
    used_cols.add(col)
    lhs = f"c_{col}[i]"
    op, value = pred.op, pred.value
    if (pred.protocol, accessor) in _ADDR_COLS:
        if op is Op.IN:
            if not isinstance(value, _addr_family(pred.protocol)):
                return "False"  # network of the other IP version
            netval = int(value.network_address)
            mask = int(value.netmask)
            return (f'(int.from_bytes({lhs}, "big") & {mask}) == {netval}')
        python_op = "==" if op is Op.EQ else "!="
        return f"{lhs} {python_op} {value.packed!r}"
    if op is Op.IN:
        return f"{value[0]} <= {lhs} <= {value[1]}"
    python_op = {"=": "==", "!=": "!=", "<": "<", "<=": "<=",
                 ">": ">", ">=": ">="}[op.value]
    return f"{lhs} {python_op} {value!r}"


def gen_batch_condition(pred: Predicate, used_cols: set,
                        registry: FieldRegistry = DEFAULT_REGISTRY) -> str:
    """Render a batch-supported binary predicate as a mask condition."""
    fdef = registry.field(pred.protocol, pred.field)
    clauses = [
        _one_accessor_expr(pred, accessor, used_cols)
        for accessor in fdef.accessors
    ]
    if len(clauses) == 1:
        return clauses[0]
    return " or ".join(f"({c})" for c in clauses)


# -- hardware-filter fast admit -----------------------------------------------

def compile_hw_admit(hw, registry: FieldRegistry = DEFAULT_REGISTRY
                     ) -> Union[bool, Callable, None]:
    """Compile a hardware filter's admit check for columnar fast rows.

    Returns ``True`` when every fast row is admitted (no filter or
    accept-all), a ``f(cols, i) -> bool`` closure when the rule set is
    column-expressible, or ``None`` when it is not (the NIC must then
    keep the scalar per-packet ingress path).
    """
    if hw is None or hw.accept_all:
        return True
    known = (_UNARY_ALWAYS | set(_UNARY_ETH) | set(_UNARY_PROTO))
    compiled: List[
        Tuple[Optional[int], Optional[int], List[Callable]]] = []
    for rule in hw.rules:
        protos = set(rule.protocols)
        protos.update(p.protocol for p in rule.items)
        if protos & _UNARY_NEVER:
            continue  # rule requires icmp: never matches fast rows
        if not protos <= known:
            return None  # protocol the columnar layer cannot reason about
        want_eth: Optional[int] = None
        want_proto: Optional[int] = None
        contradictory = False
        for proto in protos:
            eth = _UNARY_ETH.get(proto)
            if eth is not None:
                if want_eth is not None and want_eth != eth:
                    contradictory = True  # ipv4 AND ipv6: never matches
                    break
                want_eth = eth
                continue
            need = _UNARY_PROTO.get(proto)
            if need is None:
                continue
            if want_proto is not None and want_proto != need:
                contradictory = True  # tcp AND udp: never matches
                break
            want_proto = need
        if contradictory:
            continue
        tests = []
        for pred in rule.items:
            if not binary_supported(pred, registry):
                return None
            tests.append(make_pred_evaluator(pred, registry))
        compiled.append((want_eth, want_proto, tests))

    def admit(cols, i, _rules=compiled):
        ethertype = cols.ethertype[i]
        proto = cols.proto[i]
        for want_eth, want_proto, tests in _rules:
            if want_eth is not None and ethertype != want_eth:
                continue
            if want_proto is not None and proto != want_proto:
                continue
            for test in tests:
                if not test(cols, i):
                    break
            else:
                return True
        return False
    return admit
