"""Disjunctive-normal-form conversion and pattern expansion.

Following Section 4.1 of the paper, the filter expression is first
flattened into a set of *patterns* (conjunctions of atomic predicates).
Each pattern is then *expanded* using encapsulation metadata from the
protocol registry so that its predicates appear in the order headers
are parsed on the wire: ``eth`` → ``ipv4|ipv6`` (+ fields) →
``tcp|udp`` (+ fields) → app protocol (connection layer) → app fields
(session layer). Patterns that leave the IP version or transport
unspecified are duplicated per admissible alternative (Figure 3 shows
``http`` expanding into ipv4 and ipv6 chains).

Internally contradictory patterns (``ipv4 and ipv6``, ``tls and http``)
are pruned; pruning *all* patterns is a semantic error.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.errors import FilterSemanticsError
from repro.filter.ast import And, Expr, Or, Pred, Predicate
from repro.filter.fields import DEFAULT_REGISTRY, FieldRegistry, Layer

#: A pattern is an ordered conjunction of predicates.
Pattern = List[Predicate]

_IP_PROTOS = ("ipv4", "ipv6")
_TRANSPORTS = ("tcp", "udp", "icmp")


def to_dnf(expr: Expr) -> List[Pattern]:
    """Flatten an expression tree into a list of conjunctions."""
    if isinstance(expr, Pred):
        return [[expr.predicate]]
    if isinstance(expr, And):
        patterns: List[Pattern] = [[]]
        for operand in expr.operands:
            sub = to_dnf(operand)
            patterns = [p + q for p in patterns for q in sub]
        return patterns
    if isinstance(expr, Or):
        patterns = []
        for operand in expr.operands:
            patterns.extend(to_dnf(operand))
        return patterns
    raise TypeError(f"unexpected expression node {type(expr).__name__}")


def expand_patterns(
    expr: Expr, registry: FieldRegistry = DEFAULT_REGISTRY
) -> List[Pattern]:
    """Convert to DNF and expand each pattern into parse-order chains.

    Returns the fully expanded, de-duplicated pattern list. Raises
    :class:`FilterSemanticsError` if every pattern is contradictory.
    """
    raw = to_dnf(expr)
    expanded: List[Pattern] = []
    seen: Set[tuple] = set()
    any_input = False
    for pattern in raw:
        any_input = True
        if not pattern:
            # An empty conjunction (match-all) subsumes everything,
            # including non-IP traffic: the trie root itself terminates.
            return [[]]
        for chain in _expand_one(pattern, registry):
            key = tuple(str(p) for p in chain)
            if key not in seen:
                seen.add(key)
                expanded.append(chain)
    if any_input and not expanded:
        raise FilterSemanticsError(
            "filter is unsatisfiable: every DNF pattern is contradictory"
        )
    if not any_input:
        # MATCH_ALL: a single empty pattern (the trie root is terminal).
        return [[]]
    return expanded


def _expand_one(
    pattern: Pattern, registry: FieldRegistry
) -> List[Pattern]:
    """Expand a single conjunction into zero or more ordered chains."""
    preds = _dedup(pattern)
    by_proto: Dict[str, List[Predicate]] = {}
    for pred in preds:
        by_proto.setdefault(pred.protocol, []).append(pred)

    ip_versions = [p for p in _IP_PROTOS if p in by_proto]
    transports = [p for p in _TRANSPORTS if p in by_proto]
    app_protos = [
        name for name in by_proto
        if registry.protocol(name).layer is Layer.CONNECTION
    ]

    if len(ip_versions) > 1 or len(transports) > 1 or len(app_protos) > 1:
        return []  # contradictory conjunction, prune

    app = app_protos[0] if app_protos else None
    ip_choices = ip_versions or list(_IP_PROTOS)
    if transports:
        transport_choices: List[Optional[str]] = list(transports)
    elif app is not None:
        # A transport predicate was not written but the app protocol
        # constrains it (tls rides tcp; dns rides udp or tcp).
        transport_choices = list(registry.protocol(app).transports)
    else:
        transport_choices = [None]

    chains: List[Pattern] = []
    for ip_proto in ip_choices:
        for transport in transport_choices:
            chain = _build_chain(by_proto, ip_proto, transport, app)
            if chain is not None:
                chains.append(chain)
    return chains


def _build_chain(
    by_proto: Dict[str, List[Predicate]],
    ip_proto: str,
    transport: Optional[str],
    app: Optional[str],
) -> Optional[Pattern]:
    """Assemble one ordered chain in header parse order."""
    chain: Pattern = [Predicate("eth")]
    chain.extend(_proto_section(by_proto, "eth", unary_done=True))
    chain.append(Predicate(ip_proto))
    chain.extend(_proto_section(by_proto, ip_proto, unary_done=True))
    if transport is not None:
        chain.append(Predicate(transport))
        chain.extend(_proto_section(by_proto, transport, unary_done=True))
    if app is not None:
        chain.append(Predicate(app))
        chain.extend(_proto_section(by_proto, app, unary_done=True))
    return _dedup(chain)


def _proto_section(
    by_proto: Dict[str, List[Predicate]], proto: str, unary_done: bool
) -> Pattern:
    """Binary predicates of ``proto`` in stable order."""
    return [p for p in by_proto.get(proto, ()) if not p.is_unary]


def _dedup(pattern: Sequence[Predicate]) -> Pattern:
    seen: Set[str] = set()
    out: Pattern = []
    for pred in pattern:
        key = str(pred)
        if key not in seen:
            seen.add(key)
            out.append(pred)
    return out
