"""Filter evaluation results shared by all sub-filter layers."""

from __future__ import annotations


class FilterResult:
    """Outcome of applying a sub-filter, mirroring Retina's enum.

    * ``no_match()`` — the data cannot satisfy any filter pattern;
      downstream processing for it can stop.
    * ``terminal(node)`` — some pattern is fully satisfied; ``node`` is
      the trie node id of the matched pattern's leaf.
    * ``non_terminal(node)`` — a pattern's prefix matched up to trie
      node ``node``; later layers resume matching from there.
    """

    __slots__ = ("matched", "terminal", "node")

    def __init__(self, matched: bool, terminal: bool, node: int) -> None:
        self.matched = matched
        self.terminal = terminal
        self.node = node

    @classmethod
    def no_match(cls) -> "FilterResult":
        return _NO_MATCH

    @classmethod
    def match_terminal(cls, node: int) -> "FilterResult":
        return cls(True, True, node)

    @classmethod
    def match_non_terminal(cls, node: int) -> "FilterResult":
        return cls(True, False, node)

    def __repr__(self) -> str:
        if not self.matched:
            return "FilterResult.NoMatch"
        kind = "Terminal" if self.terminal else "NonTerminal"
        return f"FilterResult.Match{kind}({self.node})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FilterResult)
            and self.matched == other.matched
            and self.terminal == other.terminal
            and self.node == other.node
        )

    def __hash__(self) -> int:
        return hash((self.matched, self.terminal, self.node))


_NO_MATCH = FilterResult(False, False, -1)
