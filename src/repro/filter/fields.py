"""Extensible registry of filterable protocols and fields.

In Retina, filter identifiers are not hard-wired into the framework:
protocol modules expose the fields the filter language may reference
(Section 3.3). This module is the Python equivalent — a registry that
protocol modules populate at import time and that the filter parser,
code generator, and hardware-rule expander consult.

Layers follow the paper's decomposition:

* ``PACKET`` — evaluable per packet from headers (eth/ipv4/ipv6/tcp/udp).
* ``CONNECTION`` — evaluable once the L7 protocol is identified
  (unary app-protocol predicates such as ``tls``).
* ``SESSION`` — evaluable only after a full application-layer session is
  parsed (e.g. ``tls.sni``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import FilterSemanticsError


class Layer(enum.IntEnum):
    """Filter layer a predicate is evaluated at (ordering matters)."""

    PACKET = 0
    CONNECTION = 1
    SESSION = 2


class ValueType(enum.Enum):
    """Type of a field's value, constraining the operators allowed."""

    INT = "int"
    STRING = "string"
    ADDR = "addr"


@dataclass(frozen=True)
class FieldDef:
    """A filterable field exposed by a protocol module.

    Attributes:
        name: Field name as written in filters (``ttl`` in ``ipv4.ttl``).
        vtype: Value type, used to validate operators and RHS literals.
        accessors: Accessor method names on the parsed object. Synthetic
            fields like ``tcp.port`` list two accessors with OR
            semantics (either side matching satisfies the predicate).
        hw_supported: Whether typical NIC flow tables can match on it.
    """

    name: str
    vtype: ValueType
    accessors: Tuple[str, ...]
    hw_supported: bool = False


@dataclass(frozen=True)
class ProtocolDef:
    """A protocol known to the filter language.

    Attributes:
        name: Protocol identifier as written in filters.
        layer: Layer of the protocol's *unary* predicate.
        fields: Binary-predicate fields, keyed by name.
        field_layer: Layer at which the binary fields are evaluated
            (session for app protocols, packet for header protocols).
        encapsulates: For packet-layer protocols, the protocols that may
            appear directly above this one (used for chain expansion).
        transports: For app-layer protocols, which transport protocols
            can carry them (used for chain expansion).
        hw_supported: Whether the unary predicate can become a NIC rule.
    """

    name: str
    layer: Layer
    fields: Dict[str, FieldDef] = field(default_factory=dict)
    field_layer: Layer = Layer.PACKET
    encapsulates: Tuple[str, ...] = ()
    transports: Tuple[str, ...] = ()
    hw_supported: bool = False


class FieldRegistry:
    """Registry mapping protocol names to their definitions."""

    def __init__(self) -> None:
        self._protocols: Dict[str, ProtocolDef] = {}

    def register(self, proto: ProtocolDef) -> None:
        """Register (or replace) a protocol definition."""
        self._protocols[proto.name] = proto

    def protocol(self, name: str) -> ProtocolDef:
        try:
            return self._protocols[name]
        except KeyError:
            raise FilterSemanticsError(f"unknown protocol '{name}'") from None

    def field(self, proto_name: str, field_name: str) -> FieldDef:
        proto = self.protocol(proto_name)
        try:
            return proto.fields[field_name]
        except KeyError:
            raise FilterSemanticsError(
                f"protocol '{proto_name}' has no field '{field_name}'"
            ) from None

    def protocols(self) -> List[str]:
        return sorted(self._protocols)

    def app_protocols(self) -> List[str]:
        return sorted(
            name for name, p in self._protocols.items()
            if p.layer is Layer.CONNECTION
        )

    def __contains__(self, name: str) -> bool:
        return name in self._protocols


def _int_field(name: str, accessors: Sequence[str], hw: bool = False) -> FieldDef:
    return FieldDef(name, ValueType.INT, tuple(accessors), hw)


def _str_field(name: str, accessors: Sequence[str]) -> FieldDef:
    return FieldDef(name, ValueType.STRING, tuple(accessors))


def _addr_field(name: str, accessors: Sequence[str], hw: bool = False) -> FieldDef:
    return FieldDef(name, ValueType.ADDR, tuple(accessors), hw)


def default_registry() -> FieldRegistry:
    """Build the registry with the built-in protocol modules.

    Header protocols mirror :mod:`repro.packet`; application protocols
    mirror :mod:`repro.protocols`. New protocol modules extend the
    language simply by registering here.
    """
    reg = FieldRegistry()

    reg.register(ProtocolDef(
        name="eth",
        layer=Layer.PACKET,
        fields={"ethertype": _int_field("ethertype", ["next_protocol"])},
        encapsulates=("ipv4", "ipv6"),
        hw_supported=True,
    ))
    ip_fields_v4 = {
        "src_addr": _addr_field("src_addr", ["src_addr"], hw=True),
        "dst_addr": _addr_field("dst_addr", ["dst_addr"], hw=True),
        "addr": _addr_field("addr", ["src_addr", "dst_addr"], hw=True),
        "ttl": _int_field("ttl", ["ttl"]),
        "dscp": _int_field("dscp", ["dscp"]),
        "ecn": _int_field("ecn", ["ecn"]),
        "total_length": _int_field("total_length", ["total_length"]),
        "identification": _int_field("identification", ["identification"]),
        "protocol": _int_field("protocol", ["protocol"], hw=True),
    }
    reg.register(ProtocolDef(
        name="ipv4",
        layer=Layer.PACKET,
        fields=ip_fields_v4,
        encapsulates=("tcp", "udp"),
        hw_supported=True,
    ))
    reg.register(ProtocolDef(
        name="ipv6",
        layer=Layer.PACKET,
        fields={
            "src_addr": _addr_field("src_addr", ["src_addr"], hw=True),
            "dst_addr": _addr_field("dst_addr", ["dst_addr"], hw=True),
            "addr": _addr_field("addr", ["src_addr", "dst_addr"], hw=True),
            "hop_limit": _int_field("hop_limit", ["hop_limit"]),
            "flow_label": _int_field("flow_label", ["flow_label"]),
        },
        encapsulates=("tcp", "udp"),
        hw_supported=True,
    ))
    reg.register(ProtocolDef(
        name="tcp",
        layer=Layer.PACKET,
        fields={
            "src_port": _int_field("src_port", ["src_port"], hw=True),
            "dst_port": _int_field("dst_port", ["dst_port"], hw=True),
            "port": _int_field("port", ["src_port", "dst_port"], hw=True),
            "flags": _int_field("flags", ["flags"]),
            "window": _int_field("window", ["window"]),
            "seq_no": _int_field("seq_no", ["seq_no"]),
        },
        hw_supported=True,
    ))
    reg.register(ProtocolDef(
        name="udp",
        layer=Layer.PACKET,
        fields={
            "src_port": _int_field("src_port", ["src_port"], hw=True),
            "dst_port": _int_field("dst_port", ["dst_port"], hw=True),
            "port": _int_field("port", ["src_port", "dst_port"], hw=True),
            "length": _int_field("length", ["length"]),
        },
        hw_supported=True,
    ))
    reg.register(ProtocolDef(
        name="icmp",
        layer=Layer.PACKET,
        fields={
            "type": _int_field("type", ["icmp_type"]),
            "code": _int_field("code", ["code"]),
            "identifier": _int_field("identifier", ["identifier"]),
            "sequence": _int_field("sequence", ["sequence"]),
        },
    ))

    # Application-layer protocols: the unary predicate is a CONNECTION
    # predicate (decided once the service is identified); binary fields
    # are SESSION predicates (decided once the session is fully parsed).
    reg.register(ProtocolDef(
        name="tls",
        layer=Layer.CONNECTION,
        field_layer=Layer.SESSION,
        transports=("tcp",),
        fields={
            "sni": _str_field("sni", ["sni"]),
            "cipher": _str_field("cipher", ["cipher"]),
            "version": _str_field("version", ["version"]),
            "client_version": _str_field("client_version", ["client_version"]),
            "cert_count": _int_field("cert_count", ["cert_count"]),
        },
    ))
    reg.register(ProtocolDef(
        name="http",
        layer=Layer.CONNECTION,
        field_layer=Layer.SESSION,
        transports=("tcp",),
        fields={
            "method": _str_field("method", ["method"]),
            "uri": _str_field("uri", ["uri"]),
            "host": _str_field("host", ["host"]),
            "user_agent": _str_field("user_agent", ["user_agent"]),
            "version": _str_field("version", ["version"]),
            "status_code": _int_field("status_code", ["status_code"]),
        },
    ))
    reg.register(ProtocolDef(
        name="ssh",
        layer=Layer.CONNECTION,
        field_layer=Layer.SESSION,
        transports=("tcp",),
        fields={
            "client_version": _str_field("client_version", ["client_version"]),
            "server_version": _str_field("server_version", ["server_version"]),
            "client_software": _str_field("client_software", ["client_software"]),
            "server_software": _str_field("server_software", ["server_software"]),
        },
    ))
    reg.register(ProtocolDef(
        name="dns",
        layer=Layer.CONNECTION,
        field_layer=Layer.SESSION,
        transports=("udp", "tcp"),
        fields={
            "query_name": _str_field("query_name", ["query_name"]),
            "query_type": _str_field("query_type", ["query_type"]),
            "response_code": _int_field("response_code", ["response_code"]),
        },
    ))
    reg.register(ProtocolDef(
        name="quic",
        layer=Layer.CONNECTION,
        field_layer=Layer.SESSION,
        transports=("udp",),
        fields={
            "version": _str_field("version", ["version"]),
            "dcid": _str_field("dcid", ["dcid"]),
        },
    ))
    return reg


#: Shared default registry used when callers do not supply their own.
DEFAULT_REGISTRY = default_registry()
