"""Reference (oracle) filter evaluation.

Evaluates a parsed filter expression *directly* — no DNF, no trie, no
decomposition — against a complete view of a connection: its packets'
headers, its identified service, and its parsed sessions. Used by the
test suite as an oracle for the decomposed four-layer pipeline: for any
flow, the subscription must deliver iff the reference says the filter
is satisfiable by that flow.

Semantics per layer (matching the decomposed filters):

* a packet-layer predicate holds for the flow if **some packet** of the
  flow satisfies it (the packet filter admits the flow on any match);
* a connection-layer predicate holds if the identified service is that
  protocol;
* a session-layer predicate holds if **some parsed session** satisfies
  it.

A conjunction must hold with a *consistent* witness packet for its
packet-layer predicates (they are checked against the same packet, as
the packet filter does), while session predicates may be witnessed by
any one session.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from repro.filter.ast import And, Expr, Or, Pred, Predicate
from repro.filter.dnf import expand_patterns
from repro.filter.fields import DEFAULT_REGISTRY, FieldRegistry, Layer
from repro.filter.interp import evaluate_binary
from repro.packet.mbuf import Mbuf
from repro.packet.stack import PacketStack, parse_stack


class FlowView:
    """Everything the oracle may look at for one flow."""

    def __init__(
        self,
        packets: Sequence[Mbuf],
        service: Optional[str] = None,
        sessions: Sequence[Any] = (),
    ) -> None:
        self.stacks: List[PacketStack] = [parse_stack(m) for m in packets]
        self.service = service
        self.sessions = list(sessions)


def _headers_of(stack: PacketStack) -> dict:
    headers = {"eth": stack.eth}
    if stack.ip is not None:
        key = "ipv4" if stack.ip.version() == 4 else "ipv6"
        headers[key] = stack.ip
    if stack.tcp is not None:
        headers["tcp"] = stack.tcp
    if stack.udp is not None:
        headers["udp"] = stack.udp
    if stack.icmp is not None:
        headers["icmp"] = stack.icmp
    return headers


def _packet_pred_holds(pred: Predicate, headers: dict,
                       registry: FieldRegistry) -> bool:
    obj = headers.get(pred.protocol)
    if obj is None:
        return False
    if pred.is_unary:
        return True
    return evaluate_binary(pred, obj, registry)


def _conn_pred_holds(pred: Predicate, view: FlowView) -> bool:
    return view.service == pred.protocol


def _session_pred_holds(pred: Predicate, session: Any,
                        registry: FieldRegistry) -> bool:
    if session is None:
        return False
    if getattr(session, "protocol", None) != pred.protocol:
        return False
    if pred.is_unary:
        return True
    return evaluate_binary(pred, session.data, registry)


def flow_matches(
    expr: Expr,
    view: FlowView,
    registry: FieldRegistry = DEFAULT_REGISTRY,
) -> bool:
    """True if the flow can satisfy the filter expression.

    Works pattern by pattern over the expanded DNF (so witness
    consistency rules match the decomposed filters'): a pattern holds
    if some packet satisfies all its packet predicates, the service
    satisfies its connection predicate, and some session satisfies all
    its session predicates.
    """
    patterns = expand_patterns(expr, registry)
    for pattern in patterns:
        if not pattern:
            return True  # match-all
        packet_preds = [p for p in pattern
                        if p.layer(registry) is Layer.PACKET]
        conn_preds = [p for p in pattern
                      if p.layer(registry) is Layer.CONNECTION]
        session_preds = [p for p in pattern
                         if p.layer(registry) is Layer.SESSION]
        if not any(
            all(_packet_pred_holds(p, _headers_of(stack), registry)
                for p in packet_preds)
            for stack in view.stacks
        ):
            continue
        if conn_preds and not all(
            _conn_pred_holds(p, view) for p in conn_preds
        ):
            continue
        if session_preds:
            if not any(
                all(_session_pred_holds(p, session, registry)
                    for p in session_preds)
                for session in view.sessions
            ):
                continue
        return True
    return False
