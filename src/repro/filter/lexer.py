"""Tokenizer for the filter language.

The token set is deliberately small: quoted strings, comparison
operators, parentheses, and "atoms" — unquoted runs of identifier/value
characters (``tls.sni``, ``443``, ``3::b/125``, ``80..100``). Atoms are
disambiguated by the parser from their position: before an operator they
are ``proto[.field]`` references, after one they are literals. The
keywords ``and``/``or``/``in``/``matches`` get their own token kinds.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import FilterSyntaxError


class TokKind(enum.Enum):
    ATOM = "atom"
    STRING = "string"
    OP = "op"
    LPAREN = "("
    RPAREN = ")"
    AND = "and"
    OR = "or"
    IN = "in"
    MATCHES = "matches"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    pos: int


_KEYWORDS = {
    "and": TokKind.AND,
    "or": TokKind.OR,
    "in": TokKind.IN,
    "matches": TokKind.MATCHES,
}

# Order matters: multi-char operators before single-char prefixes.
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<op>!=|>=|<=|=|>|<|~)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<atom>[A-Za-z0-9_.:/\-]+)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`FilterSyntaxError` on bad input."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise FilterSyntaxError(
                f"unexpected character {text[pos]!r} at {pos}", pos
            )
        if match.lastgroup != "ws":
            tokens.append(_make_token(match))
        pos = match.end()
    tokens.append(Token(TokKind.EOF, "", len(text)))
    return tokens


def _make_token(match: "re.Match[str]") -> Token:
    kind = match.lastgroup
    text = match.group()
    pos = match.start()
    if kind == "string":
        # Strip quotes, process escapes for \' and \\ only (regex bodies
        # frequently contain backslashes that must survive verbatim).
        body = text[1:-1].replace("\\'", "'")
        return Token(TokKind.STRING, body, pos)
    if kind == "op":
        if text == "~":
            return Token(TokKind.MATCHES, text, pos)
        return Token(TokKind.OP, text, pos)
    if kind == "lparen":
        return Token(TokKind.LPAREN, text, pos)
    if kind == "rparen":
        return Token(TokKind.RPAREN, text, pos)
    keyword = _KEYWORDS.get(text)
    if keyword is not None:
        return Token(keyword, text, pos)
    return Token(TokKind.ATOM, text, pos)
