"""Static code generation of filter functions (Section 4 / Appendix B).

Retina uses Rust procedural macros to bake the decomposed filter into
native conditionals at compile time. The Python analogue: we generate
Python source for the three software sub-filters, ``compile()`` it once,
and ``exec`` it into a module namespace. Regexes, CIDR networks, and
address constants are hoisted into that namespace (the ``lazy_static``
trick from Section 4.1), so per-packet evaluation runs straight-line
conditionals with zero interpretation of the filter structure — exactly
the property Appendix B benchmarks against the interpreted walker in
:mod:`repro.filter.interp`.

Generated functions:

* ``packet_filter(mbuf) -> FilterResult`` — parses headers in place
  (the ``if let`` ladder of Figure 3) and reports the deepest matching
  packet-layer trie node.
* ``connection_filter(conn, pkt_term_node) -> FilterResult`` — branches
  on the packet filter's reported node and the identified service.
* ``session_filter(session, conn_term_node) -> bool`` — evaluates
  session-layer predicates on parsed application data.
"""

from __future__ import annotations

import ipaddress
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import PacketParseError
from repro.filter.ast import Op, Predicate
from repro.filter.batch import (
    encode_verdict,
    gen_batch_condition,
    trie_batch_supported,
    unary_kind,
)
from repro.filter.fields import DEFAULT_REGISTRY, FieldRegistry, Layer
from repro.filter.result import FilterResult
from repro.filter.trie import PredicateTrie, TrieNode
from repro.packet.ethernet import Ethernet
from repro.packet.icmp import Icmp
from repro.packet.ipv4 import Ipv4
from repro.packet.ipv6 import Ipv6
from repro.packet.stack import parse_stack
from repro.packet.tcp import Tcp
from repro.packet.udp import Udp

_PARSERS = {"ipv4": Ipv4, "ipv6": Ipv6, "tcp": Tcp, "udp": Udp,
            "icmp": Icmp}

#: Protocols whose parsed view lives as a slot on the PacketStack; the
#: generated packet filter reads these instead of re-parsing headers.
_STACK_SLOTS = frozenset({"ipv4", "ipv6", "tcp", "udp", "icmp"})


def _try_parse(parse_fn, outer):
    """``if let Ok(x) = parse(..)`` — None instead of an exception."""
    try:
        return parse_fn(outer)
    except PacketParseError:
        return None


def _try_eth(mbuf):
    try:
        return Ethernet.parse(mbuf)
    except PacketParseError:
        return None


class _ConstPool:
    """Hoists regex/network/address constants into the exec namespace."""

    def __init__(self) -> None:
        self.values: Dict[str, Any] = {}
        self._counts = {"RE": 0, "NET": 0, "ADDR": 0}

    def add(self, prefix: str, value: Any) -> str:
        name = f"{prefix}{self._counts[prefix]}"
        self._counts[prefix] += 1
        self.values[name] = value
        return name


class _SourceWriter:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _binary_condition(
    pred: Predicate,
    var: str,
    pool: _ConstPool,
    registry: FieldRegistry,
) -> str:
    """Render a binary predicate as a Python boolean expression.

    Synthetic fields with several accessors (``tcp.port``) OR the
    per-accessor comparisons, matching Figure 3's
    ``tcp.src_port() >= 100 || tcp.dst_port() >= 100``.
    """
    fdef = registry.field(pred.protocol, pred.field)
    clauses = [
        _one_comparison(pred, f"{var}.{accessor}()", pool)
        for accessor in fdef.accessors
    ]
    if len(clauses) == 1:
        return clauses[0]
    return " or ".join(f"({c})" for c in clauses)


def _one_comparison(pred: Predicate, value_expr: str, pool: _ConstPool) -> str:
    """Render one accessor comparison.

    Wireshark semantics for absent fields: a predicate on a field the
    data does not carry (e.g. ``http.status_code`` on a request-only
    transaction) never matches — including ``!=``. The generated code
    binds the accessor result once with a walrus and guards on ``None``.
    """
    op, value = pred.op, pred.value
    guard = f"(_v := {value_expr}) is not None and "
    if op is Op.MATCHES:
        name = pool.add("RE", re.compile(value))
        return f"({guard}{name}.search(_v) is not None)"
    if op is Op.IN:
        if isinstance(value, tuple):
            return f"({guard}{value[0]} <= _v <= {value[1]})"
        name = pool.add("NET", value)
        return f"({guard}_v in {name})"
    if isinstance(value, (ipaddress.IPv4Address, ipaddress.IPv6Address)):
        rhs = pool.add("ADDR", value)
    else:
        rhs = repr(value)
    python_op = {"=": "==", "!=": "!=", "<": "<", "<=": "<=",
                 ">": ">", ">=": ">="}[op.value]
    return f"({guard}_v {python_op} {rhs})"


def _is_report(node: TrieNode) -> bool:
    return node.terminal or any(
        c.layer is not Layer.PACKET for c in node.children
    )


def _result_stmt(node: TrieNode) -> str:
    if node.terminal:
        return f"return _terminal({node.id})"
    return f"return _non_terminal({node.id})"


class GeneratedFilter:
    """Holds the compiled sub-filter functions and their source."""

    def __init__(
        self,
        trie: PredicateTrie,
        registry: FieldRegistry = DEFAULT_REGISTRY,
    ) -> None:
        self.trie = trie
        self.registry = registry
        pool = _ConstPool()
        packet_src = self._gen_packet_filter(pool)
        batch_src = self._gen_packet_filter_batch()
        conn_src = self._gen_connection_filter(pool)
        session_src = self._gen_session_filter(pool)
        pieces = [packet_src]
        if batch_src is not None:
            pieces.append(batch_src)
        pieces.extend([conn_src, session_src])
        self.source = "\n".join(pieces)
        namespace: Dict[str, Any] = {
            "_try": _try_parse,
            "_try_eth": _try_eth,
            "_stack": parse_stack,
            "_terminal": FilterResult.match_terminal,
            "_non_terminal": FilterResult.match_non_terminal,
            "_NO_MATCH": FilterResult.no_match(),
            "Ipv4": Ipv4, "Ipv6": Ipv6, "Tcp": Tcp, "Udp": Udp,
            "Icmp": Icmp,
            **pool.values,
        }
        code = compile(self.source, "<retina-filter>", "exec")
        exec(code, namespace)  # noqa: S102 - this is the codegen backend
        self.packet_filter = namespace["packet_filter"]
        #: Batch variant over ColumnarBatch columns, or None when the
        #: trie uses predicates the columnar layer cannot express.
        self.packet_filter_batch = namespace.get("packet_filter_batch")
        self.connection_filter = namespace["connection_filter"]
        self.session_filter = namespace["session_filter"]

    # -- packet filter -------------------------------------------------------
    def _gen_packet_filter(self, pool: _ConstPool) -> str:
        """Emit ``packet_filter(mbuf)`` reading parse-once stack slots.

        The emitted ladder branches on the memoized
        :class:`~repro.packet.stack.PacketStack` (``mbuf.stack``,
        parsed at most once per frame) instead of re-running header
        parsers per filter layer — the zero-copy analogue of Figure 3's
        ``if let`` ladder over in-mbuf views.
        """
        writer = _SourceWriter()
        writer.emit(0, "def packet_filter(mbuf):")
        root = self.trie.root
        if root.terminal:
            writer.emit(1, "return _terminal(0)")
            return writer.source()
        writer.emit(1, "stack = mbuf.stack")
        writer.emit(1, "if stack is None:")
        writer.emit(2, "stack = _stack(mbuf)")
        writer.emit(1, "eth = stack.eth")
        writer.emit(1, "if eth is None:")
        writer.emit(2, "return _NO_MATCH")
        env = {"eth": "eth"}
        # The root's packet-layer children are 'eth' unary nodes (chain
        # expansion always begins with eth), whose predicate is already
        # satisfied by the successful parse above.
        for child in root.children:
            if child.layer is Layer.PACKET:
                self._emit_packet_node(writer, child, 1, env, pool,
                                       parsed=True)
        writer.emit(1, "return _NO_MATCH")
        return writer.source()

    def _emit_packet_node(
        self,
        writer: _SourceWriter,
        node: TrieNode,
        indent: int,
        env: Dict[str, str],
        pool: _ConstPool,
        parsed: bool = False,
    ) -> None:
        pred = node.pred
        assert pred is not None
        if pred.is_unary:
            if parsed:
                # Predicate already satisfied (eth at the root).
                self._emit_packet_children(writer, node, indent, env, pool)
                return
            var = pred.protocol
            assert var in _STACK_SLOTS, f"no stack slot for {var!r}"
            writer.emit(indent, f"{var} = stack.{var}")
            writer.emit(indent, f"if {var} is not None:")
            child_env = dict(env)
            child_env[pred.protocol] = var
            self._emit_packet_children(writer, node, indent + 1, child_env,
                                       pool)
        else:
            var = env[pred.protocol]
            cond = _binary_condition(pred, var, pool, self.registry)
            writer.emit(indent, f"if {cond}:")
            self._emit_packet_children(writer, node, indent + 1, env, pool)

    def _emit_packet_children(
        self,
        writer: _SourceWriter,
        node: TrieNode,
        indent: int,
        env: Dict[str, str],
        pool: _ConstPool,
    ) -> None:
        for child in node.children:
            if child.layer is Layer.PACKET:
                self._emit_packet_node(writer, child, indent, env, pool)
        if _is_report(node):
            writer.emit(indent, _result_stmt(node))

    # -- batch packet filter -------------------------------------------------
    def _gen_packet_filter_batch(self) -> Optional[str]:
        """Emit ``packet_filter_batch(cols)``: mask predicates over columns.

        Instead of one generated function call per packet, the batch
        variant evaluates each trie node once per *burst* as a boolean
        mask list-comprehension over the decoded columns, then writes
        encoded verdicts with first-write-wins precedence loops in the
        same depth-first order as the scalar ladder's ``return``
        statements — so per-row results are identical by construction.
        Verdicts are only meaningful for rows with ``cols.fast[i]``
        set; every mask descends from ``cols.fast``, so other rows
        stay at ``-1``. Returns ``None`` (no batch function) when the
        trie contains predicates the columns cannot express.
        """
        if not trie_batch_supported(self.trie, self.registry):
            return None
        writer = _SourceWriter()
        writer.emit(0, "def packet_filter_batch(cols):")
        root = self.trie.root
        if root.terminal:
            writer.emit(1, "return [1 if f else -1 for f in cols.fast]")
            return writer.source()
        body = _SourceWriter()
        used_cols: set = set()
        for child in root.children:
            if child.layer is Layer.PACKET:
                self._emit_batch_node(body, child, "m0", used_cols)
        writer.emit(1, "n = cols.n")
        writer.emit(1, "out = [-1] * n")
        writer.emit(1, "m0 = cols.fast")
        for col in sorted(used_cols):
            writer.emit(1, f"c_{col} = cols.{col}")
        writer.lines.extend(body.lines)
        writer.emit(1, "return out")
        return writer.source()

    def _emit_batch_node(
        self,
        writer: _SourceWriter,
        node: TrieNode,
        parent_mask: str,
        used_cols: set,
    ) -> None:
        pred = node.pred
        assert pred is not None
        mask = parent_mask
        if pred.is_unary:
            kind = unary_kind(pred.protocol)
            if kind == "never":
                # Fast rows are plain IP TCP/UDP; this subtree can
                # only match on the scalar slow path.
                return
            if kind != "always":
                col, val = kind
                used_cols.add(col)
                mask = f"m{node.id}"
                writer.emit(1, f"{mask} = [{parent_mask}[i] and "
                               f"c_{col}[i] == {val} for i in range(n)]")
        else:
            cond = gen_batch_condition(pred, used_cols, self.registry)
            mask = f"m{node.id}"
            writer.emit(1, f"{mask} = [{parent_mask}[i] and ({cond}) "
                           f"for i in range(n)]")
        for child in node.children:
            if child.layer is Layer.PACKET:
                self._emit_batch_node(writer, child, mask, used_cols)
        if _is_report(node):
            verdict = encode_verdict(node.id, node.terminal)
            writer.emit(1, "for i in range(n):")
            writer.emit(2, f"if {mask}[i] and out[i] < 0:")
            writer.emit(3, f"out[i] = {verdict}")

    # -- connection filter -----------------------------------------------------
    def _gen_connection_filter(self, pool: _ConstPool) -> str:
        writer = _SourceWriter()
        writer.emit(0, "def connection_filter(conn, pkt_term_node):")
        writer.emit(1, "service = conn.service()")
        arms = 0
        for report in self.trie.packet_report_nodes():
            if report.terminal:
                continue  # terminal packet matches skip the conn filter
            candidates = self.trie.connection_candidates(report)
            if not candidates:
                continue
            writer.emit(1, f"if pkt_term_node == {report.id}:")
            for conn_node in candidates:
                proto = conn_node.pred.protocol
                writer.emit(2, f"if service == {proto!r}:")
                if conn_node.terminal:
                    writer.emit(3, f"return _terminal({conn_node.id})")
                else:
                    writer.emit(3, f"return _non_terminal({conn_node.id})")
            writer.emit(2, "return _NO_MATCH")
            arms += 1
        writer.emit(1, "return _NO_MATCH")
        return writer.source()

    # -- session filter ----------------------------------------------------------
    def _gen_session_filter(self, pool: _ConstPool) -> str:
        writer = _SourceWriter()
        writer.emit(0, "def session_filter(session, conn_term_node):")
        conn_nodes = [
            n for n in self.trie.nodes() if n.layer is Layer.CONNECTION
        ]
        for conn_node in conn_nodes:
            writer.emit(1, f"if conn_term_node == {conn_node.id}:")
            if conn_node.terminal:
                writer.emit(2, "return True")
                continue
            chains = self.trie.session_subtree(conn_node)
            if not chains:
                writer.emit(2, "return True")
                continue
            writer.emit(2, "d = session.data")
            for chain in chains:
                conds = [
                    _binary_condition(n.pred, "d", pool, self.registry)
                    for n in chain
                ]
                cond = " and ".join(f"({c})" for c in conds)
                writer.emit(2, f"if {cond}:")
                writer.emit(3, "return True")
            writer.emit(2, "return False")
        writer.emit(1, "return False")
        return writer.source()


def var_cls(proto: str) -> str:
    """Class name used in generated source for a protocol parser."""
    return {"ipv4": "Ipv4", "ipv6": "Ipv6", "tcp": "Tcp", "udp": "Udp",
            "icmp": "Icmp"}[proto]
