"""Deterministic, seeded fault injection.

Retina's value proposition is sustained analysis under hostile
conditions; this module makes every failure path *testable and
replayable*. A :class:`FaultPlan` is a declarative list of faults —
packet corruption/truncation, injected parser and callback exceptions,
worker crashes/hangs at a given batch, synthetic memory spikes — each
anchored to a deterministic coordinate (global packet index, per-core
delivery/parse ordinal, per-core batch sequence number, virtual time).
The same ``(seed, plan)`` therefore produces the same injections, the
same recovery actions, and a byte-identical
:class:`~repro.core.runtime.RuntimeReport` ``faults`` section across
runs.

Coordinates and cross-backend determinism:

- ``corrupt_packet`` / ``truncate_packet`` faults key on the **global
  packet index** in arrival order, applied in the parent before RSS
  dispatch — identical across the sequential backend, the parallel
  backend, and any worker count.
- ``callback_error`` / ``parser_error`` faults key on a **per-core
  ordinal** (the Nth delivery / parse invocation on that core). Both
  backends run identical per-core pipelines, so for a fixed core count
  the injections — and all downstream counters — are identical between
  sequential and parallel execution. Across *different* worker counts
  the ordinals land on different packets (the plan does not "permit"
  that comparison).
- ``worker_crash`` / ``worker_hang`` key on a per-core **batch sequence
  number** and only apply to the parallel backend (the sequential
  backend has no worker processes to kill; such faults are counted as
  skipped in the report).
- ``memory_spike`` keys on **virtual time**: from ``at_time`` on (for
  ``duration`` virtual seconds, or indefinitely) the named core's
  reported connection-table memory is inflated by ``bytes`` — enough to
  push a run over ``memory_limit_bytes`` on a schedule and exercise the
  record/evict/shed policies.

The ``seed`` feeds a per-fault :class:`random.Random` (keyed on the
fault's index in the plan, not on execution order) used only for
corruption content, so corrupted bytes are replayable regardless of
how faults interleave.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import FaultInjectionError, ProtocolError

#: Recognized fault kinds.
FAULT_KINDS = (
    "corrupt_packet",
    "truncate_packet",
    "callback_error",
    "parser_error",
    "worker_crash",
    "worker_hang",
    "memory_spike",
)

#: Fault kinds that target the parallel backend's worker processes.
WORKER_FAULT_KINDS = ("worker_crash", "worker_hang")


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault. Frozen + picklable (ships to workers)."""

    kind: str
    #: Global packet index (corrupt/truncate faults).
    at_packet: Optional[int] = None
    #: How many consecutive packets the packet fault covers.
    count: int = 1
    #: Bytes to keep when truncating (None: seeded random cut).
    keep_bytes: Optional[int] = None
    #: Per-core delivery ordinal (callback faults) or parse ordinal
    #: (parser faults); 0-based.
    at_ordinal: Optional[int] = None
    #: Repeat the callback/parser fault every N ordinals after the
    #: first hit (None: fire once).
    every: Optional[int] = None
    #: Target core for core-scoped faults (callback/parser/worker/
    #: memory). None means core 0 for worker faults and "all cores"
    #: for callback/parser/memory faults.
    core: Optional[int] = None
    #: Per-core batch sequence number (worker faults), 0-based.
    at_batch: Optional[int] = None
    #: Virtual-time anchor (memory spikes).
    at_time: Optional[float] = None
    #: Spike duration in virtual seconds (None: until end of run).
    duration: Optional[float] = None
    #: Spike size.
    bytes: int = 0

    def to_dict(self) -> Dict:
        out: Dict = {"kind": self.kind}
        for key in ("at_packet", "keep_bytes", "at_ordinal", "every",
                    "core", "at_batch", "at_time", "duration"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.count != 1:
            out["count"] = self.count
        if self.bytes:
            out["bytes"] = self.bytes
        return out


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FaultInjectionError(message)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative set of faults to inject into one run."""

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        for spec in self.faults:
            _require(spec.kind in FAULT_KINDS,
                     f"unknown fault kind {spec.kind!r}; "
                     f"known: {list(FAULT_KINDS)}")
            if spec.kind in ("corrupt_packet", "truncate_packet"):
                _require(spec.at_packet is not None and spec.at_packet >= 0,
                         f"{spec.kind} needs at_packet >= 0")
                _require(spec.count >= 1, f"{spec.kind}: count must be >= 1")
            elif spec.kind in ("callback_error", "parser_error"):
                _require(spec.at_ordinal is not None and spec.at_ordinal >= 0,
                         f"{spec.kind} needs at_ordinal >= 0")
                _require(spec.every is None or spec.every >= 1,
                         f"{spec.kind}: every must be >= 1")
            elif spec.kind in WORKER_FAULT_KINDS:
                _require(spec.at_batch is not None and spec.at_batch >= 0,
                         f"{spec.kind} needs at_batch >= 0")
            elif spec.kind == "memory_spike":
                _require(spec.at_time is not None and spec.at_time >= 0,
                         "memory_spike needs at_time >= 0")
                _require(spec.bytes > 0, "memory_spike needs bytes > 0")

    # -- construction ------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        _require(isinstance(data, dict), "fault plan must be an object")
        seed = data.get("seed", 0)
        _require(isinstance(seed, int), "fault plan seed must be an int")
        raw_faults = data.get("faults", [])
        _require(isinstance(raw_faults, list),
                 "fault plan 'faults' must be a list")
        specs: List[FaultSpec] = []
        allowed = {"kind", "at_packet", "count", "keep_bytes",
                   "at_ordinal", "every", "core", "at_batch", "at_time",
                   "duration", "bytes"}
        for raw in raw_faults:
            _require(isinstance(raw, dict) and "kind" in raw,
                     "each fault must be an object with a 'kind'")
            unknown = set(raw) - allowed
            _require(not unknown,
                     f"unknown fault field(s) {sorted(unknown)}")
            specs.append(FaultSpec(**raw))
        return cls(seed=seed, faults=tuple(specs))

    @classmethod
    def from_json(cls, source: Union[str, Path]) -> "FaultPlan":
        """Load a plan from a JSON file path or a JSON string."""
        text = str(source)
        if not text.lstrip().startswith("{"):
            text = Path(source).read_text()
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultInjectionError(
                f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def to_dict(self) -> Dict:
        return {"seed": self.seed,
                "faults": [spec.to_dict() for spec in self.faults]}

    # -- queries -----------------------------------------------------------
    @property
    def has_packet_faults(self) -> bool:
        return any(s.kind in ("corrupt_packet", "truncate_packet")
                   for s in self.faults)

    @property
    def has_worker_faults(self) -> bool:
        return any(s.kind in WORKER_FAULT_KINDS for s in self.faults)

    def worker_fault_at(self, core: int, seq: int,
                        suppressed: Tuple[int, ...] = ()
                        ) -> Optional[Tuple[int, FaultSpec]]:
        """The (plan index, spec) of a worker fault firing when ``core``
        receives batch ``seq``, skipping already-fired plan indices."""
        for index, spec in enumerate(self.faults):
            if spec.kind not in WORKER_FAULT_KINDS or index in suppressed:
                continue
            if (spec.core or 0) == core and spec.at_batch == seq:
                return index, spec
        return None

    def _fault_rng(self, index: int, packet: int = 0) -> random.Random:
        # Keyed on the fault's plan index (and, for multi-packet
        # faults, the packet index) so corruption bytes do not depend
        # on which other faults fired first.
        return random.Random(f"repro.fault:{self.seed}:{index}:{packet}")


class InjectedCallbackFault(RuntimeError):
    """The exception an injected ``callback_error`` fault raises —
    indistinguishable from a user callback raising ``RuntimeError`` as
    far as the isolation machinery is concerned."""


# ---------------------------------------------------------------------------
# parent-side injection: packet corruption/truncation
# ---------------------------------------------------------------------------
class PacketFaultInjector:
    """Mutates the traffic stream at planned global packet indices.

    Lives in the feeding process (parent), *before* RSS dispatch, so
    the corrupted stream — and everything downstream — is identical
    across backends and worker counts.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._events: Dict[int, List[Tuple[int, FaultSpec]]] = {}
        for index, spec in enumerate(plan.faults):
            if spec.kind not in ("corrupt_packet", "truncate_packet"):
                continue
            for offset in range(spec.count):
                self._events.setdefault(spec.at_packet + offset, []) \
                    .append((index, spec))
        self._plan = plan
        self.injected: Dict[str, int] = {}

    def wrap(self, traffic):
        """Wrap a traffic iterable; returns a generator that yields the
        same mbufs with planned faults applied."""
        from repro.packet.mbuf import Mbuf

        events = self._events
        injected = self.injected
        plan = self._plan
        for index, mbuf in enumerate(traffic):
            hits = events.get(index)
            if hits:
                data = mbuf.data
                for fault_index, spec in hits:
                    # The packet index is mixed in so multi-packet
                    # faults do not repeat the same mutation.
                    rng = plan._fault_rng(fault_index, index)
                    if spec.kind == "corrupt_packet":
                        data = _corrupt_bytes(data, rng)
                    else:  # truncate_packet
                        keep = spec.keep_bytes
                        if keep is None:
                            keep = rng.randrange(0, max(len(data), 1))
                        data = data[:keep]
                    injected[spec.kind] = injected.get(spec.kind, 0) + 1
                mbuf = Mbuf(data, timestamp=mbuf.timestamp,
                            port=mbuf.port)
            yield mbuf


def _corrupt_bytes(data: bytes, rng: random.Random) -> bytes:
    """Flip a handful of bytes at seeded offsets (never changes size)."""
    if not data:
        return data
    out = bytearray(data)
    for _ in range(rng.randrange(1, min(8, len(out)) + 1)):
        out[rng.randrange(len(out))] ^= rng.randrange(1, 256)
    return bytes(out)


# ---------------------------------------------------------------------------
# core-side injection: callback/parser exceptions, memory spikes
# ---------------------------------------------------------------------------
class CoreFaultInjector:
    """Per-core injector the pipeline consults at cold call sites.

    Constructed only when a plan actually has faults for this core's
    scope; ``CorePipeline`` keeps ``None`` otherwise so the disabled
    path costs nothing.
    """

    __slots__ = ("_callback_faults", "_parser_faults", "_spikes",
                 "_deliveries", "_parses", "_spikes_fired", "counters")

    def __init__(self, plan: FaultPlan, core_id: int) -> None:
        self._callback_faults: List[FaultSpec] = []
        self._parser_faults: List[FaultSpec] = []
        self._spikes: List[FaultSpec] = []
        for spec in plan.faults:
            if spec.core is not None and spec.core != core_id:
                continue
            if spec.kind == "callback_error":
                self._callback_faults.append(spec)
            elif spec.kind == "parser_error":
                self._parser_faults.append(spec)
            elif spec.kind == "memory_spike":
                self._spikes.append(spec)
        self._deliveries = 0
        self._parses = 0
        self._spikes_fired: set = set()
        #: Injection counts by kind (merged into CoreStats.fault_counters).
        self.counters: Dict[str, int] = {}

    @classmethod
    def for_core(cls, plan: Optional[FaultPlan],
                 core_id: int) -> Optional["CoreFaultInjector"]:
        if plan is None:
            return None
        injector = cls(plan, core_id)
        if not (injector._callback_faults or injector._parser_faults
                or injector._spikes):
            return None
        return injector

    @staticmethod
    def _fires(spec: FaultSpec, ordinal: int) -> bool:
        if ordinal < spec.at_ordinal:
            return False
        if ordinal == spec.at_ordinal:
            return True
        return spec.every is not None and \
            (ordinal - spec.at_ordinal) % spec.every == 0

    def on_deliver(self) -> None:
        """Called per delivery; raises to simulate the callback raising."""
        ordinal = self._deliveries
        self._deliveries += 1
        for spec in self._callback_faults:
            if self._fires(spec, ordinal):
                self.counters["callback_error"] = \
                    self.counters.get("callback_error", 0) + 1
                raise InjectedCallbackFault(
                    f"injected callback fault at delivery #{ordinal}")

    def on_parse(self) -> None:
        """Called per probe/parse invocation; raises a ProtocolError to
        simulate a buggy protocol parser."""
        ordinal = self._parses
        self._parses += 1
        for spec in self._parser_faults:
            if self._fires(spec, ordinal):
                self.counters["parser_error"] = \
                    self.counters.get("parser_error", 0) + 1
                raise ProtocolError(
                    f"injected parser fault at parse #{ordinal}")

    def memory_spike_bytes(self, now: float) -> int:
        """Synthetic extra bytes active at virtual time ``now``."""
        extra = 0
        for i, spec in enumerate(self._spikes):
            if now < spec.at_time:
                continue
            if spec.duration is not None and \
                    now >= spec.at_time + spec.duration:
                continue
            extra += spec.bytes
            # Count each spike once (on first activation), not per
            # query — the property is read at a call-site-dependent
            # cadence that must not leak into the report.
            if i not in self._spikes_fired:
                self._spikes_fired.add(i)
                self.counters["memory_spike"] = \
                    self.counters.get("memory_spike", 0) + 1
        return extra


# ---------------------------------------------------------------------------
# the faults section of the run report
# ---------------------------------------------------------------------------
@dataclass
class FaultReport:
    """``RuntimeReport.faults``: what was injected, what was survived.

    Every field is deterministic for a fixed ``(seed, plan)`` — wall
    clock never appears here — so two runs of the same plan produce
    byte-identical ``to_dict()`` output.
    """

    #: The plan's seed (None when no plan was configured but policies
    #: still produced resilience events).
    plan_seed: Optional[int] = None
    #: Injection counts by fault kind.
    injected: Dict[str, int] = field(default_factory=dict)
    #: Planned worker faults that could not apply (sequential backend).
    skipped_worker_faults: int = 0
    #: Callback exceptions absorbed by the ``isolate`` policy.
    callback_errors: int = 0
    #: Deliveries whose user callback was skipped post-quarantine.
    callbacks_suppressed: int = 0
    #: Cores whose subscription callback was quarantined.
    quarantined_cores: List[int] = field(default_factory=list)
    #: Parser exceptions absorbed at the probe/parse boundary.
    parser_exceptions: int = 0
    #: Connections evicted / new connections refused by memory policies.
    conns_evicted: int = 0
    conns_shed: int = 0
    #: Supervisor actions (parallel backend only).
    worker_restarts: int = 0
    replayed_batches: int = 0
    unreplayable_batches: int = 0
    lost_cores: List[int] = field(default_factory=list)
    #: Deterministic backoff schedule applied across restarts (seconds).
    restart_backoffs: List[float] = field(default_factory=list)
    #: True when the run completed with partial results.
    degraded: bool = False

    @property
    def any_events(self) -> bool:
        return bool(
            self.injected or self.callback_errors or self.parser_exceptions
            or self.conns_evicted or self.conns_shed or self.worker_restarts
            or self.lost_cores or self.quarantined_cores or self.degraded
            or self.skipped_worker_faults or self.callbacks_suppressed
        )

    def to_dict(self) -> Dict:
        return {
            "plan_seed": self.plan_seed,
            "injected": {k: self.injected[k] for k in sorted(self.injected)},
            "skipped_worker_faults": self.skipped_worker_faults,
            "callback_errors": self.callback_errors,
            "callbacks_suppressed": self.callbacks_suppressed,
            "quarantined_cores": sorted(self.quarantined_cores),
            "parser_exceptions": self.parser_exceptions,
            "conns_evicted": self.conns_evicted,
            "conns_shed": self.conns_shed,
            "worker_restarts": self.worker_restarts,
            "replayed_batches": self.replayed_batches,
            "unreplayable_batches": self.unreplayable_batches,
            "lost_cores": sorted(self.lost_cores),
            "restart_backoffs": list(self.restart_backoffs),
            "degraded": self.degraded,
        }


def restart_backoff(attempt: int, base: float = 0.05,
                    cap: float = 1.0) -> float:
    """Capped exponential backoff for worker restart ``attempt`` (0-based).

    Deterministic (no jitter): the schedule is part of the fault
    report's byte-identity guarantee. "Virtual-time aware" in the sense
    that the schedule is derived from the attempt count alone — the
    run's virtual clock never waits on it; only the wall-clock restart
    pauses."""
    return min(base * (2 ** attempt), cap)


def build_fault_report(config, core_stats,
                       packet_injector: Optional[PacketFaultInjector],
                       supervisor_summary: Optional[Dict] = None,
                       ) -> Optional[FaultReport]:
    """Assemble the report from per-core stats + parent-side state.

    ``core_stats`` is a ``{core_id: CoreStats}`` mapping (a dict rather
    than a list so degraded runs with lost cores keep correct ids).
    Returns None when no plan, non-default policy, or supervision was
    configured *and* nothing happened — keeping ``RuntimeReport.faults``
    absent for plain runs.
    """
    plan = config.fault_plan
    report = FaultReport(plan_seed=plan.seed if plan else None)
    if packet_injector is not None:
        for kind, count in packet_injector.injected.items():
            report.injected[kind] = report.injected.get(kind, 0) + count
    for core_id, stats in sorted(core_stats.items()):
        report.callback_errors += stats.callback_errors
        report.callbacks_suppressed += stats.callbacks_suppressed
        if stats.callback_quarantined:
            report.quarantined_cores.append(core_id)
        report.parser_exceptions += stats.parser_exceptions
        report.conns_evicted += stats.conns_evicted
        report.conns_shed += stats.conns_shed
        for kind, count in stats.fault_counters.items():
            report.injected[kind] = report.injected.get(kind, 0) + count
    if supervisor_summary is not None:
        report.worker_restarts = supervisor_summary.get("restarts", 0)
        report.replayed_batches = supervisor_summary.get("replayed", 0)
        report.unreplayable_batches = \
            supervisor_summary.get("unreplayable", 0)
        report.lost_cores = list(supervisor_summary.get("lost_cores", ()))
        report.restart_backoffs = \
            list(supervisor_summary.get("backoffs", ()))
        report.degraded = bool(supervisor_summary.get("degraded", False))
    elif plan is not None and not config.parallel:
        report.skipped_worker_faults = sum(
            1 for spec in plan.faults if spec.kind in WORKER_FAULT_KINDS)
    configured = (
        plan is not None
        or config.callback_error_policy != "raise"
        or config.memory_policy != "record"
        or config.supervise
    )
    if not configured and not report.any_events:
        return None
    return report
