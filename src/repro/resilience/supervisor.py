"""Worker supervision bookkeeping for the parallel backend.

The parallel backend (:mod:`repro.core.parallel`) owns the processes
and queues; this module owns the *state machine* that makes worker
failure survivable and — for planned faults — deterministic:

- per-core batch **sequence numbers** with per-batch acknowledgements
  (the heartbeat signal),
- a bounded per-core **redo log** of dispatched-but-unacknowledged
  batches, replayed to a restarted worker so in-flight data is not
  lost,
- **crash/hang accounting**: restart attempts with a capped
  exponential, deterministic backoff schedule
  (:func:`repro.resilience.faults.restart_backoff`), and a per-core
  restart budget after which the core is declared lost and the run
  completes *degraded* (partial stats),
- the **summary** consumed by
  :func:`repro.resilience.faults.build_fault_report`.

Determinism note: planned worker faults fire on a known batch sequence
number, and the dispatcher recovers *synchronously* (it pauses a core's
dispatch right after sending a fault-trigger batch until recovery
completes), so the replay set — and every counter here except wall
clock, which is never reported — is identical run to run.

This module deliberately imports nothing beyond the standard library,
:mod:`repro.errors`, and :mod:`repro.resilience.faults`, so it can be
shipped to (or imported by) worker processes without dragging the whole
runtime along.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.resilience.faults import FaultPlan, FaultSpec, restart_backoff


class RedoLog:
    """Bounded log of one core's dispatched-but-unacknowledged batches.

    ``record`` on dispatch, ``ack`` on acknowledgement; ``pending``
    is what a restarted worker must replay. When more than ``capacity``
    batches are in flight the oldest entries are evicted — if the
    worker later crashes before acknowledging them they are counted as
    unreplayable (data loss the bound made explicit).
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[int, list]" = OrderedDict()
        self._dropped_seqs: List[int] = []

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, seq: int, batch) -> None:
        self._entries[seq] = batch
        while len(self._entries) > self.capacity:
            dropped_seq, _ = self._entries.popitem(last=False)
            self._dropped_seqs.append(dropped_seq)

    def ack(self, seq: int) -> None:
        """Acknowledge every batch up to and including ``seq``.

        Cumulative by design, which is what lets the shm transport
        coalesce worker acks (one ack per ``_ACK_COALESCE`` batches,
        flushed on ring-idle, at FINISH, and always before a planned
        fault fires): acking the highest processed seq trims the same
        prefix the queue transport's one-ack-per-batch cadence would,
        so ``pending`` — the replay set after a crash — is identical
        under either transport.
        """
        for entry_seq in list(self._entries):
            if entry_seq <= seq:
                del self._entries[entry_seq]
            else:
                break
        if self._dropped_seqs:
            # An evicted batch the worker nevertheless processed is not
            # lost after all.
            self._dropped_seqs = [s for s in self._dropped_seqs
                                  if s > seq]

    def pending(self) -> List[Tuple[int, list]]:
        return list(self._entries.items())

    @property
    def unreplayable(self) -> int:
        """Evicted-and-never-acknowledged batches (lost on a crash)."""
        return len(self._dropped_seqs)


class _CoreState:
    __slots__ = ("next_seq", "redo", "restarts", "suppressed", "lost",
                 "last_heard", "last_rung", "last_epoch")

    def __init__(self, redo_capacity: int) -> None:
        self.next_seq = 0
        self.redo = RedoLog(redo_capacity)
        self.restarts = 0
        self.suppressed: Tuple[int, ...] = ()
        self.lost = False
        self.last_heard = time.monotonic()
        #: Overload-ladder rung carried on the core's last ack; a
        #: restarted worker is re-seeded at this rung so a crash cannot
        #: silently reopen the admission gate mid-overload.
        self.last_rung = 0
        #: Filter-table epoch carried on the core's last ack (0 for
        #: single-tenant pipelines). A restarted multi-tenant worker is
        #: rebuilt at this table state; epoch bumps still in the redo
        #: log re-apply idempotently during replay.
        self.last_epoch = 0


class WorkerSupervisor:
    """Tracks dispatch/ack/restart state for every worker core."""

    def __init__(self, cores: int, plan: Optional[FaultPlan],
                 max_restarts: int, redo_capacity: int,
                 heartbeat_timeout: float) -> None:
        self.plan = plan
        self.max_restarts = max_restarts
        self.heartbeat_timeout = heartbeat_timeout
        self._cores = [_CoreState(redo_capacity) for _ in range(cores)]
        # -- report fields ---------------------------------------------
        self.total_restarts = 0
        self.replayed_batches = 0
        self.unreplayable_batches = 0
        self.backoffs: List[float] = []
        #: Per-failure event records for the span/flight-recorder layer
        #: (:mod:`repro.telemetry.spans`): ``{"event": "worker_restart"
        #: | "worker_lost", "core": id, "detail": ...}``, in failure
        #: order. Deterministic for planned faults (no wall clock).
        self.failure_events: List[Dict] = []

    # -- dispatch ------------------------------------------------------
    def on_dispatch(self, core: int, batch
                    ) -> Tuple[int, Optional[Tuple[int, FaultSpec]]]:
        """Assign the next sequence number for a batch sent to ``core``
        and log it for replay. Returns ``(seq, planned_fault)`` where
        ``planned_fault`` is the ``(plan_index, spec)`` this batch will
        trigger in the worker, or None. When a fault is returned the
        dispatcher must recover the core before sending anything else
        to it (that pause is what makes the replay set deterministic).
        """
        state = self._cores[core]
        seq = state.next_seq
        state.next_seq += 1
        state.redo.record(seq, batch)
        fault = None
        if self.plan is not None:
            fault = self.plan.worker_fault_at(core, seq, state.suppressed)
        return seq, fault

    # -- signals from the worker --------------------------------------
    def on_ack(self, core: int, seq: int) -> None:
        state = self._cores[core]
        state.redo.ack(seq)
        state.last_heard = time.monotonic()

    def note_rung(self, core: int, rung: int) -> None:
        """Remember the overload-ladder rung ``core`` reported on its
        latest ack (the restart seed; see :class:`_CoreState`)."""
        self._cores[core].last_rung = rung

    def last_rung(self, core: int) -> int:
        return self._cores[core].last_rung

    def note_epoch(self, core: int, epoch: int) -> None:
        """Remember the filter-table epoch ``core`` reported on its
        latest ack (the multi-tenant restart seed)."""
        self._cores[core].last_epoch = epoch

    def last_epoch(self, core: int) -> int:
        return self._cores[core].last_epoch

    def heard_from(self, core: int) -> None:
        self._cores[core].last_heard = time.monotonic()

    def silent_for(self, core: int) -> float:
        return time.monotonic() - self._cores[core].last_heard

    # -- failure handling ----------------------------------------------
    def on_failure(self, core: int, plan_index: Optional[int]
                   ) -> Optional[Tuple[float, List[Tuple[int, list]],
                                       Tuple[int, ...]]]:
        """A worker crashed or hung. Returns ``(backoff_seconds,
        replay_batches, suppressed_plan_indices)`` when the core may be
        restarted, or None when its restart budget is exhausted (the
        core is lost; the run completes degraded).

        ``plan_index`` is the planned fault that fired (suppressed in
        the restarted worker so it does not fire again), or None for an
        unplanned failure.
        """
        state = self._cores[core]
        if plan_index is not None and \
                plan_index not in state.suppressed:
            state.suppressed = state.suppressed + (plan_index,)
        self.unreplayable_batches += state.redo.unreplayable
        if state.restarts >= self.max_restarts:
            state.lost = True
            self.failure_events.append({
                "event": "worker_lost", "core": core,
                "detail": "restart budget exhausted after %d restarts"
                          % state.restarts,
                "ts": -1.0,
            })
            return None
        backoff = restart_backoff(state.restarts)
        state.restarts += 1
        self.total_restarts += 1
        self.backoffs.append(backoff)
        replay = state.redo.pending()
        self.replayed_batches += len(replay)
        state.last_heard = time.monotonic()
        self.failure_events.append({
            "event": "worker_restart", "core": core,
            "detail": "restart %d, replaying %d batches"
                      % (state.restarts, len(replay)),
            "ts": -1.0,
        })
        return backoff, replay, state.suppressed

    # -- queries -------------------------------------------------------
    def is_lost(self, core: int) -> bool:
        return self._cores[core].lost

    @property
    def lost_cores(self) -> List[int]:
        return [i for i, s in enumerate(self._cores) if s.lost]

    @property
    def degraded(self) -> bool:
        return any(s.lost for s in self._cores)

    def summary(self) -> Dict:
        """The supervisor section of the fault report (wall clock never
        appears here — only counts and the planned backoff schedule)."""
        return {
            "restarts": self.total_restarts,
            "replayed": self.replayed_batches,
            "unreplayable": self.unreplayable_batches,
            "lost_cores": self.lost_cores,
            "backoffs": list(self.backoffs),
            "degraded": self.degraded,
        }
