"""Resilience subsystem: deterministic fault injection, worker
supervision, and graceful degradation under pressure.

See :mod:`repro.resilience.faults` for the fault-plan model and
:mod:`repro.resilience.supervisor` for the parallel-backend worker
supervisor; ``docs/RESILIENCE.md`` is the narrative guide.
"""

from repro.resilience.faults import (
    FAULT_KINDS,
    CoreFaultInjector,
    FaultPlan,
    FaultReport,
    FaultSpec,
    PacketFaultInjector,
    build_fault_report,
    restart_backoff,
)
from repro.resilience.supervisor import RedoLog, WorkerSupervisor

__all__ = [
    "FAULT_KINDS",
    "CoreFaultInjector",
    "FaultPlan",
    "FaultReport",
    "FaultSpec",
    "PacketFaultInjector",
    "RedoLog",
    "WorkerSupervisor",
    "build_fault_report",
    "restart_backoff",
]
