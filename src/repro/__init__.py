"""repro — a Python reproduction of *Retina: Analyzing 100GbE Traffic
on Commodity Hardware* (SIGCOMM 2022).

Quickstart::

    from repro import Runtime, RuntimeConfig
    from repro.traffic import CampusTrafficGenerator

    cfg = RuntimeConfig(cores=8)
    runtime = Runtime(
        cfg,
        filter_str="tls.sni ~ '.*\\\\.com$'",
        datatype="tls_handshake",
        callback=lambda hs: print(hs.sni(), hs.cipher()),
    )
    traffic = CampusTrafficGenerator(seed=1).packets(duration=1.0,
                                                     gbps=2.0)
    report = runtime.run(traffic)
    print(report.stats.describe())
"""

from repro.config import RuntimeConfig
from repro.core import (
    ConnectionRecord,
    CostModel,
    CycleLedger,
    DnsTransaction,
    HttpTransaction,
    Level,
    QuicHandshake,
    RawPacket,
    Runtime,
    RuntimeReport,
    SshHandshake,
    Stage,
    Subscription,
    TlsHandshake,
)
from repro.conntrack.table import TimeoutConfig
from repro.filter import compile_filter, CompiledFilter, FilterResult
from repro.overload import LossLedger
from repro.resilience import FaultPlan, FaultReport, FaultSpec

__version__ = "1.0.0"

__all__ = [
    "Runtime",
    "RuntimeReport",
    "RuntimeConfig",
    "Subscription",
    "TimeoutConfig",
    "Level",
    "Stage",
    "CostModel",
    "CycleLedger",
    "RawPacket",
    "ConnectionRecord",
    "TlsHandshake",
    "HttpTransaction",
    "SshHandshake",
    "DnsTransaction",
    "QuicHandshake",
    "compile_filter",
    "CompiledFilter",
    "FilterResult",
    "FaultPlan",
    "FaultReport",
    "FaultSpec",
    "LossLedger",
    "__version__",
]
