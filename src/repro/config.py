"""Runtime configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.conntrack.table import TimeoutConfig
from repro.core.cycles import CostModel
from repro.errors import ConfigError
from repro.filter.hardware import NicCapabilities, connectx5_capabilities
from repro.netem.model import ImpairmentConfig
from repro.resilience.faults import FaultPlan
from repro.stream.reassembly import DEFAULT_OOO_CAPACITY


@dataclass
class RuntimeConfig:
    """Everything a Retina deployment configures.

    Defaults mirror the paper's: ConnectX-5-class NIC, 5 s establish /
    5 min inactivity timeouts, 500-packet out-of-order ring, hardware
    filtering on, 3 GHz cores.
    """

    #: Receive cores (one RSS queue each).
    cores: int = 4
    #: Connection timeout scheme (Figure 8 ablations swap this).
    timeouts: TimeoutConfig = field(default_factory=TimeoutConfig)
    #: Out-of-order ring capacity per flow direction.
    ooo_capacity: int = DEFAULT_OOO_CAPACITY
    #: Adaptive out-of-order window (repro.stream.reassembly): the
    #: per-direction ring grows (×2, up to ``ooo_max_capacity``)
    #: instead of dropping when observed reorder depth exceeds it, and
    #: shrinks (÷2, down to ``ooo_min_capacity``) after a long fully
    #: in-order streak. Off by default — the fixed ring is the paper's
    #: design; the adaptive window is the degraded-link mitigation.
    ooo_adaptive: bool = False
    ooo_min_capacity: int = 64
    ooo_max_capacity: int = 4096
    #: NIC capability profile used to validate hardware rules.
    nic: NicCapabilities = field(default_factory=connectx5_capabilities)
    #: Install the hardware filter (Section 6.1 disables it).
    hardware_filter: bool = True
    #: Fraction of four-tuples redirected to the sink queue (Section 6.1
    #: flow sampling; 0.0 = analyze everything).
    sink_fraction: float = 0.0
    #: Simulated per-callback cost in CPU cycles (the paper's busy-loop
    #: proxy for callback complexity).
    callback_cycles: float = 0.0
    #: Stage cost model (Figure 7 calibration).
    cost_model: CostModel = field(default_factory=CostModel)
    #: Filter execution backend: "codegen" or "interp" (Appendix B).
    filter_mode: str = "codegen"
    #: Stream reassembly strategy: "lazy" (the paper's pass-through
    #: reorderer) or "buffered" (the traditional copy-based baseline,
    #: for the ablation benchmark). The buffered strategy charges the
    #: reassembly stage per payload byte copied rather than per packet.
    reassembler: str = "lazy"
    #: Callback execution model: "inline" (the paper's design — the
    #: callback runs on the receive core) or "queued" (the future-work
    #: model — a dedicated worker pool behind a hand-off queue).
    callback_execution: str = "inline"
    #: Worker cores for the queued execution model.
    callback_workers: int = 2
    #: Receive-core cost of handing a result to the queue (serialize +
    #: MPSC enqueue), charged instead of the callback cost.
    enqueue_cycles: float = 250.0
    #: Reassemble fragmented IPv4 datagrams before filtering. Off by
    #: default — like Retina (and kernel-bypass pipelines generally),
    #: non-first fragments simply fail port-based filters.
    reassemble_fragments: bool = False
    #: Give up probing a connection after this many payload bytes
    #: without any parser matching.
    probe_byte_limit: int = 4096
    #: Memory ceiling for the Figure 8 OOM experiment (bytes); None
    #: disables the check.
    memory_limit_bytes: Optional[int] = None
    #: Execute cores as real OS worker processes. The sequential
    #: backend models per-core pipelines on one thread; the parallel
    #: backend shards packets to one process per core by the same
    #: symmetric-RSS hash and runs the pipelines concurrently. For a
    #: fixed traffic source both backends produce identical
    #: filter/connection/session/callback counts.
    parallel: bool = False
    #: Columnar batch hot path: bulk-decode header columns per burst
    #: and evaluate the packet filter as batch mask predicates
    #: (:mod:`repro.packet.columnar`). Semantically invisible — filters
    #: the columns cannot express, and frames the columnar decoder
    #: cannot prove simple (VLAN/IPv6/options/fragments/truncation),
    #: fall back to the scalar per-packet path automatically. Off
    #: forces the scalar path everywhere (benchmark baseline).
    columnar: bool = True
    #: Packets per dispatch batch. Batches amortize the per-message
    #: IPC + pickle cost in the parallel backend (DPDK-burst style)
    #: and per-packet dispatch overhead in the sequential backend.
    parallel_batch_size: int = 256
    #: Bounded depth (in batches) of each worker's input queue; the
    #: feeder blocks when a worker falls this far behind (backpressure
    #: instead of unbounded buffering). Under the shm transport this is
    #: also the descriptor-ring size and the mempool slot count per
    #: core — ring capacity and slot availability are one condition.
    parallel_queue_depth: int = 8
    #: Feeder→worker transport for the parallel backend. "auto" uses
    #: the shared-memory mempool + descriptor rings
    #: (:mod:`repro.core.shm`) wherever the interpreter provides
    #: ``multiprocessing.shared_memory`` and falls back to the pickled
    #: bounded queues otherwise; "shm" / "queue" force one or the
    #: other ("shm" fails loudly on platforms without shared memory).
    ipc_transport: str = "auto"
    #: Bytes per shared-memory batch slot; None sizes slots from the
    #: adaptive-batch clamp at a generous ~2 KiB per frame. Bursts that
    #: do not fit a slot fall back (per batch) to the pickled control
    #: channel, so undersizing costs speed, never correctness.
    ipc_slot_bytes: Optional[int] = None
    #: Let the shm feeder grow each queue's batch size toward
    #: ``ipc_max_batch`` while its ring runs deep and shrink back when
    #: it runs shallow. Stats are batch-size invariant, so this is a
    #: pure latency/throughput trade; it is automatically disabled
    #: under supervision and span tracing, which pin batch boundaries.
    ipc_adaptive_batch: bool = True
    #: Upper clamp for adaptive batch growth (None = 4x
    #: ``parallel_batch_size``; hard ceiling 65535 rows per slot).
    ipc_max_batch: Optional[int] = None
    #: Enable the extended telemetry recorders: per-stage cycle
    #: histograms, reassembly-buffer occupancy histograms, and parallel
    #: backend health metrics. The filter-funnel counters are always on
    #: (plain integer increments); this flag only gates the heavier
    #: recorders, so disabled runs stay at full speed.
    telemetry: bool = False
    #: Fraction of connections to trace through their lifecycle
    #: (created → probed → parsed → matched/discarded → delivered/
    #: expired). Sampling keys on a stable hash of the canonical
    #: five-tuple, so the sampled set — and the exported trace — is
    #: identical across backends and worker counts. 0.0 disables.
    trace_sample: float = 0.0
    #: Burst span tracing / continuous profiler (repro.telemetry.spans):
    #: 0 disables the recorder entirely (the batch loops keep a single
    #: ``is None`` check per burst); K >= 1 records every burst's span
    #: tree boundaries and profiles (and keeps the full tree of) every
    #: Kth burst per core. Sampling keys on the per-core burst ordinal,
    #: so the sampled set is identical across backends and worker
    #: counts.
    span_sample: int = 0
    #: Flight recorder: keep the last N burst span-trees per core in a
    #: bounded ring, dumped with the triggering event on overload rung
    #: escalation, callback quarantine, parser faults, and worker
    #: crash/restart. 0 disables the ring. Either this or
    #: ``span_sample`` being nonzero enables the span recorder.
    flight_recorder_depth: int = 0
    # -- resilience (repro.resilience) ---------------------------------
    #: Deterministic fault plan to inject into the run; None disables
    #: every injection hook (the hot path carries no fault checks).
    fault_plan: Optional[FaultPlan] = None
    #: What a raising subscription callback does: "raise" wraps the
    #: exception in :class:`~repro.errors.CallbackError` and aborts the
    #: run (the historical behavior, now typed); "isolate" absorbs it,
    #: counts it against ``callback_error_budget``, and — once the
    #: budget is exhausted — quarantines the callback on that core
    #: (deliveries keep being counted and charged, the user function is
    #: no longer invoked).
    callback_error_policy: str = "raise"
    #: Callback errors tolerated per core before quarantine under the
    #: "isolate" policy.
    callback_error_budget: int = 3
    #: What hitting ``memory_limit_bytes`` does: "record" stops the run
    #: and records ``oom_at`` (the historical Figure 8 behavior);
    #: "evict" force-expires idle connections (oldest-activity-first,
    #: via the connection table) until each core is back under its
    #: share of the limit; "shed" refuses *new* connections while a
    #: core is over its share. Both degradation policies keep the run
    #: alive and count their actions in ``RuntimeReport.faults``.
    memory_policy: str = "record"
    #: Supervise parallel workers: per-core batch sequence numbers and
    #: acknowledgements, a bounded redo log, crash detection + restart
    #: with capped exponential backoff, hang detection via heartbeat
    #: deadlines, and degraded completion (partial stats) when a core
    #: is unrecoverable. Implied by a fault plan containing worker
    #: faults. Off by default: the unsupervised dispatch path is
    #: byte-identical to previous releases.
    supervise: bool = False
    #: Restarts allowed per core before it is declared lost and the run
    #: completes degraded.
    max_worker_restarts: int = 2
    #: Wall-clock seconds without progress before a live-but-silent
    #: worker is treated as hung (supervised mode only).
    worker_heartbeat_timeout: float = 5.0
    #: Bound (in batches) of each core's redo log; in-flight batches
    #: beyond this cannot be replayed after a crash and are counted as
    #: ``unreplayable_batches`` in the fault report.
    redo_log_batches: int = 64
    # -- overload control (repro.overload) ------------------------------
    #: What a core does when it cannot keep up with arrivals: "off"
    #: (keep absorbing load, the historical behavior), "ladder" (the
    #: AIMD degradation ladder: shed new packet-level connections, then
    #: all new connections, then downgrade the heaviest established
    #: ones — established connections are preserved bit-exactly), or
    #: "failfast" (the paper's §7 behavior as an explicit policy: never
    #: shed, abort the run on sustained overload). Every shed packet
    #: and downgraded connection is attributed in the run's
    #: :class:`~repro.overload.LossLedger`.
    overload_policy: str = "off"
    #: Virtual seconds of cycle backlog (arrival clock minus the cycle
    #: ledger's budget) a core tolerates before the controller counts
    #: it as overloaded. The ladder's primary pressure signal.
    overload_target_lag: float = 0.05
    #: Virtual seconds between controller evaluations on each core.
    overload_eval_interval: float = 0.05
    #: Highest rung the ladder may climb to (1-4; 4 enables the
    #: fail-fast last resort at the top of the ladder).
    overload_max_rung: int = 3
    #: Consecutive calm evaluations (pressure < 0.5) before the ladder
    #: relaxes multiplicatively (rung //= 2).
    overload_relax_ticks: int = 3
    #: Rung 3's per-connection circuit breaker: established probing/
    #: parsing connections holding more than this many bytes of heavy
    #: state (reassembly buffers + packet buffers) get their lazy
    #: reassembly and session parsing disabled.
    overload_heavy_bytes: int = 65536
    # -- multi-tenancy (repro.tenancy) ----------------------------------
    #: Aggregate tenant-load budget in megabits per virtual second for
    #: multi-tenant runs. When a virtual-second window's offered bytes
    #: exceed each core's share of this budget, the *heaviest* tenants
    #: (by offered bytes, ties by name) are shed for the next window
    #: until the remainder fits — the tenant-granular analogue of the
    #: overload ladder's rung-3 downgrade. None disables pressure
    #: accounting entirely.
    tenancy_pressure_mbps: Optional[float] = None
    # -- link impairment (repro.netem) ----------------------------------
    #: Seeded link-impairment layer wrapping the traffic source (burst
    #: loss, corruption, duplication, jitter, bounded reordering) plus
    #: receiver mitigations (checksum quarantine, per-link
    #: disable-and-repair). None disables the layer entirely: the
    #: traffic source is not even wrapped, so the clean path is
    #: byte-identical with or without this feature built.
    impairment: Optional[ImpairmentConfig] = None

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError("need at least one core")
        if not 0.0 <= self.sink_fraction <= 1.0:
            raise ConfigError("sink_fraction must be in [0, 1]")
        if self.filter_mode not in ("codegen", "interp"):
            raise ConfigError(f"unknown filter_mode {self.filter_mode!r}")
        if self.ooo_capacity < 0:
            raise ConfigError("ooo_capacity must be >= 0")
        if self.ooo_min_capacity < 1:
            raise ConfigError("ooo_min_capacity must be >= 1")
        if self.ooo_max_capacity < self.ooo_min_capacity:
            raise ConfigError(
                "ooo_max_capacity must be >= ooo_min_capacity")
        if self.ooo_adaptive and not (
                self.ooo_min_capacity <= self.ooo_capacity
                <= self.ooo_max_capacity):
            raise ConfigError(
                f"with ooo_adaptive, ooo_capacity "
                f"({self.ooo_capacity}) must start inside "
                f"[ooo_min_capacity, ooo_max_capacity] = "
                f"[{self.ooo_min_capacity}, {self.ooo_max_capacity}]")
        if self.reassembler not in ("lazy", "buffered"):
            raise ConfigError(f"unknown reassembler {self.reassembler!r}")
        if self.callback_execution not in ("inline", "queued"):
            raise ConfigError(
                f"unknown callback_execution {self.callback_execution!r}")
        if self.callback_workers < 1:
            raise ConfigError("callback_workers must be >= 1")
        if self.parallel_batch_size < 1:
            raise ConfigError("parallel_batch_size must be >= 1")
        if self.parallel_queue_depth < 1:
            raise ConfigError("parallel_queue_depth must be >= 1")
        if self.ipc_transport not in ("auto", "shm", "queue"):
            raise ConfigError(
                f"unknown ipc_transport {self.ipc_transport!r} "
                f"(choose auto, shm, or queue)")
        if self.ipc_slot_bytes is not None and self.ipc_slot_bytes < 4096:
            raise ConfigError("ipc_slot_bytes must be >= 4096 (one "
                              "page; a slot must hold at least a small "
                              "batch header + frames)")
        if self.ipc_max_batch is not None and \
                self.ipc_max_batch < self.parallel_batch_size:
            raise ConfigError("ipc_max_batch must be >= "
                              "parallel_batch_size (it is the adaptive "
                              "growth ceiling, not a second batch size)")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ConfigError("trace_sample must be in [0, 1]")
        if self.span_sample < 0:
            raise ConfigError("span_sample must be >= 0 "
                              "(0 disables, K profiles every Kth burst)")
        if self.flight_recorder_depth < 0:
            raise ConfigError("flight_recorder_depth must be >= 0 "
                              "(0 disables the ring)")
        if self.callback_error_policy not in ("raise", "isolate"):
            raise ConfigError(
                f"unknown callback_error_policy "
                f"{self.callback_error_policy!r} (want 'raise' or "
                f"'isolate')")
        if self.callback_error_budget < 1:
            raise ConfigError("callback_error_budget must be >= 1")
        if self.memory_policy not in ("record", "evict", "shed"):
            raise ConfigError(
                f"unknown memory_policy {self.memory_policy!r} "
                f"(want 'record', 'evict', or 'shed')")
        if self.max_worker_restarts < 0:
            raise ConfigError("max_worker_restarts must be >= 0")
        if self.worker_heartbeat_timeout <= 0:
            raise ConfigError("worker_heartbeat_timeout must be > 0")
        if self.redo_log_batches < 1:
            raise ConfigError("redo_log_batches must be >= 1")
        if self.overload_policy not in ("off", "ladder", "failfast"):
            raise ConfigError(
                f"unknown overload_policy {self.overload_policy!r} "
                f"(want 'off', 'ladder', or 'failfast')")
        if self.overload_target_lag <= 0:
            raise ConfigError("overload_target_lag must be > 0")
        if self.overload_eval_interval <= 0:
            raise ConfigError("overload_eval_interval must be > 0")
        if not 1 <= self.overload_max_rung <= 4:
            raise ConfigError("overload_max_rung must be in [1, 4]")
        if self.overload_relax_ticks < 1:
            raise ConfigError("overload_relax_ticks must be >= 1")
        if self.overload_heavy_bytes < 0:
            raise ConfigError("overload_heavy_bytes must be >= 0")
        if self.overload_policy != "off" and \
                self.memory_policy in ("evict", "shed"):
            raise ConfigError(
                f"overload_policy={self.overload_policy!r} conflicts "
                f"with memory_policy={self.memory_policy!r}: the "
                f"overload ladder already owns admission control under "
                f"memory pressure (it senses table occupancy against "
                f"memory_limit_bytes itself); use memory_policy="
                f"'record' or overload_policy='off'")
        if self.tenancy_pressure_mbps is not None and \
                self.tenancy_pressure_mbps <= 0:
            raise ConfigError("tenancy_pressure_mbps must be > 0 "
                              "(None disables pressure accounting)")
        if self.impairment is not None and self.fault_plan is not None \
                and self.fault_plan.has_packet_faults:
            raise ConfigError(
                "impairment conflicts with fault-plan packet-corruption "
                "entries (corrupt_packet/truncate_packet): both mutate "
                "frames before RSS dispatch from independent seeded "
                "streams, making ledger attribution ambiguous; move "
                "the corruption into the impairment layer "
                "(corrupt_rate) or strip packet faults from the plan")
        if self.parallel and self.callback_execution != "inline":
            raise ConfigError(
                "the parallel backend supports inline callback execution "
                "only (queued-pool accounting is global, not per-shard)")

    def with_(self, **kwargs) -> "RuntimeConfig":
        """A modified copy (convenience for benchmark sweeps)."""
        return replace(self, **kwargs)
