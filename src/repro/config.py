"""Runtime configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.conntrack.table import TimeoutConfig
from repro.core.cycles import CostModel
from repro.errors import ConfigError
from repro.filter.hardware import NicCapabilities, connectx5_capabilities
from repro.stream.reassembly import DEFAULT_OOO_CAPACITY


@dataclass
class RuntimeConfig:
    """Everything a Retina deployment configures.

    Defaults mirror the paper's: ConnectX-5-class NIC, 5 s establish /
    5 min inactivity timeouts, 500-packet out-of-order ring, hardware
    filtering on, 3 GHz cores.
    """

    #: Receive cores (one RSS queue each).
    cores: int = 4
    #: Connection timeout scheme (Figure 8 ablations swap this).
    timeouts: TimeoutConfig = field(default_factory=TimeoutConfig)
    #: Out-of-order ring capacity per flow direction.
    ooo_capacity: int = DEFAULT_OOO_CAPACITY
    #: NIC capability profile used to validate hardware rules.
    nic: NicCapabilities = field(default_factory=connectx5_capabilities)
    #: Install the hardware filter (Section 6.1 disables it).
    hardware_filter: bool = True
    #: Fraction of four-tuples redirected to the sink queue (Section 6.1
    #: flow sampling; 0.0 = analyze everything).
    sink_fraction: float = 0.0
    #: Simulated per-callback cost in CPU cycles (the paper's busy-loop
    #: proxy for callback complexity).
    callback_cycles: float = 0.0
    #: Stage cost model (Figure 7 calibration).
    cost_model: CostModel = field(default_factory=CostModel)
    #: Filter execution backend: "codegen" or "interp" (Appendix B).
    filter_mode: str = "codegen"
    #: Stream reassembly strategy: "lazy" (the paper's pass-through
    #: reorderer) or "buffered" (the traditional copy-based baseline,
    #: for the ablation benchmark). The buffered strategy charges the
    #: reassembly stage per payload byte copied rather than per packet.
    reassembler: str = "lazy"
    #: Callback execution model: "inline" (the paper's design — the
    #: callback runs on the receive core) or "queued" (the future-work
    #: model — a dedicated worker pool behind a hand-off queue).
    callback_execution: str = "inline"
    #: Worker cores for the queued execution model.
    callback_workers: int = 2
    #: Receive-core cost of handing a result to the queue (serialize +
    #: MPSC enqueue), charged instead of the callback cost.
    enqueue_cycles: float = 250.0
    #: Reassemble fragmented IPv4 datagrams before filtering. Off by
    #: default — like Retina (and kernel-bypass pipelines generally),
    #: non-first fragments simply fail port-based filters.
    reassemble_fragments: bool = False
    #: Give up probing a connection after this many payload bytes
    #: without any parser matching.
    probe_byte_limit: int = 4096
    #: Memory ceiling for the Figure 8 OOM experiment (bytes); None
    #: disables the check.
    memory_limit_bytes: Optional[int] = None
    #: Execute cores as real OS worker processes. The sequential
    #: backend models per-core pipelines on one thread; the parallel
    #: backend shards packets to one process per core by the same
    #: symmetric-RSS hash and runs the pipelines concurrently. For a
    #: fixed traffic source both backends produce identical
    #: filter/connection/session/callback counts.
    parallel: bool = False
    #: Packets per dispatch batch. Batches amortize the per-message
    #: IPC + pickle cost in the parallel backend (DPDK-burst style)
    #: and per-packet dispatch overhead in the sequential backend.
    parallel_batch_size: int = 256
    #: Bounded depth (in batches) of each worker's input queue; the
    #: feeder blocks when a worker falls this far behind (backpressure
    #: instead of unbounded buffering).
    parallel_queue_depth: int = 8
    #: Enable the extended telemetry recorders: per-stage cycle
    #: histograms, reassembly-buffer occupancy histograms, and parallel
    #: backend health metrics. The filter-funnel counters are always on
    #: (plain integer increments); this flag only gates the heavier
    #: recorders, so disabled runs stay at full speed.
    telemetry: bool = False
    #: Fraction of connections to trace through their lifecycle
    #: (created → probed → parsed → matched/discarded → delivered/
    #: expired). Sampling keys on a stable hash of the canonical
    #: five-tuple, so the sampled set — and the exported trace — is
    #: identical across backends and worker counts. 0.0 disables.
    trace_sample: float = 0.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError("need at least one core")
        if not 0.0 <= self.sink_fraction <= 1.0:
            raise ConfigError("sink_fraction must be in [0, 1]")
        if self.filter_mode not in ("codegen", "interp"):
            raise ConfigError(f"unknown filter_mode {self.filter_mode!r}")
        if self.ooo_capacity < 0:
            raise ConfigError("ooo_capacity must be >= 0")
        if self.reassembler not in ("lazy", "buffered"):
            raise ConfigError(f"unknown reassembler {self.reassembler!r}")
        if self.callback_execution not in ("inline", "queued"):
            raise ConfigError(
                f"unknown callback_execution {self.callback_execution!r}")
        if self.callback_workers < 1:
            raise ConfigError("callback_workers must be >= 1")
        if self.parallel_batch_size < 1:
            raise ConfigError("parallel_batch_size must be >= 1")
        if self.parallel_queue_depth < 1:
            raise ConfigError("parallel_queue_depth must be >= 1")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ConfigError("trace_sample must be in [0, 1]")
        if self.parallel and self.callback_execution != "inline":
            raise ConfigError(
                "the parallel backend supports inline callback execution "
                "only (queued-pool accounting is global, not per-shard)")

    def with_(self, **kwargs) -> "RuntimeConfig":
        """A modified copy (convenience for benchmark sweeps)."""
        return replace(self, **kwargs)
