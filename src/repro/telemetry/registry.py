"""Process-local metrics registry: counters, gauges, histograms.

No third-party dependencies — the registry is a thin, deterministic
container whose only jobs are (a) collecting named metric families with
optional labels, (b) merging across shards exactly (integer/float
addition, elementwise bucket addition), and (c) rendering to the
Prometheus text exposition format with a stable ordering so two runs
that did the same work produce byte-identical output.

Metrics marked ``volatile=True`` carry machine- or schedule-dependent
values (wall-clock feeder block time, queue high-water marks). They are
excluded from rendering by default so exports stay deterministic and
comparable across backends; pass ``include_volatile=True`` to see them.

For disabled-telemetry paths, :data:`NULL_RECORDER` offers the same
call surface with no-op methods — swap it in at construction time and
the instrumented code needs no ``if enabled`` branches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def escape_label_value(value: str) -> str:
    """Escape a label value for the Prometheus text exposition format:
    backslash, double quote, and newline must be escaped inside the
    quoted value or the line (and every line after it) is unparsable."""
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def escape_help(text: str) -> str:
    """Escape ``# HELP`` text: backslash and newline only (quotes are
    legal in help text, which is not quoted)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value) -> str:
    """Prometheus-text number formatting (ints without a trailing .0)."""
    if isinstance(value, float) and value.is_integer() and \
            abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def bucket_index(bounds: Sequence[float], value: float) -> int:
    """Index of the first bucket whose upper bound admits ``value``
    (the last index is the +Inf bucket)."""
    for i, bound in enumerate(bounds):
        if value <= bound:
            return i
    return len(bounds)


class Metric:
    """One metric family: a name, help text, and labeled samples."""

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str] = (),
                 volatile: bool = False) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.volatile = volatile
        self.values: Dict[Tuple[str, ...], float] = {}

    def _key(self, labels: Sequence[str]) -> Tuple[str, ...]:
        key = tuple(str(v) for v in labels)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {key}")
        return key

    def labeled(self, key: Tuple[str, ...]) -> str:
        if not key:
            return self.name
        pairs = ",".join(f'{n}="{escape_label_value(v)}"'
                         for n, v in zip(self.label_names, key))
        return f"{self.name}{{{pairs}}}"

    def samples(self) -> Iterable[Tuple[str, float]]:
        for key in sorted(self.values):
            yield self.labeled(key), self.values[key]

    def merge(self, other: "Metric") -> None:
        for key, value in other.values.items():
            self.values[key] = self.values.get(key, 0) + value


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1, labels: Sequence[str] = ()) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        key = self._key(labels)
        self.values[key] = self.values.get(key, 0) + amount


class Gauge(Metric):
    """A value that can go up and down (set, not accumulated)."""

    kind = "gauge"

    def set(self, value: float, labels: Sequence[str] = ()) -> None:
        self.values[self._key(labels)] = value

    def max(self, value: float, labels: Sequence[str] = ()) -> None:
        """High-water-mark update."""
        key = self._key(labels)
        if value > self.values.get(key, float("-inf")):
            self.values[key] = value

    def merge(self, other: "Metric") -> None:
        # Gauges merge by maximum (high-water semantics across shards).
        for key, value in other.values.items():
            if value > self.values.get(key, float("-inf")):
                self.values[key] = value


class Histogram(Metric):
    """Fixed-bucket histogram (cumulative buckets at render time)."""

    kind = "histogram"

    def __init__(self, name: str, help: str, buckets: Sequence[float],
                 label_names: Sequence[str] = (),
                 volatile: bool = False) -> None:
        super().__init__(name, help, label_names, volatile)
        self.buckets = tuple(buckets)
        #: label key -> (per-bucket counts incl. +Inf, sum of observations)
        self.series: Dict[Tuple[str, ...], Tuple[List[int], float]] = {}

    def observe(self, value: float, labels: Sequence[str] = ()) -> None:
        key = self._key(labels)
        counts, total = self.series.get(key, (None, 0.0))
        if counts is None:
            counts = [0] * (len(self.buckets) + 1)
        counts[bucket_index(self.buckets, value)] += 1
        self.series[key] = (counts, total + value)

    def load(self, counts: Sequence[int], total: float,
             labels: Sequence[str] = ()) -> None:
        """Bulk-load pre-bucketed counts (merging per-core snapshots)."""
        if len(counts) != len(self.buckets) + 1:
            raise ValueError(
                f"{self.name}: expected {len(self.buckets) + 1} bucket "
                f"counts, got {len(counts)}")
        key = self._key(labels)
        have, have_total = self.series.get(key, (None, 0.0))
        if have is None:
            have = [0] * (len(self.buckets) + 1)
        self.series[key] = ([a + b for a, b in zip(have, counts)],
                            have_total + total)

    def samples(self) -> Iterable[Tuple[str, float]]:
        for key in sorted(self.series):
            counts, total = self.series[key]
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                yield self._bucket_name(key, format_value(float(bound))), \
                    cumulative
            cumulative += counts[-1]
            yield self._bucket_name(key, "+Inf"), cumulative
            yield self._suffixed(key, "_sum"), total
            yield self._suffixed(key, "_count"), cumulative

    def _bucket_name(self, key: Tuple[str, ...], le: str) -> str:
        pairs = [f'{n}="{escape_label_value(v)}"'
                 for n, v in zip(self.label_names, key)]
        pairs.append(f'le="{le}"')
        return f"{self.name}_bucket{{{','.join(pairs)}}}"

    def _suffixed(self, key: Tuple[str, ...], suffix: str) -> str:
        if not key:
            return self.name + suffix
        pairs = ",".join(f'{n}="{escape_label_value(v)}"'
                         for n, v in zip(self.label_names, key))
        return f"{self.name}{suffix}{{{pairs}}}"

    def merge(self, other: "Metric") -> None:
        assert isinstance(other, Histogram)
        for key, (counts, total) in other.series.items():
            self.load(counts, total, labels=key)


class MetricsRegistry:
    """A named collection of metric families."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def counter(self, name: str, help: str = "",
                label_names: Sequence[str] = (),
                volatile: bool = False) -> Counter:
        return self._get_or_create(Counter, name, help, label_names,
                                   volatile)

    def gauge(self, name: str, help: str = "",
              label_names: Sequence[str] = (),
              volatile: bool = False) -> Gauge:
        return self._get_or_create(Gauge, name, help, label_names,
                                   volatile)

    def histogram(self, name: str, help: str, buckets: Sequence[float],
                  label_names: Sequence[str] = (),
                  volatile: bool = False) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ValueError(f"{name} already registered as "
                                 f"{existing.kind}")
            return existing
        metric = Histogram(name, help, buckets, label_names, volatile)
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, cls, name, help, label_names, volatile):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(f"{name} already registered as "
                                 f"{existing.kind}")
            return existing
        metric = cls(name, help, label_names, volatile)
        self._metrics[name] = metric
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def collect(self, include_volatile: bool = False) -> List[Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)
                if include_volatile or not self._metrics[name].volatile]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's samples into this one (exact:
        counters add, gauges take the max, histograms add buckets)."""
        for metric in other._metrics.values():
            mine = self._metrics.get(metric.name)
            if mine is None:
                self._metrics[metric.name] = metric
            else:
                mine.merge(metric)

    def render_prometheus(self, include_volatile: bool = False) -> str:
        """The Prometheus text exposition format, deterministically
        ordered (metric families by name, samples by label values)."""
        lines: List[str] = []
        for metric in self.collect(include_volatile):
            if metric.help:
                lines.append(
                    f"# HELP {metric.name} {escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for labeled, value in metric.samples():
                lines.append(f"{labeled} {format_value(value)}")
        return "\n".join(lines) + "\n"


class NullRecorder:
    """No-op stand-in for any metric or registry: every method accepts
    anything and does nothing. Swap it in at construction time so the
    instrumented code path carries zero conditional overhead when
    telemetry is disabled."""

    def inc(self, *args, **kwargs) -> None:
        pass

    def set(self, *args, **kwargs) -> None:
        pass

    def max(self, *args, **kwargs) -> None:
        pass

    def observe(self, *args, **kwargs) -> None:
        pass

    def load(self, *args, **kwargs) -> None:
        pass

    def counter(self, *args, **kwargs) -> "NullRecorder":
        return self

    def gauge(self, *args, **kwargs) -> "NullRecorder":
        return self

    def histogram(self, *args, **kwargs) -> "NullRecorder":
        return self


#: Shared no-op instance (stateless, safe to share everywhere).
NULL_RECORDER = NullRecorder()
