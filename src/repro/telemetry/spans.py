"""Burst span trees, the flight recorder, and the continuous profiler.

Every ingress burst a :class:`~repro.core.pipeline.CorePipeline`
processes can be traced as a *span tree*: a root ``burst`` span with
one child span per pipeline stage (capture → packet filter →
conn-track → reassembly → parsing → session filter → callback),
carrying the stage's invocation count (packets in), its virtual-cycle
self time, the funnel survivors the burst produced (packets out), and
the core that ran it. Spans are recorded by *delta snapshots* at burst
boundaries — the recorder reads the cycle ledger and funnel counters
once before and once after the batch loop, so the per-packet hot path
is untouched and the disabled path costs a single ``is None`` check
per burst (the "compile-time no-op" requirement on the 145k pkts/s
columnar path).

Three consumers sit on top of the recorder:

* the **trace stream** — every recorded burst tree, exported as Chrome
  trace-event JSON (Perfetto-loadable; see docs/OBSERVABILITY.md) and
  as NDJSON through the existing exporter conventions. In the parallel
  backend a ``(queue, seq)`` span context rides each
  :class:`~repro.packet.batch.PackedBatch`, so worker spans stitch
  into the parent's trace under one pid.
* the **flight recorder** — a bounded ring of the last N burst trees
  per core, dumped (with the triggering event attached) on overload
  rung escalation, callback quarantine, parser faults, and worker
  crash/restart.
* the **continuous profiler** — deterministic 1-in-K burst sampling
  feeding per-stage self-time histograms and a "hottest stage ×
  filter-node" attribution table onto ``RuntimeReport.spans``.

Determinism: burst boundaries are identical sequential-vs-parallel
(both backends flush per-queue pending lists at ``batch_size`` and at
the same parent-clocked virtual deadlines), sampling is by per-core
burst ordinal, and timestamps in exports are *virtual* (cycles at the
model's ``cpu_hz``). Wall-clock fields and IPC span contexts are
volatile and excluded from deterministic exports, exactly like
``RuntimeReport.backend_health``.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.cycles import Stage

__all__ = [
    "SPAN_HIST_BOUNDS",
    "SpanRecorder",
    "NullSpanRecorder",
    "NULL_SPAN_RECORDER",
    "SpanReport",
    "build_span_report",
    "chrome_trace_events",
    "tree_public",
]

#: Pipeline stages in span order (identical to Figure 7 + capture).
_STAGES: Tuple[Stage, ...] = tuple(Stage)
_STAGE_NAMES: Tuple[str, ...] = tuple(s.value for s in _STAGES)

#: Upper bucket bounds (cycles) for per-*burst* stage self-time
#: histograms; one implicit +Inf bucket follows. Bursts are up to 256
#: packets, so the range runs two decades above the per-invocation
#: CYCLE_HIST_BOUNDS.
SPAN_HIST_BOUNDS = (100.0, 300.0, 1000.0, 3000.0, 10000.0, 30000.0,
                    100000.0, 300000.0, 1000000.0, 3000000.0)

#: Stages whose burst self-time is attributed across filter nodes by
#: the profiler (everything downstream of the packet-filter verdict).
_NODE_STAGES = (Stage.CONN_TRACK, Stage.REASSEMBLY, Stage.PARSING,
                Stage.SESSION_FILTER, Stage.CALLBACK)

#: Hard caps keeping recorder state bounded on long runs.
_MAX_TREES = 1024
_MAX_DUMPS = 16
_MAX_EVENTS = 64


def _span_hist_index(value: float) -> int:
    for i, bound in enumerate(SPAN_HIST_BOUNDS):
        if value <= bound:
            return i
    return len(SPAN_HIST_BOUNDS)


def tree_public(tree: Dict) -> Dict:
    """The deterministic view of a burst tree: drops wall-clock time
    and the IPC span context (both volatile — wall time varies run to
    run, and sequential runs have no IPC context at all)."""
    return {k: v for k, v in tree.items() if k not in ("wall_ns", "ctx")}


class SpanRecorder:
    """Per-core burst span recorder.

    Created by the pipeline when ``config.span_sample > 0`` or
    ``config.flight_recorder_depth > 0``; the pipeline holds ``None``
    otherwise, so the disabled path never reaches this class. The
    recorder is deliberately not thread-safe: one recorder belongs to
    exactly one core's pipeline.
    """

    __slots__ = (
        "core_id", "sample_every", "trees", "trees_dropped", "ring",
        "dumps", "dumps_dropped", "events", "bursts", "bursts_sampled",
        "profile_hist", "profile_cycles", "profile_invocations",
        "node_attr", "wall_ns", "ctx",
    )

    def __init__(self, core_id: int, sample_every: int = 0,
                 flight_depth: int = 0) -> None:
        self.core_id = core_id
        #: Profile (and keep the tree of) every Kth burst; 0 disables
        #: the profiler/trace stream but keeps the flight ring live.
        self.sample_every = sample_every
        self.trees: deque = deque(maxlen=_MAX_TREES)
        self.trees_dropped = 0
        self.ring: Optional[deque] = (
            deque(maxlen=flight_depth) if flight_depth > 0 else None
        )
        self.dumps: List[Dict] = []
        self.dumps_dropped = 0
        self.events: List[Dict] = []
        self.bursts = 0
        self.bursts_sampled = 0
        self.profile_hist: Dict[str, List[int]] = {
            name: [0] * (len(SPAN_HIST_BOUNDS) + 1)
            for name in _STAGE_NAMES
        }
        self.profile_cycles: Dict[str, float] = \
            {name: 0.0 for name in _STAGE_NAMES}
        self.profile_invocations: Dict[str, int] = \
            {name: 0 for name in _STAGE_NAMES}
        #: ``"stage|node" -> [packets, cycles]`` attribution table.
        self.node_attr: Dict[str, List[float]] = {}
        self.wall_ns = 0
        #: IPC span context stamped by the worker loop for the batch
        #: currently being processed ((queue, seq) or None).
        self.ctx: Optional[Tuple[int, int]] = None

    # -- burst boundaries --------------------------------------------------
    def start(self, stats) -> Tuple:
        """Snapshot ledgers/counters at the top of a batch. Returns the
        token ``finish`` needs; ``token[0]`` tells the caller whether
        this burst is profiler-sampled (so it may collect per-node
        verdict counts, otherwise skipped entirely)."""
        k = self.sample_every
        sampled = k > 0 and self.bursts % k == 0
        ledger = stats.ledger
        inv, cyc = ledger.invocations, ledger.cycles
        return (
            sampled,
            time.perf_counter_ns(),
            tuple(inv[s] for s in _STAGES),
            tuple(cyc[s] for s in _STAGES),
            (stats.packets, stats.pf_packets, stats.connf_packets,
             stats.sessf_packets, stats.callbacks, stats.conns_created),
        )

    def finish(self, stats, now: float, token: Tuple,
               node_counts: Optional[Dict[int, int]] = None) -> None:
        """Close the burst opened by ``token``: build the span tree,
        feed the flight ring, and (on sampled bursts) the profiler."""
        sampled, wall0, inv0, cyc0, ctr0 = token
        ledger = stats.ledger
        inv, cyc = ledger.invocations, ledger.cycles
        wall_ns = time.perf_counter_ns() - wall0
        stages = []
        total_cycles = 0.0
        for i, stage in enumerate(_STAGES):
            d_inv = inv[stage] - inv0[i]
            d_cyc = cyc[stage] - cyc0[i]
            if d_inv or d_cyc:
                stages.append([stage.value, d_inv, d_cyc])
                total_cycles += d_cyc
        tree = {
            "core": self.core_id,
            "seq": self.bursts,
            "ts": now,
            "packets_in": stats.packets - ctr0[0],
            "out": {
                "packet_filter": stats.pf_packets - ctr0[1],
                "connection_filter": stats.connf_packets - ctr0[2],
                "session_filter": stats.sessf_packets - ctr0[3],
                "callback": stats.callbacks - ctr0[4],
            },
            "conns_created": stats.conns_created - ctr0[5],
            "cycles": total_cycles,
            "stages": stages,
            "ctx": list(self.ctx) if self.ctx is not None else None,
            "wall_ns": wall_ns,
        }
        self.ctx = None
        self.bursts += 1
        self.wall_ns += wall_ns
        if self.ring is not None:
            self.ring.append(tree)
        if sampled:
            self.bursts_sampled += 1
            if len(self.trees) == _MAX_TREES:
                self.trees_dropped += 1
            self.trees.append(tree)
            self._profile(tree, node_counts)

    def _profile(self, tree: Dict,
                 node_counts: Optional[Dict[int, int]]) -> None:
        hist = self.profile_hist
        cycles = self.profile_cycles
        invocations = self.profile_invocations
        for name, d_inv, d_cyc in tree["stages"]:
            hist[name][_span_hist_index(d_cyc)] += 1
            cycles[name] += d_cyc
            invocations[name] += d_inv
        if not node_counts:
            return
        matched = sum(node_counts.values())
        if not matched:
            return
        attr = self.node_attr
        for name, d_inv, d_cyc in tree["stages"]:
            if not any(name == s.value for s in _NODE_STAGES):
                continue
            for node, packets in node_counts.items():
                key = "%s|%d" % (name, node)
                row = attr.get(key)
                if row is None:
                    row = attr[key] = [0, 0.0]
                row[0] += packets
                # Proportional share: the ledger has no per-node cycle
                # split, so the burst's stage self-time is attributed
                # by the node's packet share of the matched burst.
                row[1] += d_cyc * packets / matched

    # -- flight recorder ---------------------------------------------------
    def trigger(self, event: str, detail: str, ts: float) -> None:
        """Record a triggering event and dump the flight ring.

        Called from cold paths only (rung escalation, quarantine,
        parser faults) — never from the per-packet loop.
        """
        record = {"event": event, "detail": detail, "ts": ts,
                  "core": self.core_id}
        if len(self.events) < _MAX_EVENTS:
            self.events.append(record)
        if self.ring is None:
            return
        if len(self.dumps) >= _MAX_DUMPS:
            self.dumps_dropped += 1
            return
        self.dumps.append({
            "trigger": record,
            "bursts": [dict(tree) for tree in self.ring],
        })

    # -- shipping ----------------------------------------------------------
    def snapshot(self) -> Dict:
        """Plain-data (picklable, JSON-able) snapshot shipped home in
        ``CoreStats.spans`` at end of run / worker ``_DONE``."""
        return {
            "core": self.core_id,
            "sample_every": self.sample_every,
            "bursts": self.bursts,
            "bursts_sampled": self.bursts_sampled,
            "trees": [dict(t) for t in self.trees],
            "trees_dropped": self.trees_dropped,
            "ring": [dict(t) for t in self.ring]
                    if self.ring is not None else None,
            "dumps": list(self.dumps),
            "dumps_dropped": self.dumps_dropped,
            "events": list(self.events),
            "profile": {
                "hist": {k: list(v) for k, v in self.profile_hist.items()},
                "cycles": dict(self.profile_cycles),
                "invocations": dict(self.profile_invocations),
                "nodes": {k: list(v) for k, v in self.node_attr.items()},
            },
            "wall_ns": self.wall_ns,
        }


class NullSpanRecorder:
    """Inert stand-in with the recorder's surface (the no-op path).

    The pipeline's disabled path stores ``None`` and never calls into
    a recorder at all; this class exists so code holding a recorder
    unconditionally (tests, embedders) can swap one in without
    branching.
    """

    __slots__ = ()
    ctx = None

    def start(self, stats):  # pragma: no cover - trivial
        return None

    def finish(self, stats, now, token, node_counts=None):
        return None

    def trigger(self, event, detail, ts):
        return None

    def snapshot(self):
        return None


NULL_SPAN_RECORDER = NullSpanRecorder()


class SpanReport:
    """Merged cross-core span data attached to ``RuntimeReport.spans``.

    Everything reachable from :meth:`to_dict`, :meth:`ndjson_lines`
    and :meth:`flight_dump` is deterministic (virtual time only);
    :meth:`chrome_trace` additionally carries the volatile wall/IPC
    fields in span args, which is fine for a viewer artifact.
    """

    def __init__(self, cores: List[Dict], events: List[Dict],
                 cpu_hz: float, nic: Optional[List[Dict]] = None) -> None:
        #: Per-core recorder snapshots, sorted by core id.
        self.cores = sorted(cores, key=lambda s: s["core"])
        #: Triggering events (worker-side + parent-side), time-sorted.
        self.events = sorted(
            events, key=lambda e: (e.get("ts", 0.0), e.get("core", -1),
                                   e.get("event", "")))
        self.cpu_hz = cpu_hz
        #: NIC ingress context (per-port counter dicts), for dumps.
        self.nic = nic or []

    # -- profiler ----------------------------------------------------------
    def profile(self) -> Dict:
        """Merged per-stage self-time histograms and totals."""
        hist = {name: [0] * (len(SPAN_HIST_BOUNDS) + 1)
                for name in _STAGE_NAMES}
        cycles = {name: 0.0 for name in _STAGE_NAMES}
        invocations = {name: 0 for name in _STAGE_NAMES}
        for snap in self.cores:
            prof = snap["profile"]
            for name in _STAGE_NAMES:
                mine = hist[name]
                for i, count in enumerate(prof["hist"][name]):
                    mine[i] += count
                cycles[name] += prof["cycles"][name]
                invocations[name] += prof["invocations"][name]
        return {"hist": hist, "cycles": cycles,
                "invocations": invocations}

    def hottest(self, k: int = 10) -> List[Dict]:
        """Top-K "stage × filter-node" rows by attributed cycles."""
        merged: Dict[str, List[float]] = {}
        for snap in self.cores:
            for key, (packets, cyc) in snap["profile"]["nodes"].items():
                row = merged.get(key)
                if row is None:
                    row = merged[key] = [0, 0.0]
                row[0] += packets
                row[1] += cyc
        ranked = sorted(merged.items(),
                        key=lambda kv: (-kv[1][1], kv[0]))[:k]
        out = []
        for key, (packets, cyc) in ranked:
            stage, node = key.rsplit("|", 1)
            out.append({"stage": stage, "node": int(node),
                        "packets": packets, "cycles": cyc})
        return out

    # -- deterministic views -----------------------------------------------
    def to_dict(self) -> Dict:
        """Deterministic summary for ``--json-stats`` style tooling."""
        return {
            "cores": [
                {
                    "core": snap["core"],
                    "bursts": snap["bursts"],
                    "bursts_sampled": snap["bursts_sampled"],
                    "trees_dropped": snap["trees_dropped"],
                    "dumps": len(snap["dumps"]),
                    "dumps_dropped": snap["dumps_dropped"],
                }
                for snap in self.cores
            ],
            "events": [
                {k: e[k] for k in sorted(e)} for e in self.events
            ],
            "profile": self.profile(),
            "hottest": self.hottest(),
        }

    def trees(self) -> List[Dict]:
        """All sampled burst trees, canonically ordered."""
        out: List[Dict] = []
        for snap in self.cores:
            out.extend(snap["trees"])
        out.sort(key=lambda t: (t["ts"], t["core"], t["seq"]))
        return out

    def ndjson_lines(self) -> Iterable[str]:
        """Deterministic NDJSON: one ``burst`` record per sampled tree,
        ``trigger`` records for events, and a ``profile`` summary —
        same conventions as the connection-trace exporter."""
        dumps = json.dumps
        for tree in self.trees():
            record = dict(tree_public(tree))
            record["record"] = "burst"
            yield dumps(record, separators=(",", ":"), sort_keys=True)
        for event in self.events:
            record = {k: event[k] for k in sorted(event)}
            record["record"] = "trigger"
            yield dumps(record, separators=(",", ":"), sort_keys=True)
        summary = {"record": "profile", "profile": self.profile(),
                   "hottest": self.hottest()}
        yield dumps(summary, separators=(",", ":"), sort_keys=True)

    def flight_dump(self) -> Dict:
        """Deterministic flight-recorder dump: every triggered dump
        with its ring contents, plus the end-of-run ring per core."""
        return {
            "events": [
                {k: e[k] for k in sorted(e)} for e in self.events
            ],
            "dumps": [
                {
                    "trigger": {k: d["trigger"][k]
                                for k in sorted(d["trigger"])},
                    "bursts": [tree_public(t) for t in d["bursts"]],
                }
                for snap in self.cores
                for d in snap["dumps"]
            ],
            "rings": {
                str(snap["core"]): [tree_public(t)
                                    for t in snap["ring"]]
                for snap in self.cores
                if snap["ring"] is not None
            },
            "nic": self.nic,
        }

    # -- Chrome trace ------------------------------------------------------
    def chrome_trace(self) -> Dict:
        """Chrome trace-event JSON (load in Perfetto / chrome://tracing).

        One pid for the whole run, one tid per core; every sampled
        burst becomes an "X" (complete) event with its stage spans laid
        end-to-end beneath it. Timestamps are virtual microseconds
        (burst virtual time; durations are cycles at ``cpu_hz``), so
        the trace itself is deterministic; wall time and IPC context
        ride along in ``args``.
        """
        return {"traceEvents": chrome_trace_events(self),
                "displayTimeUnit": "ms"}


def chrome_trace_events(report: SpanReport) -> List[Dict]:
    events: List[Dict] = [{
        "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
        "args": {"name": "repro-pipeline"},
    }]
    for snap in report.cores:
        events.append({
            "ph": "M", "name": "thread_name", "pid": 0,
            "tid": snap["core"],
            "args": {"name": "core-%d" % snap["core"]},
        })
    scale = 1e6 / report.cpu_hz  # cycles -> virtual microseconds
    cursor: Dict[int, float] = {}
    for tree in report.trees():
        core = tree["core"]
        ts_us = tree["ts"] * 1e6
        start = max(ts_us, cursor.get(core, 0.0))
        burst_dur = tree["cycles"] * scale
        events.append({
            "ph": "X", "name": "burst", "cat": "burst",
            "pid": 0, "tid": core, "ts": start, "dur": burst_dur,
            "args": {
                "seq": tree["seq"],
                "packets_in": tree["packets_in"],
                "out": tree["out"],
                "cycles": tree["cycles"],
                "ctx": tree["ctx"],
                "wall_ns": tree["wall_ns"],
            },
        })
        offset = start
        for name, d_inv, d_cyc in tree["stages"]:
            dur = d_cyc * scale
            events.append({
                "ph": "X", "name": name, "cat": "stage",
                "pid": 0, "tid": core, "ts": offset, "dur": dur,
                "args": {"invocations": d_inv, "cycles": d_cyc},
            })
            offset += dur
        cursor[core] = start + burst_dur
    for event in report.events:
        events.append({
            "ph": "i", "name": event.get("event", "event"),
            "cat": "trigger", "pid": 0,
            "tid": event.get("core", 0) if event.get("core", -1) >= 0
            else 0,
            "ts": event.get("ts", 0.0) * 1e6, "s": "g",
            "args": {k: event[k] for k in sorted(event)},
        })
    return events


def build_span_report(core_stats, parent_events: Optional[List[Dict]],
                      cpu_hz: float,
                      nic: Optional[List[Dict]] = None
                      ) -> Optional[SpanReport]:
    """Assemble a :class:`SpanReport` from per-core ``CoreStats``.

    ``core_stats`` is an iterable of CoreStats whose ``spans``
    attribute carries recorder snapshots (None when spans were off —
    then the report is None too). ``parent_events`` are
    parent-process events (worker crash/restart from the supervisor);
    each synthesizes a dump from that core's final ring so a crashed
    worker's surviving history is still attached to the trigger.
    """
    snaps = [s.spans for s in core_stats if getattr(s, "spans", None)]
    if not snaps:
        return None
    events: List[Dict] = []
    for snap in snaps:
        events.extend(snap["events"])
    by_core = {snap["core"]: snap for snap in snaps}
    for event in (parent_events or []):
        events.append(event)
        snap = by_core.get(event.get("core"))
        if snap is not None and snap["ring"] is not None \
                and len(snap["dumps"]) < _MAX_DUMPS:
            snap["dumps"].append({
                "trigger": dict(event),
                "bursts": [dict(t) for t in snap["ring"]],
            })
    return SpanReport(snaps, events, cpu_hz, nic=nic)
