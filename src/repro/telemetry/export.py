"""Telemetry exporters: Prometheus text and NDJSON trace streams.

``build_registry`` turns one run's merged :class:`AggregateStats` into a
:class:`~repro.telemetry.registry.MetricsRegistry`; ``write_metrics``
and ``write_trace`` put the two export formats on disk for the CLI's
``--metrics-out`` / ``--trace-out`` flags.

Both exports are deterministic: metric families render in sorted order,
volatile (machine-dependent) backend-health metrics are excluded unless
asked for, and trace events are sorted into their canonical order — so
the sequential and parallel backends produce byte-identical files for
the same traffic.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, List, Optional, Union

from repro.core.cycles import CYCLE_HIST_BOUNDS, Stage
from repro.core.stats import REASM_HIST_BOUNDS, AggregateStats
from repro.telemetry.funnel import build_funnel
from repro.telemetry.registry import MetricsRegistry, bucket_index
from repro.telemetry.trace import trace_event_dicts


def build_registry(stats: AggregateStats,
                   backend_health: Optional[dict] = None,
                   faults: Optional[object] = None,
                   overload: Optional[object] = None,
                   impairment: Optional[object] = None,
                   tenancy: Optional[dict] = None,
                   ) -> MetricsRegistry:
    """Populate a metrics registry from one run's aggregate stats.

    ``backend_health`` is the parallel backend's (volatile) health
    snapshot — per-worker queue-depth high-water marks, batch occupancy,
    and feeder block time. Its metrics are registered ``volatile=True``
    so the default rendering stays identical across backends.

    ``faults`` is the run's :class:`repro.resilience.FaultReport` (or
    None). Resilience metric families render only when the run had
    resilience activity, so plain runs keep their pre-resilience
    byte-identical output.

    ``overload`` is the run's merged :class:`repro.overload.LossLedger`
    (or None). Like the resilience families, overload families render
    only when the ladder was armed, and truncation families only when a
    reassembly buffer actually overflowed.

    ``impairment`` is the run's :class:`repro.netem.ImpairmentLedger`
    (or None). Impairment families render only when the link was
    impaired, so clean runs keep byte-identical output.

    ``tenancy`` carries a multi-tenant run's per-tenant breakdown:
    ``{"epoch": int, "active": [names], "tenants": {name:
    AggregateStats}, "shed": {name: LossLedger}}``. The
    ``repro_tenant_*`` / ``repro_tenancy_*`` families render only when
    it is given, so single-tenant runs — including a multi-tenant
    binary run with the flag off — keep byte-identical output.
    """
    reg = MetricsRegistry()

    # -- the filter funnel -------------------------------------------------
    fpkts = reg.counter("repro_funnel_packets_total",
                        "Packets entering/surviving each filter layer",
                        label_names=("layer", "edge"))
    fbytes = reg.counter("repro_funnel_bytes_total",
                         "Bytes entering/surviving each filter layer",
                         label_names=("layer", "edge"))
    fdrop = reg.counter("repro_funnel_dropped_packets_total",
                        "Packets discarded at each filter layer",
                        label_names=("layer",))
    for layer in build_funnel(stats):
        fpkts.inc(layer.packets_in, labels=(layer.layer, "in"))
        fpkts.inc(layer.packets_out, labels=(layer.layer, "out"))
        fbytes.inc(layer.bytes_in, labels=(layer.layer, "in"))
        fbytes.inc(layer.bytes_out, labels=(layer.layer, "out"))
        fdrop.inc(layer.dropped_packets, labels=(layer.layer,))

    # -- traffic totals ----------------------------------------------------
    pkts = reg.counter("repro_packets_total",
                       "Packet dispositions at the NIC boundary",
                       label_names=("disposition",))
    pkts.inc(stats.ingress_packets, labels=("ingress",))
    pkts.inc(stats.hw_dropped_packets, labels=("hw_dropped",))
    pkts.inc(stats.sink_dropped_packets, labels=("sink_dropped",))
    pkts.inc(stats.processed_packets, labels=("processed",))
    reg.counter("repro_bytes_total", "Bytes offered to the NIC") \
        .inc(stats.ingress_bytes)

    # -- pipeline internals ------------------------------------------------
    inv = reg.counter("repro_stage_invocations_total",
                      "Pipeline stage invocations",
                      label_names=("stage",))
    cyc = reg.counter("repro_stage_cycles_total",
                      "Virtual CPU cycles charged per stage",
                      label_names=("stage",))
    for stage in Stage:
        inv.inc(stats.stage_invocations[stage], labels=(stage.value,))
        cyc.inc(stats.stage_cycles[stage], labels=(stage.value,))

    if stats.stage_cycle_hist is not None:
        hist = reg.histogram(
            "repro_stage_cost_cycles",
            "Per-invocation cycle cost distribution per stage",
            buckets=CYCLE_HIST_BOUNDS, label_names=("stage",))
        for stage in Stage:
            counts = list(stats.stage_cycle_hist[stage])
            # The batched hot path (capture, packet filter) bypasses
            # ledger.charge(); those stages have constant per-invocation
            # cost, so synthesize the missing observations into the
            # bucket that constant falls in.
            deficit = stats.stage_invocations[stage] - sum(counts)
            if deficit > 0:
                cost = stats.cost_model.cost_of(stage)
                counts[bucket_index(CYCLE_HIST_BOUNDS, cost)] += deficit
            if sum(counts):
                hist.load(counts, stats.stage_cycles[stage],
                          labels=(stage.value,))

    if stats.reasm_hist is not None:
        reg.histogram(
            "repro_reassembly_occupancy_bytes",
            "Reassembly-buffer occupancy at memory-sample points",
            buckets=REASM_HIST_BOUNDS,
        ).load(stats.reasm_hist, float(stats.reasm_occ_sum))
    reg.gauge("repro_reassembly_peak_bytes",
              "Peak reassembly-buffer occupancy") \
        .set(stats.reasm_peak_bytes)

    # -- connections, sessions, delivery -----------------------------------
    conns = reg.counter("repro_connections_total",
                        "Connection lifecycle outcomes",
                        label_names=("event",))
    conns.inc(stats.conns_created, labels=("created",))
    conns.inc(stats.conns_delivered, labels=("delivered",))
    conns.inc(stats.conns_discarded, labels=("discarded",))
    conns.inc(stats.conns_expired, labels=("expired",))
    reg.counter("repro_probe_giveups_total",
                "Connections whose protocol probe hit the byte limit") \
        .inc(stats.probe_giveups)
    sessions = reg.counter("repro_sessions_total",
                           "Application-layer sessions",
                           label_names=("outcome",))
    sessions.inc(stats.sessions_parsed, labels=("parsed",))
    sessions.inc(stats.sessions_matched, labels=("matched",))
    reg.counter("repro_callbacks_total", "Subscription callback runs") \
        .inc(stats.callbacks)

    # -- run-level gauges --------------------------------------------------
    reg.gauge("repro_run_duration_seconds",
              "Virtual duration of the processed traffic") \
        .set(stats.duration)
    reg.gauge("repro_offered_rate_gbps", "Offered ingress bit-rate") \
        .set(stats.offered_rate_gbps)
    reg.gauge("repro_memory_peak_bytes",
              "Peak tracked connection-state memory") \
        .set(stats.peak_memory_bytes)
    reg.gauge("repro_live_connections_peak",
              "Peak live connections") \
        .set(stats.peak_live_connections)

    # -- resilience (repro.resilience) -------------------------------------
    resilience_active = bool(
        faults is not None or stats.callback_errors
        or stats.callbacks_suppressed or stats.parser_exceptions
        or stats.conns_evicted or stats.conns_shed or stats.fault_counters
    )
    if resilience_active:
        events = reg.counter(
            "repro_resilience_events_total",
            "Degradation events absorbed by resilience policies",
            label_names=("event",))
        events.inc(stats.callback_errors, labels=("callback_error",))
        events.inc(stats.callbacks_suppressed,
                   labels=("callback_suppressed",))
        events.inc(stats.parser_exceptions, labels=("parser_exception",))
        events.inc(stats.conns_evicted, labels=("conn_evicted",))
        events.inc(stats.conns_shed, labels=("conn_shed",))
        injected = reg.counter("repro_faults_injected_total",
                               "Faults injected by the active fault plan",
                               label_names=("kind",))
        fault_counts = dict(stats.fault_counters)
        if faults is not None:
            for kind, count in getattr(faults, "injected", {}).items():
                fault_counts.setdefault(kind, count)
        for kind in sorted(fault_counts):
            injected.inc(fault_counts[kind], labels=(kind,))
        if faults is not None:
            reg.counter("repro_worker_restarts_total",
                        "Crashed or hung workers restarted") \
                .inc(faults.worker_restarts)
            replay = reg.counter("repro_replayed_batches_total",
                                 "Redo-log batches by replay outcome",
                                 label_names=("outcome",))
            replay.inc(faults.replayed_batches, labels=("replayed",))
            replay.inc(faults.unreplayable_batches,
                       labels=("unreplayable",))
            reg.gauge("repro_quarantined_cores",
                      "Cores whose subscription callback is quarantined") \
                .set(len(faults.quarantined_cores))
            reg.gauge("repro_lost_cores",
                      "Cores that exhausted their restart budget") \
                .set(len(faults.lost_cores))
            reg.gauge("repro_run_degraded",
                      "1 when the run completed with partial results") \
                .set(1 if faults.degraded else 0)

    # -- overload ladder (repro.overload) ----------------------------------
    if overload is not None:
        from repro.overload import RUNG_NAMES

        shed_p = reg.counter(
            "repro_overload_shed_packets_total",
            "Packets shed by overload admission control, by ladder rung",
            label_names=("rung",))
        shed_b = reg.counter(
            "repro_overload_shed_bytes_total",
            "Wire bytes shed by overload admission control, by rung",
            label_names=("rung",))
        for rung, name in enumerate(RUNG_NAMES):
            if overload.shed_packets[rung]:
                shed_p.inc(overload.shed_packets[rung], labels=(name,))
                shed_b.inc(overload.shed_bytes[rung], labels=(name,))
        layer_p = reg.counter(
            "repro_overload_shed_layer_packets_total",
            "Packets shed, attributed to the filter-funnel layer that "
            "would have processed them", label_names=("layer",))
        for layer in sorted(overload.layer_packets):
            layer_p.inc(overload.layer_packets[layer], labels=(layer,))
        reg.counter("repro_overload_conns_downgraded_total",
                    "Established connections downgraded by the rung-3 "
                    "circuit breaker") \
            .inc(overload.conns_downgraded)
        transitions = reg.counter(
            "repro_overload_rung_transitions_total",
            "Ladder transitions into each rung", label_names=("rung",))
        rung_time = reg.gauge(
            "repro_overload_rung_seconds",
            "Virtual seconds spent on each ladder rung",
            label_names=("rung",))
        entered = [0] * len(RUNG_NAMES)
        for _, _, to_rung, _, _ in overload.transitions:
            entered[to_rung] += 1
        for rung, name in enumerate(RUNG_NAMES):
            if entered[rung]:
                transitions.inc(entered[rung], labels=(name,))
            if overload.rung_time[rung]:
                rung_time.set(overload.rung_time[rung], labels=(name,))
        reg.gauge("repro_overload_failfast",
                  "1 when the run aborted via the failfast rung") \
            .set(0 if overload.failfast_at is None else 1)

    # -- link impairment (repro.netem) -------------------------------------
    if impairment is not None:
        offered = reg.counter(
            "repro_impair_offered_packets_total",
            "Packets the impaired link was offered, by outcome",
            label_names=("outcome",))
        offered.inc(impairment.offered, labels=("offered",))
        offered.inc(impairment.delivered, labels=("delivered",))
        offered.inc(impairment.duplicated, labels=("duplicated",))
        ibytes = reg.counter(
            "repro_impair_bytes_total",
            "Wire bytes through the impaired link, by outcome",
            label_names=("outcome",))
        ibytes.inc(impairment.offered_bytes, labels=("offered",))
        ibytes.inc(impairment.delivered_bytes, labels=("delivered",))
        drop = reg.counter(
            "repro_impair_dropped_packets_total",
            "Packets lost on the impaired link, by cause",
            label_names=("cause",))
        drop_b = reg.counter(
            "repro_impair_dropped_bytes_total",
            "Wire bytes lost on the impaired link, by cause",
            label_names=("cause",))
        for cause in sorted(impairment.dropped):
            if impairment.dropped[cause]:
                drop.inc(impairment.dropped[cause], labels=(cause,))
                drop_b.inc(impairment.dropped_bytes[cause],
                           labels=(cause,))
        mangled = reg.counter(
            "repro_impair_corrupted_packets_total",
            "Frames with flipped bits, by detectability",
            label_names=("mode",))
        if impairment.corrupted:
            mangled.inc(impairment.corrupted - impairment.corrupted_silent,
                        labels=("detectable",))
            mangled.inc(impairment.corrupted_silent, labels=("silent",))
        if impairment.reordered:
            reg.counter("repro_impair_reordered_packets_total",
                        "Frames delivered out of their offered order") \
                .inc(impairment.reordered)
        if impairment.delayed:
            reg.counter("repro_impair_delayed_packets_total",
                        "Frames whose timestamp absorbed link jitter") \
                .inc(impairment.delayed)
        link_off = reg.counter(
            "repro_impair_link_packets_total",
            "Per-ingress-link packet attribution",
            label_names=("link", "outcome"))
        disables = reg.counter(
            "repro_impair_link_disables_total",
            "Disable-and-repair cycles triggered per ingress link",
            label_names=("link",))
        for port in sorted(impairment.per_link):
            row = impairment.per_link[port]
            link = str(port)
            for outcome in ("offered", "delivered", "loss",
                            "corrupted", "quarantine", "link_disabled"):
                if row.get(outcome):
                    link_off.inc(row[outcome], labels=(link, outcome))
            if row.get("disables"):
                disables.inc(row["disables"], labels=(link,))
        reg.gauge("repro_impair_goodput_fraction",
                  "Delivered / offered wire bytes on the impaired link") \
            .set(round(impairment.goodput_fraction, 9))

    if stats.reasm_truncations:
        reg.counter("repro_reassembly_truncations_total",
                    "Stream segments dropped on reassembly-buffer "
                    "overflow (explicit truncation events)") \
            .inc(stats.reasm_truncations)
        reg.counter("repro_reassembly_truncated_bytes_total",
                    "Payload bytes lost to reassembly truncation") \
            .inc(stats.reasm_truncated_bytes)

    # -- reassembly discard accounting (satellite: previously silent) ------
    reasm_discards = (stats.reasm_dup_segments + stats.reasm_overlap_segments
                      + stats.reasm_stale_retransmits
                      + stats.reasm_overflow_drops)
    if reasm_discards:
        disc = reg.counter(
            "repro_reassembly_discarded_segments_total",
            "Segments (or segment fragments) the lazy reassembler "
            "discarded, by kind: duplicate retransmits, partial "
            "overlaps (tail forwarded), held copies superseded by a "
            "racing retransmit, and out-of-order window overflows",
            label_names=("kind",))
        for kind, value in (
                ("duplicate", stats.reasm_dup_segments),
                ("overlap", stats.reasm_overlap_segments),
                ("stale_retransmit", stats.reasm_stale_retransmits),
                ("window_overflow", stats.reasm_overflow_drops)):
            if value:
                disc.inc(value, labels=(kind,))
    if stats.reasm_window_grows or stats.reasm_window_shrinks:
        adapt = reg.counter(
            "repro_reassembly_window_resizes_total",
            "Adaptive out-of-order window resizes, by direction",
            label_names=("direction",))
        if stats.reasm_window_grows:
            adapt.inc(stats.reasm_window_grows, labels=("grow",))
        if stats.reasm_window_shrinks:
            adapt.inc(stats.reasm_window_shrinks, labels=("shrink",))

    # -- parallel backend health (volatile: wall-clock/schedule noise) -----
    if backend_health is not None:
        reg.gauge("repro_feeder_block_seconds",
                  "Wall-clock seconds the feeder spent blocked on full "
                  "worker queues", volatile=True) \
            .set(backend_health.get("feeder_block_seconds", 0.0))
        reg.counter("repro_ipc_bytes_total",
                    "Flat-buffer bytes shipped feeder->workers",
                    volatile=True) \
            .inc(backend_health.get("ipc_bytes", 0))
        reg.gauge("repro_ipc_bytes_per_packet",
                  "Average serialized IPC bytes per dispatched packet "
                  "(flat-buffer batches: frames blob + offset/ts/port "
                  "arrays)", volatile=True) \
            .set(backend_health.get("ipc_bytes_per_packet", 0.0))
        qhw = reg.gauge("repro_worker_queue_highwater",
                        "Per-worker input queue depth high-water mark "
                        "(batches)", label_names=("worker",),
                        volatile=True)
        batches = reg.counter("repro_worker_batches_total",
                              "Batches dispatched to each worker",
                              label_names=("worker",), volatile=True)
        occ = reg.gauge("repro_worker_batch_occupancy_max",
                        "Largest batch (packets) each worker received",
                        label_names=("worker",), volatile=True)
        for row in backend_health.get("workers", ()):
            worker = str(row["worker"])
            qhw.set(row.get("queue_highwater", 0), labels=(worker,))
            batches.inc(row.get("batches", 0), labels=(worker,))
            occ.set(row.get("batch_occupancy_max", 0), labels=(worker,))
        if "ring_highwater" in backend_health:
            # Shared-memory transport only: ring/mempool pressure. The
            # families are absent entirely on queue-transport runs.
            rhw = reg.gauge("repro_worker_ring_highwater",
                            "Per-worker descriptor-ring occupancy "
                            "high-water mark (entries)",
                            label_names=("worker",), volatile=True)
            starv = reg.counter("repro_worker_slot_starvation_total",
                                "Times the feeder blocked waiting for "
                                "a free mempool slot, per worker",
                                label_names=("worker",), volatile=True)
            for row in backend_health.get("workers", ()):
                worker = str(row["worker"])
                rhw.set(row.get("ring_highwater", 0), labels=(worker,))
                starv.inc(row.get("slot_starvation_waits", 0),
                          labels=(worker,))
            reg.gauge("repro_slot_starvation_seconds",
                      "Wall-clock seconds the feeder spent blocked on "
                      "slot/ring exhaustion across all workers",
                      volatile=True) \
                .set(backend_health.get("slot_starvation_seconds", 0.0))

    # -- multi-tenant breakdown (repro.tenancy) ----------------------------
    if tenancy is not None:
        reg.gauge("repro_tenancy_epoch",
                  "Filter-table epoch at the end of the run") \
            .set(tenancy.get("epoch", 0))
        active = set(tenancy.get("active", ()))
        tenants = tenancy.get("tenants", {})
        shed_ledgers = tenancy.get("shed", {})
        tactive = reg.gauge("repro_tenant_active",
                            "1 when the tenant is subscribed at the "
                            "final epoch", label_names=("tenant",))
        tfun = reg.counter("repro_tenant_funnel_packets_total",
                           "Per-tenant packets entering/surviving each "
                           "filter layer",
                           label_names=("tenant", "layer", "edge"))
        tdrop = reg.counter(
            "repro_tenant_funnel_dropped_packets_total",
            "Per-tenant packets discarded at each filter layer",
            label_names=("tenant", "layer"))
        tcb = reg.counter("repro_tenant_callbacks_total",
                          "Per-tenant subscription callback runs",
                          label_names=("tenant",))
        tconn = reg.counter("repro_tenant_connections_total",
                            "Per-tenant connection lifecycle outcomes",
                            label_names=("tenant", "event"))
        for name in sorted(tenants):
            tstats = tenants[name]
            tactive.set(1 if name in active else 0, labels=(name,))
            for layer in build_funnel(tstats):
                tfun.inc(layer.packets_in,
                         labels=(name, layer.layer, "in"))
                tfun.inc(layer.packets_out,
                         labels=(name, layer.layer, "out"))
                tdrop.inc(layer.dropped_packets,
                          labels=(name, layer.layer))
            tcb.inc(tstats.callbacks, labels=(name,))
            tconn.inc(tstats.conns_created, labels=(name, "created"))
            tconn.inc(tstats.conns_delivered,
                      labels=(name, "delivered"))
            tconn.inc(tstats.conns_discarded,
                      labels=(name, "discarded"))
            tconn.inc(tstats.conns_expired, labels=(name, "expired"))
        if shed_ledgers:
            tshed = reg.counter(
                "repro_tenant_shed_packets_total",
                "Packets shed by per-tenant quota/pressure metering",
                label_names=("tenant", "layer"))
            tshed_b = reg.counter(
                "repro_tenant_shed_bytes_total",
                "Bytes shed by per-tenant quota/pressure metering",
                label_names=("tenant",))
            for name in sorted(shed_ledgers):
                ledger = shed_ledgers[name]
                for layer in sorted(ledger.layer_packets):
                    tshed.inc(ledger.layer_packets[layer],
                              labels=(name, layer))
                tshed_b.inc(ledger.bytes_shed, labels=(name,))
    return reg


def render_metrics(stats: AggregateStats,
                   backend_health: Optional[dict] = None,
                   include_volatile: bool = False,
                   faults: Optional[object] = None,
                   overload: Optional[object] = None,
                   impairment: Optional[object] = None,
                   tenancy: Optional[dict] = None) -> str:
    """The run's metrics in the Prometheus text exposition format."""
    return build_registry(stats, backend_health, faults=faults,
                          overload=overload, impairment=impairment,
                          tenancy=tenancy) \
        .render_prometheus(include_volatile=include_volatile)


def write_metrics(path: Union[str, Path], stats: AggregateStats,
                  backend_health: Optional[dict] = None,
                  include_volatile: bool = False,
                  faults: Optional[object] = None,
                  overload: Optional[object] = None,
                  impairment: Optional[object] = None,
                  tenancy: Optional[dict] = None) -> None:
    Path(path).write_text(
        render_metrics(stats, backend_health, include_volatile,
                       faults=faults, overload=overload,
                       impairment=impairment, tenancy=tenancy))


def trace_lines(stats: AggregateStats) -> List[str]:
    """The run's sampled trace as NDJSON lines (canonical order)."""
    return [json.dumps(record, separators=(",", ":"), sort_keys=True)
            for record in trace_event_dicts(stats.trace_events)]


def write_trace(sink: Union[str, Path, IO[str]], stats: AggregateStats,
                batch_size: int = 256) -> int:
    """Write the sampled connection traces as an NDJSON event stream.

    Reuses the analysis log writer's buffering so multi-thousand-event
    traces do not pay one write syscall per line. Returns the number of
    events written.
    """
    from repro.analysis.logwriter import BufferedLineWriter
    lines = trace_lines(stats)
    with BufferedLineWriter(sink, batch_size=batch_size) as writer:
        for line in lines:
            writer.write_line(line)
    return len(lines)


def overload_lines(ledger) -> List[str]:
    """A merged :class:`repro.overload.LossLedger` as NDJSON lines.

    Deterministic order: per-rung shed summaries, per-layer
    attribution, every ladder transition (already merge-sorted by
    virtual time), then one run summary line.
    """
    from repro.overload import RUNG_NAMES

    records: List[dict] = []
    for rung, name in enumerate(RUNG_NAMES):
        if ledger.shed_packets[rung]:
            records.append({"event": "shed", "rung": name,
                            "packets": ledger.shed_packets[rung],
                            "bytes": ledger.shed_bytes[rung]})
    for layer in sorted(ledger.layer_packets):
        records.append({"event": "shed_layer", "layer": layer,
                        "packets": ledger.layer_packets[layer]})
    for ts, from_rung, to_rung, reason, core in ledger.transitions:
        records.append({"event": "transition", "ts": round(ts, 9),
                        "from": RUNG_NAMES[from_rung],
                        "to": RUNG_NAMES[to_rung],
                        "reason": reason, "core": core})
    records.append({"event": "summary",
                    "packets_seen": ledger.packets_seen,
                    "packets_analyzed": ledger.packets_analyzed,
                    "packets_shed": ledger.packets_shed,
                    "bytes_shed": ledger.bytes_shed,
                    "conns_downgraded": ledger.conns_downgraded,
                    "reasm_truncations": ledger.reasm_truncations,
                    "max_rung_seen": ledger.max_rung_seen,
                    "failfast_at": ledger.failfast_at})
    return [json.dumps(record, separators=(",", ":"), sort_keys=True)
            for record in records]


def write_overload(sink: Union[str, Path, IO[str]], ledger,
                   batch_size: int = 256) -> int:
    """Write the loss ledger as an NDJSON stream (``--overload-out``).

    Returns the number of records written.
    """
    from repro.analysis.logwriter import BufferedLineWriter
    lines = overload_lines(ledger)
    with BufferedLineWriter(sink, batch_size=batch_size) as writer:
        for line in lines:
            writer.write_line(line)
    return len(lines)


def impairment_lines(ledger) -> List[str]:
    """An :class:`repro.netem.ImpairmentLedger` as NDJSON lines.

    Deterministic order: one totals line, per-cause drop lines,
    per-link attribution lines (sorted by link id), every link
    lifecycle event in virtual-time order, then one summary line
    restating the conservation invariant.
    """
    records: List[dict] = []
    records.append({"event": "totals",
                    "offered": ledger.offered,
                    "offered_bytes": ledger.offered_bytes,
                    "delivered": ledger.delivered,
                    "delivered_bytes": ledger.delivered_bytes,
                    "duplicated": ledger.duplicated,
                    "corrupted": ledger.corrupted,
                    "corrupted_silent": ledger.corrupted_silent,
                    "reordered": ledger.reordered,
                    "delayed": ledger.delayed})
    for cause in sorted(ledger.dropped):
        if ledger.dropped[cause]:
            records.append({"event": "drop", "cause": cause,
                            "packets": ledger.dropped[cause],
                            "bytes": ledger.dropped_bytes[cause]})
    for port in sorted(ledger.per_link):
        row = dict(ledger.per_link[port])
        row["event"] = "link"
        row["link"] = port
        records.append(row)
    for ts, port, event, detail in ledger.link_events:
        records.append({"event": "link_event", "ts": round(ts, 9),
                        "link": port, "kind": event, "detail": detail})
    records.append({"event": "summary",
                    "config": ledger.config,
                    "dropped_total": ledger.dropped_total,
                    "goodput_fraction": round(ledger.goodput_fraction, 9),
                    "balanced": ledger.offered + ledger.duplicated ==
                    ledger.delivered + ledger.dropped_total})
    return [json.dumps(record, separators=(",", ":"), sort_keys=True)
            for record in records]


def write_impairment(sink: Union[str, Path, IO[str]], ledger,
                     batch_size: int = 256) -> int:
    """Write the impairment ledger as an NDJSON stream (``--impair-out``).

    Returns the number of records written.
    """
    from repro.analysis.logwriter import BufferedLineWriter
    lines = impairment_lines(ledger)
    with BufferedLineWriter(sink, batch_size=batch_size) as writer:
        for line in lines:
            writer.write_line(line)
    return len(lines)


def check_cycle_hist(stats: AggregateStats) -> None:
    """Assert histogram/ledger parity on an aggregate (the cross-core
    analogue of :meth:`repro.core.cycles.CycleLedger.check_hist_parity`).

    Every stage's histogram totals must equal its ledger invocation
    count — the batched hot paths settle their buckets through
    ``observe_batched`` — except HARDWARE_FILTER, whose zero-cost
    admits are charged but some seeds never populate (total ≤
    invocations there).
    """
    if stats.stage_cycle_hist is None:
        return
    bad = []
    for stage in Stage:
        total = sum(stats.stage_cycle_hist[stage])
        want = stats.stage_invocations[stage]
        if stage is Stage.HARDWARE_FILTER:
            if total > want:
                bad.append("%s: hist=%d > ledger=%d"
                           % (stage.value, total, want))
        elif total != want:
            bad.append("%s: hist=%d ledger=%d"
                       % (stage.value, total, want))
    assert not bad, \
        "cycle-histogram/ledger parity broken: " + "; ".join(bad)


# -- span exports (repro.telemetry.spans) ----------------------------------
def write_spans(sink: Union[str, Path, IO[str]], report,
                batch_size: int = 256) -> int:
    """Write a :class:`~repro.telemetry.spans.SpanReport` as an NDJSON
    stream (``--spans-ndjson``). Returns the number of records."""
    from repro.analysis.logwriter import BufferedLineWriter
    count = 0
    with BufferedLineWriter(sink, batch_size=batch_size) as writer:
        for line in report.ndjson_lines():
            writer.write_line(line)
            count += 1
    return count


def write_chrome_trace(sink: Union[str, Path, IO[str]], report) -> int:
    """Write a span report as Chrome trace-event JSON
    (``--spans-out``; load in Perfetto or chrome://tracing). Returns
    the number of trace events."""
    trace = report.chrome_trace()
    text = json.dumps(trace, separators=(",", ":"), sort_keys=True)
    if hasattr(sink, "write"):
        sink.write(text)
    else:
        Path(sink).write_text(text)
    return len(trace["traceEvents"])


def write_flight(sink: Union[str, Path, IO[str]], report) -> int:
    """Write the flight-recorder dump (``--flight-out``) as
    deterministic JSON. Returns the number of triggered dumps."""
    dump = report.flight_dump()
    text = json.dumps(dump, indent=1, sort_keys=True)
    if hasattr(sink, "write"):
        sink.write(text)
    else:
        Path(sink).write_text(text)
    return len(dump["dumps"])
