"""Sampled connection-lifecycle tracing.

One trace follows a connection through the pipeline's decision points —
``created → probed → parsed → matched/discarded → delivered/expired`` —
with the *virtual* timestamps the cycle model runs on, so a trace reads
like a timeline of what the filter funnel did to that flow.

Determinism is the design constraint: whether a connection is sampled
depends only on its direction-canonical five-tuple (hashed with CRC-32,
never Python's randomized ``hash``), and the exported event order is a
stable sort on ``(timestamp, connection, sequence)``. The same traffic
and core count therefore yield byte-identical trace output from the
sequential backend and from the parallel backend — symmetric RSS puts
all of a connection's events on one core, in lifecycle order, and the
per-core packet streams are identical whichever backend runs them.
"""

from __future__ import annotations

import zlib
from typing import Iterable, List, Tuple

#: The lifecycle event vocabulary, in rough pipeline order.
TRACE_EVENTS = (
    "created",     # connection entered the table
    "probed",      # protocol probe resolved (detail: service or "none")
    "parsed",      # one application-layer session parsed
    "matched",     # full filter satisfied (detail: deciding layer)
    "discarded",   # filter rejected / nothing more to deliver
    "delivered",   # subscription data handed to the callback
    "expired",     # timer wheel harvested the connection
)

#: One recorded event: (timestamp, connection string, per-core sequence,
#: event name, detail). The sequence number only breaks sort ties — it
#: is dropped from exports because its absolute value depends on the
#: sharding.
TraceEvent = Tuple[float, str, int, str, str]


def stable_sample_hash(key) -> int:
    """CRC-32 of a connection's canonical key, identical across
    processes and runs (``PYTHONHASHSEED``-proof).

    ``key`` is ``FiveTuple.canonical()``: (ip, port, ip, port, proto)
    with packed-bytes addresses. Ports and protocol are fixed-width so
    the concatenation is unambiguous.
    """
    ip_a, port_a, ip_b, port_b, proto = key
    packed = b"".join((
        ip_a, port_a.to_bytes(2, "big"),
        ip_b, port_b.to_bytes(2, "big"),
        proto.to_bytes(1, "big"),
    ))
    return zlib.crc32(packed) & 0xFFFFFFFF


class ConnectionTracer:
    """Records lifecycle events for the sampled subset of connections.

    Appends events to a caller-owned list (the per-core
    ``CoreStats.trace_events``, so worker snapshots carry their events
    back to the parent for merging).
    """

    __slots__ = ("_threshold", "_events", "_seq")

    def __init__(self, sample_fraction: float, events: List[TraceEvent],
                 ) -> None:
        if not 0.0 <= sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in [0, 1]")
        # Map the fraction onto the 32-bit hash space; 1.0 must sample
        # everything including hash 0xFFFFFFFF.
        self._threshold = int(sample_fraction * 0x1_0000_0000)
        self._events = events
        self._seq = 0

    def sampled(self, key) -> bool:
        return stable_sample_hash(key) < self._threshold

    def record(self, conn, now: float, event: str,
               detail: str = "") -> None:
        """Record one event if the connection is sampled."""
        if stable_sample_hash(conn.key) >= self._threshold:
            return
        self._seq += 1
        self._events.append(
            (now, str(conn.five_tuple), self._seq, event, detail))


def sort_trace_events(events: Iterable[TraceEvent]) -> List[TraceEvent]:
    """The canonical event order: by timestamp, then connection, then
    per-core arrival sequence.

    Within one connection all events share a core (symmetric RSS) and
    the per-core sequence increases along its lifecycle, so ties on
    ``(timestamp, connection)`` resolve to lifecycle order regardless
    of how many workers recorded them.
    """
    return sorted(events, key=lambda e: (e[0], e[1], e[2]))


def trace_event_dicts(events: Iterable[TraceEvent]) -> List[dict]:
    """Sorted, export-ready dicts with per-connection event indices
    (the core-local sequence numbers are deliberately dropped)."""
    out = []
    indices: dict = {}
    for ts, conn, _seq, event, detail in sort_trace_events(events):
        index = indices.get(conn, 0)
        indices[conn] = index + 1
        record = {"ts": round(ts, 9), "conn": conn, "i": index,
                  "event": event}
        if detail:
            record["detail"] = detail
        out.append(record)
    return out
