"""Telemetry subsystem: metrics registry, filter funnel, tracing.

Retina's Section 5.3 promises "logs and real-time monitoring of packet
loss, throughput, and memory usage" as the user's feedback loop for
tuning filters and callbacks, and its evaluation hinges on *where*
traffic is discarded across the four filter layers. This package makes
that telemetry first-class:

* :mod:`repro.telemetry.registry` — a dependency-free process-local
  metrics registry (counters, gauges, fixed-bucket histograms) with a
  no-op twin for zero-overhead disabled runs;
* :mod:`repro.telemetry.funnel` — the filter-funnel table: packets and
  bytes surviving each of the four filter layers (NIC hardware filter,
  software packet filter, connection filter, session filter);
* :mod:`repro.telemetry.trace` — a sampled connection-lifecycle tracer
  whose output is deterministic across backends and worker counts;
* :mod:`repro.telemetry.spans` — burst span trees, the flight
  recorder, and the continuous hot-path profiler (see
  docs/OBSERVABILITY.md);
* :mod:`repro.telemetry.export` — Prometheus-text and NDJSON exporters
  (imported lazily; ``from repro.telemetry import export``).

Both execution backends (sequential and parallel) produce byte-identical
metric exports and trace samples for the same traffic, because every
telemetry counter lives in per-core :class:`~repro.core.stats.CoreStats`
and merges through the same deterministic aggregation path.
"""

from repro.telemetry.funnel import FunnelLayer, build_funnel, check_funnel, \
    funnel_table
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRecorder,
    NULL_RECORDER,
)
from repro.telemetry.spans import (
    NULL_SPAN_RECORDER,
    NullSpanRecorder,
    SPAN_HIST_BOUNDS,
    SpanRecorder,
    SpanReport,
    build_span_report,
    chrome_trace_events,
    tree_public,
)
from repro.telemetry.trace import (
    TRACE_EVENTS,
    ConnectionTracer,
    sort_trace_events,
    stable_sample_hash,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "NULL_RECORDER",
    "FunnelLayer",
    "build_funnel",
    "check_funnel",
    "funnel_table",
    "ConnectionTracer",
    "TRACE_EVENTS",
    "sort_trace_events",
    "stable_sample_hash",
    "SpanRecorder",
    "NullSpanRecorder",
    "NULL_SPAN_RECORDER",
    "SPAN_HIST_BOUNDS",
    "SpanReport",
    "build_span_report",
    "chrome_trace_events",
    "tree_public",
]
