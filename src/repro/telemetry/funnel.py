"""The filter funnel: where traffic is discarded, layer by layer.

Retina's headline design rule is "discard as early as possible": the
NIC's hardware filter drops what flow rules can express, the software
packet filter drops per packet, the connection filter drops at protocol
resolution, and the session filter drops at session completion. This
module turns that claim into an inspectable per-run table — packets and
bytes *surviving* each layer, with per-layer drop fractions — built
from the merged :class:`~repro.core.stats.AggregateStats`, so both
execution backends produce the identical funnel for the same traffic.

The funnel invariant (asserted by tests for the whole filter corpus):
survivors are monotonically non-increasing down the layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: The four filter layers, in pipeline order (Figure 7's bars).
FUNNEL_LAYERS = (
    "nic_hardware",
    "packet_filter",
    "connection_filter",
    "session_filter",
)


@dataclass(frozen=True)
class FunnelLayer:
    """One row of the funnel table."""

    layer: str
    packets_in: int
    packets_out: int
    bytes_in: int
    bytes_out: int

    @property
    def dropped_packets(self) -> int:
        return self.packets_in - self.packets_out

    @property
    def drop_fraction(self) -> float:
        if not self.packets_in:
            return 0.0
        return self.dropped_packets / self.packets_in

    def to_dict(self) -> dict:
        return {
            "layer": self.layer,
            "packets_in": self.packets_in,
            "packets_out": self.packets_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "dropped_packets": self.dropped_packets,
            "drop_fraction": self.drop_fraction,
        }


def build_funnel(stats) -> List[FunnelLayer]:
    """The four-layer funnel from merged aggregate stats.

    Survivor semantics, chosen so monotonicity holds per packet:

    * ``nic_hardware`` — ingress packets minus hardware-filter and
      sink-queue drops (what reaches the CPU);
    * ``packet_filter`` — packets the software packet filter matched;
    * ``connection_filter`` — matched packets whose connection had
      passed the connection layer (or needed none) when the packet was
      processed — packets of still-undecided (probing) or rejected
      connections do not survive;
    * ``session_filter`` — packets of connections whose *full* filter
      was satisfied when the packet was processed.
    """
    dispatched = (stats.ingress_packets - stats.hw_dropped_packets
                  - stats.sink_dropped_packets)
    return [
        FunnelLayer("nic_hardware",
                    stats.ingress_packets, dispatched,
                    stats.ingress_bytes, stats.processed_bytes),
        FunnelLayer("packet_filter",
                    stats.processed_packets, stats.pf_packets,
                    stats.processed_bytes, stats.pf_bytes),
        FunnelLayer("connection_filter",
                    stats.pf_packets, stats.connf_packets,
                    stats.pf_bytes, stats.connf_bytes),
        FunnelLayer("session_filter",
                    stats.connf_packets, stats.sessf_packets,
                    stats.connf_bytes, stats.sessf_bytes),
    ]


def check_funnel(layers: List[FunnelLayer]) -> None:
    """Raise AssertionError unless survivors are monotonically
    non-increasing and every layer's output is bounded by its input."""
    for layer in layers:
        assert 0 <= layer.packets_out <= layer.packets_in, \
            f"{layer.layer}: {layer.packets_out} out of " \
            f"{layer.packets_in} in"
        assert 0 <= layer.bytes_out <= layer.bytes_in, \
            f"{layer.layer}: {layer.bytes_out}B out of " \
            f"{layer.bytes_in}B in"
    outs = [layer.packets_out for layer in layers]
    assert outs == sorted(outs, reverse=True), \
        f"funnel not monotone: {outs}"


def funnel_table(stats) -> str:
    """Human-readable funnel (the §5.3 feedback table)."""
    layers = build_funnel(stats)
    width = max(len(layer.layer) for layer in layers)
    lines = [f"{'layer':<{width}}  {'pkts in':>10}  {'pkts out':>10}  "
             f"{'dropped':>10}  {'drop%':>6}"]
    for layer in layers:
        lines.append(
            f"{layer.layer:<{width}}  {layer.packets_in:>10}  "
            f"{layer.packets_out:>10}  {layer.dropped_packets:>10}  "
            f"{layer.drop_fraction * 100:>5.1f}%")
    discards = (stats.reasm_dup_segments + stats.reasm_overlap_segments
                + stats.reasm_stale_retransmits
                + stats.reasm_overflow_drops)
    if discards:
        # Reassembly discards happen past the funnel (inside accepted
        # connections) but belong in the same loss-accounting story:
        # these segments were admitted, then not delivered to callbacks.
        lines.append(
            f"reassembly discards: dup={stats.reasm_dup_segments} "
            f"overlap={stats.reasm_overlap_segments} "
            f"stale_retransmit={stats.reasm_stale_retransmits} "
            f"window_overflow={stats.reasm_overflow_drops}")
    return "\n".join(lines)
