"""Closed-loop overload control (the graceful alternative to §7's
fail-fast exit).

Retina's answer to overload is blunt: watch mempool saturation and
packet drops, and exit on sustained loss rather than silently corrupt
results. This package keeps that option (now opt-in) but adds the
degradation ladder commodity deployments actually need: sense per-core
pressure, shed the least valuable *new* work first, preserve
established connections bit-exactly, and account for every packet and
connection that was not analyzed.

- :class:`~repro.overload.ledger.LossLedger` — precise, per-rung and
  per-funnel-layer accounting of everything shed or downgraded.
- :class:`~repro.overload.controller.OverloadController` — the
  AIMD-style ladder state machine, clocked on per-core virtual time so
  rung transitions (and therefore every shed decision) are byte-
  identical between the sequential and parallel backends.
"""

from repro.overload.controller import (
    RUNG_DOWNGRADE,
    RUNG_FAILFAST,
    RUNG_NAMES,
    RUNG_NORMAL,
    RUNG_SHED_NEW_CONNS,
    RUNG_SHED_PACKET_LEVEL,
    OverloadController,
)
from repro.overload.ledger import LossLedger, merge_ledgers

__all__ = [
    "LossLedger",
    "merge_ledgers",
    "OverloadController",
    "RUNG_NAMES",
    "RUNG_NORMAL",
    "RUNG_SHED_PACKET_LEVEL",
    "RUNG_SHED_NEW_CONNS",
    "RUNG_DOWNGRADE",
    "RUNG_FAILFAST",
]
