"""The AIMD degradation-ladder controller.

One controller runs per core, evaluated at a fixed *virtual-time*
cadence inside the packet loop. Clocking on virtual time is what makes
the whole subsystem deterministic: per-core packet streams are
identical across backends and batch sizes, so every controller sees
the same (now, busy_seconds, memory) sequence and takes the same rung
transitions — and therefore sheds the same packets — whether the core
runs on the calling thread or in a worker process.

Pressure signals:

- **cycle backlog** — how far the core's virtual cycle ledger has
  fallen behind the packet arrival clock
  (``busy_seconds - elapsed``), normalized by the operator's target
  lag. This is the virtual analogue of the RX descriptor ring filling
  up.
- **memory occupancy** — connection-table bytes against the core's
  share of ``memory_limit_bytes`` (when a limit is configured),
  normalized so pressure 1.0 sits at 90% of the share.

The parallel backend's dispatch-queue depth is deliberately *not* a
ladder input: it is wall-clock and scheduler dependent, so driving
rung transitions from it would break cross-backend determinism. Queue
depth remains visible as volatile backend-health telemetry
(``RuntimeReport.backend_health``); see docs/OVERLOAD.md.

The ladder (additive-increase, multiplicative-decrease):

- pressure > 1.0 → climb one rung (capped at ``overload_max_rung``);
- pressure < 0.5 for ``overload_relax_ticks`` consecutive ticks →
  drop to ``rung // 2``;
- otherwise hold.

Policies: ``ladder`` climbs the rungs; ``failfast`` never sheds and
instead trips (paper-faithful §7 exit) after three consecutive
overloaded ticks — the same "three strikes" rule as the monitor's
``sustained_loss`` signal. A ladder capped at rung 4 trips fail-fast
when it runs out of rungs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # avoid a config<->overload import cycle at runtime
    from repro.config import RuntimeConfig

from repro.overload.ledger import RUNG_NAMES, LossLedger

#: The ladder's rungs.
RUNG_NORMAL = 0
RUNG_SHED_PACKET_LEVEL = 1
RUNG_SHED_NEW_CONNS = 2
RUNG_DOWNGRADE = 3
RUNG_FAILFAST = 4

#: Consecutive overloaded ticks before the failfast policy trips —
#: mirrors StatsMonitor.sustained_loss's three-sample rule.
_FAILFAST_TICKS = 3

#: Memory pressure reaches 1.0 at this fraction of the core's share,
#: leaving headroom for in-flight growth before the hard limit.
_MEM_HEADROOM = 0.9


class OverloadController:
    """Per-core ladder state machine. See the module docstring."""

    __slots__ = ("policy", "target_lag", "interval", "max_rung",
                 "relax_ticks", "ledger", "rung", "last_pressure",
                 "_hot", "_calm", "_first_ts", "_last_tick")

    def __init__(self, config: "RuntimeConfig", ledger: LossLedger,
                 initial_rung: int = 0) -> None:
        self.policy = config.overload_policy
        self.target_lag = config.overload_target_lag
        self.interval = config.overload_eval_interval
        self.max_rung = config.overload_max_rung
        self.relax_ticks = config.overload_relax_ticks
        self.ledger = ledger
        # A restarted worker resumes at the rung its predecessor held
        # (the supervisor carries it across the restart) so a crash
        # mid-overload does not silently reopen the admission gate.
        self.rung = min(max(initial_rung, 0), RUNG_FAILFAST)
        self.last_pressure = 0.0
        self._hot = 0
        self._calm = 0
        self._first_ts: Optional[float] = None
        self._last_tick: Optional[float] = None

    # -- the tick ------------------------------------------------------
    def evaluate(self, now: float, busy_seconds: float,
                 memory_bytes: int,
                 memory_share: Optional[int]) -> bool:
        """One controller tick at virtual time ``now``. Returns True
        when the run should fail fast."""
        if self._first_ts is None:
            self._first_ts = now
            self._last_tick = now
        self.ledger.rung_time[self.rung] += now - self._last_tick
        self._last_tick = now

        backlog = busy_seconds - (now - self._first_ts)
        pressure = backlog / self.target_lag
        if memory_share:
            mem_pressure = memory_bytes / (_MEM_HEADROOM * memory_share)
            if mem_pressure > pressure:
                pressure = mem_pressure
        self.last_pressure = pressure

        if pressure > 1.0:
            self._hot += 1
            self._calm = 0
            if self.policy == "failfast":
                return self._hot >= _FAILFAST_TICKS
            if self.rung < self.max_rung:
                self._transition(now, self.rung + 1,
                                 f"pressure={pressure:.2f}")
            return self.rung >= RUNG_FAILFAST
        self._hot = 0
        if pressure < 0.5:
            self._calm += 1
            if self._calm >= self.relax_ticks and self.rung > RUNG_NORMAL:
                self._calm = 0
                self._transition(now, self.rung // 2, "relaxed")
        else:
            self._calm = 0
        return False

    def _transition(self, now: float, to_rung: int, reason: str) -> None:
        self.ledger.record_transition(now, self.rung, to_rung, reason)
        self.rung = to_rung

    # -- what the pipeline consults ------------------------------------
    @property
    def admission_block(self) -> int:
        """0: admit everything; 1: refuse new connections whose only
        use is packet-level delivery; 2: refuse all new connections."""
        if self.policy != "ladder":
            return 0
        if self.rung >= RUNG_SHED_NEW_CONNS:
            return 2
        if self.rung == RUNG_SHED_PACKET_LEVEL:
            return 1
        return 0

    @property
    def downgrading(self) -> bool:
        return self.policy == "ladder" and self.rung >= RUNG_DOWNGRADE

    @property
    def rung_name(self) -> str:
        return RUNG_NAMES[self.rung]
