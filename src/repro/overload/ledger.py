"""The loss ledger: precise accounting of everything *not* analyzed.

The contract of graceful degradation is that degraded output is always
accompanied by a statement of what was shed. A :class:`LossLedger`
lives on each core's :class:`~repro.core.stats.CoreStats` (so it
travels in worker-process snapshots exactly like every other counter)
and attributes each shed packet to a ladder rung and a filter-funnel
layer. The merged, all-cores view is surfaced on
``RuntimeReport.overload`` and in the Prometheus/NDJSON exports.

Invariant (tested): ``packets_seen == packets_analyzed +
packets_shed`` — the per-rung shed counts sum to total arrivals minus
analyzed packets, on every backend and worker count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Human-readable rung names, indexed by rung number. Mirrors
#: :mod:`repro.overload.controller`'s RUNG_* constants (duplicated here
#: so the ledger stays importable without the controller).
RUNG_NAMES = (
    "normal",
    "shed_packet_level",
    "shed_new_conns",
    "downgrade_heavy",
    "failfast",
)
_NUM_RUNGS = len(RUNG_NAMES)


class LossLedger:
    """Per-core (then merged) record of shed/downgraded work.

    Plain ints, floats, lists and dicts only — the whole object must
    pickle cheaply inside a worker's :class:`CoreStats` snapshot.
    """

    def __init__(self, core_id: int = 0, initial_rung: int = 0) -> None:
        self.core_id = core_id
        #: Packets that entered this core's pipeline (shed or not).
        self.packets_seen = 0
        #: Per-rung refusals: packets of connections the admission gate
        #: refused while the ladder stood at that rung, and their wire
        #: bytes. Indexed by rung number.
        self.shed_packets: List[int] = [0] * _NUM_RUNGS
        self.shed_bytes: List[int] = [0] * _NUM_RUNGS
        #: Shed packets attributed to the filter-funnel layer whose
        #: work the shed avoided (rung 1 sheds flows with only
        #: packet-layer relevance; rung 2 sheds at the connection
        #: layer; downgrades forgo session-layer work).
        self.layer_packets: Dict[str, int] = {}
        #: Established connections whose heavy processing (reassembly /
        #: session parsing) the rung-3 circuit breaker disabled.
        self.conns_downgraded = 0
        #: BufferedReassembler per-direction buffer overflows recorded
        #: while the ledger was active (see repro.stream.buffered).
        self.reasm_truncations = 0
        self.reasm_truncated_bytes = 0
        #: Rung transitions: (virtual ts, from, to, reason, core_id).
        self.transitions: List[Tuple[float, int, int, str, int]] = []
        #: Virtual seconds spent at each rung (between controller
        #: evaluation ticks).
        self.rung_time: List[float] = [0.0] * _NUM_RUNGS
        #: Virtual timestamp of the fail-fast trip, or None.
        self.failfast_at: Optional[float] = None
        self._initial_rung = initial_rung
        self.max_rung_seen = initial_rung

    # -- recording -----------------------------------------------------
    def record_shed(self, rung: int, layer: str, wire_bytes: int) -> None:
        self.shed_packets[rung] += 1
        self.shed_bytes[rung] += wire_bytes
        self.layer_packets[layer] = self.layer_packets.get(layer, 0) + 1

    def record_downgrade(self, layer: str = "session_filter") -> None:
        self.conns_downgraded += 1
        self.layer_packets[layer] = self.layer_packets.get(layer, 0)

    def record_truncation(self, dropped_bytes: int) -> None:
        self.reasm_truncations += 1
        self.reasm_truncated_bytes += dropped_bytes

    def record_transition(self, ts: float, from_rung: int, to_rung: int,
                          reason: str) -> None:
        self.transitions.append(
            (ts, from_rung, to_rung, reason, self.core_id))
        if to_rung > self.max_rung_seen:
            self.max_rung_seen = to_rung

    # -- derived -------------------------------------------------------
    @property
    def packets_shed(self) -> int:
        return sum(self.shed_packets)

    @property
    def bytes_shed(self) -> int:
        return sum(self.shed_bytes)

    @property
    def packets_analyzed(self) -> int:
        """Packets that got full (non-shed) pipeline treatment."""
        return self.packets_seen - self.packets_shed

    @property
    def current_rung(self) -> int:
        """The rung after the last transition (per-core ledgers only;
        a merged ledger reports the highest core's last rung)."""
        if not self.transitions:
            return self._initial_rung
        return self.transitions[-1][2]

    @property
    def engaged(self) -> bool:
        """True when the ladder ever left rung 0 or anything was shed."""
        return bool(self.transitions or self.packets_shed
                    or self.conns_downgraded
                    or self.failfast_at is not None)

    # -- merge / export ------------------------------------------------
    def merge(self, other: "LossLedger") -> None:
        """Fold another core's ledger into this one. Transitions stay
        tagged with their originating core and are re-sorted into
        global virtual-time order, so the merged history is identical
        whatever order cores are merged in."""
        self.packets_seen += other.packets_seen
        for i in range(_NUM_RUNGS):
            self.shed_packets[i] += other.shed_packets[i]
            self.shed_bytes[i] += other.shed_bytes[i]
            self.rung_time[i] += other.rung_time[i]
        for layer, count in other.layer_packets.items():
            self.layer_packets[layer] = \
                self.layer_packets.get(layer, 0) + count
        self.conns_downgraded += other.conns_downgraded
        self.reasm_truncations += other.reasm_truncations
        self.reasm_truncated_bytes += other.reasm_truncated_bytes
        self.transitions.extend(other.transitions)
        self.transitions.sort(key=lambda t: (t[0], t[4], t[1], t[2]))
        if other.failfast_at is not None and (
                self.failfast_at is None
                or other.failfast_at < self.failfast_at):
            self.failfast_at = other.failfast_at
        if other.max_rung_seen > self.max_rung_seen:
            self.max_rung_seen = other.max_rung_seen

    def to_dict(self) -> Dict:
        """Deterministic, JSON-serializable snapshot (feeds parity
        tests and the NDJSON export)."""
        return {
            "packets_seen": self.packets_seen,
            "packets_analyzed": self.packets_analyzed,
            "packets_shed": self.packets_shed,
            "bytes_shed": self.bytes_shed,
            "shed_by_rung": {
                RUNG_NAMES[i]: {"packets": self.shed_packets[i],
                                "bytes": self.shed_bytes[i]}
                for i in range(_NUM_RUNGS) if self.shed_packets[i]
            },
            "shed_by_layer": dict(sorted(self.layer_packets.items())),
            "conns_downgraded": self.conns_downgraded,
            "reasm_truncations": self.reasm_truncations,
            "reasm_truncated_bytes": self.reasm_truncated_bytes,
            "rung_time_s": {
                RUNG_NAMES[i]: self.rung_time[i]
                for i in range(_NUM_RUNGS) if self.rung_time[i] > 0.0
            },
            "max_rung_seen": self.max_rung_seen,
            "transitions": [
                {"ts": ts, "from": frm, "to": to, "reason": reason,
                 "core": core}
                for ts, frm, to, reason, core in self.transitions
            ],
            "failfast_at": self.failfast_at,
        }

    def describe(self) -> str:
        """One status line for the CLI."""
        parts = [f"shed={self.packets_shed}pkts/{self.bytes_shed}B",
                 f"downgraded={self.conns_downgraded}",
                 f"max_rung={self.max_rung_seen}"
                 f"({RUNG_NAMES[self.max_rung_seen]})"]
        if self.reasm_truncations:
            parts.append(f"truncations={self.reasm_truncations}")
        if self.failfast_at is not None:
            parts.append(f"FAILFAST@{self.failfast_at:.3f}s")
        return "overload: " + " ".join(parts)


def merge_ledgers(ledgers) -> Optional["LossLedger"]:
    """Merge per-core ledgers into the run-level view (None when no
    core carried one — i.e. the overload policy was off)."""
    merged: Optional[LossLedger] = None
    for ledger in ledgers:
        if ledger is None:
            continue
        if merged is None:
            merged = LossLedger(core_id=-1)
        merged.merge(ledger)
    return merged
