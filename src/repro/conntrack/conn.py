"""Per-connection state (Figure 4 states + bookkeeping).

A :class:`Connection` carries everything the pipeline needs to lazily
reconstruct data for one flow: the Figure 4 parsing state (Probe /
Parse / Track / Delete), TCP establishment tracking for the two-tier
timeouts, per-direction packet/byte counters, the stream reassembler,
the probing/parsing context, and the filter progress tags
(``pkt_term_node`` / ``conn_term_node``).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional

from repro.conntrack.five_tuple import FiveTuple
from repro.packet.mbuf import Mbuf
from repro.packet.tcp import TcpFlags

# Raw TCP flag bits for the per-packet hot path. ``record_packet`` runs
# for every analyzed packet; plain int masking avoids constructing and
# combining ``enum.IntFlag`` instances there. ``TcpFlags`` values are
# ints, so callers may pass either form.
_FIN = 0x01
_SYN = 0x02
_RST = 0x04
_ACK = 0x10
_SYN_OR_FIN = _SYN | _FIN


class ConnState(enum.Enum):
    """Figure 4 connection processing states."""

    PROBE = "probe"      # sniffing payload to identify the L7 protocol
    PARSE = "parse"      # running the application-layer parser
    TRACK = "track"      # tracking without parsing (filter satisfied)
    DELETE = "delete"    # remove from the table


class TcpConnState(enum.Enum):
    """Coarse TCP liveness for timeout tiering."""

    SYN_SENT = "syn_sent"
    ESTABLISHED = "established"
    CLOSING = "closing"       # saw FIN in one direction
    CLOSED = "closed"         # both FINs or RST


#: Baseline bytes of state per tracked connection, used for the
#: Figure 8 memory model. Chosen to be of the order of Retina's real
#: per-connection footprint (struct + hash-table slot + reassembly and
#: parser context).
CONN_BASE_MEMORY_BYTES = 512


class Connection:
    """Tracked state for one five-tuple."""

    __slots__ = (
        "five_tuple", "key", "state", "tcp_state",
        "first_ts", "last_ts", "syn_ts", "established_ts",
        "pkts_orig", "pkts_resp", "bytes_orig", "bytes_resp",
        "payload_bytes_orig", "payload_bytes_resp",
        "ooo_orig", "ooo_resp",
        "pkt_term_node", "conn_term_node", "matched", "delivered",
        "parser", "service_name", "reassembler",
        "buffered_mbufs", "buffered_bytes", "user_data",
        "history", "_next_seq_orig", "_next_seq_resp", "weirds",
    )

    def __init__(self, five_tuple: FiveTuple, now: float) -> None:
        self.five_tuple = five_tuple
        self.key = five_tuple.canonical()
        self.state = ConnState.PROBE
        self.tcp_state = (
            TcpConnState.SYN_SENT if five_tuple.protocol == 6 else
            TcpConnState.ESTABLISHED
        )
        self.first_ts = now
        self.last_ts = now
        self.syn_ts: Optional[float] = None
        self.established_ts: Optional[float] = None
        self.pkts_orig = 0
        self.pkts_resp = 0
        self.bytes_orig = 0
        self.bytes_resp = 0
        self.payload_bytes_orig = 0
        self.payload_bytes_resp = 0
        self.ooo_orig = 0
        self.ooo_resp = 0
        #: Deepest packet-filter trie node matched for this connection.
        self.pkt_term_node: Optional[int] = None
        #: Deepest connection-filter trie node matched.
        self.conn_term_node: Optional[int] = None
        #: True once the full (all-layer) filter matched.
        self.matched = False
        #: True once the subscription has delivered this connection
        #: (prevents double delivery from linger-expiry after FIN).
        self.delivered = False
        #: Active application-layer parser context (or None).
        self.parser: Optional[Any] = None
        #: Identified L7 service name, once probing succeeds.
        self.service_name: Optional[str] = None
        #: Per-direction stream reassembler (set by the pipeline when
        #: the subscription needs in-order bytes).
        self.reassembler: Optional[Any] = None
        #: Packets buffered before a full filter match (Figure 4a).
        self.buffered_mbufs: List[Mbuf] = []
        self.buffered_bytes = 0
        #: Subscription-owned per-connection data (Trackable state).
        self.user_data: Optional[Any] = None
        #: Zeek-style history string of flag events ("S", "SA", "F"...).
        self.history: List[str] = []
        # Lightweight per-direction sequence tracking for out-of-order
        # accounting — cheap enough to run even in TRACK state, where
        # the full reassembler has been torn down.
        self._next_seq_orig: Optional[int] = None
        self._next_seq_resp: Optional[int] = None
        #: Zeek-style protocol anomalies ("weirds") observed on this
        #: connection, name → count. Real-world traffic is unpredictable
        #: and malicious (the paper's Security goal); these are the
        #: analysis-visible symptoms.
        self.weirds: Dict[str, int] = {}

    # -- accessors used by the connection filter ---------------------------
    def service(self) -> Optional[str]:
        """Identified application protocol (the conn-filter accessor)."""
        return self.service_name

    @property
    def established(self) -> bool:
        return self.tcp_state in (TcpConnState.ESTABLISHED,
                                  TcpConnState.CLOSING)

    @property
    def is_single_syn(self) -> bool:
        """An unanswered SYN: one originator packet, no response."""
        return (
            self.five_tuple.protocol == 6
            and self.tcp_state is TcpConnState.SYN_SENT
            and self.pkts_resp == 0
            and self.pkts_orig <= 1
        )

    @property
    def total_packets(self) -> int:
        return self.pkts_orig + self.pkts_resp

    @property
    def total_bytes(self) -> int:
        return self.bytes_orig + self.bytes_resp

    # -- updates ---------------------------------------------------------------
    def record_packet(
        self,
        from_orig: bool,
        wire_bytes: int,
        payload_bytes: int,
        now: float,
        tcp_flags: Optional[int] = None,
        seq: Optional[int] = None,
    ) -> bool:
        """Update counters and TCP liveness; returns True if the packet
        newly established the connection (timer migration point)."""
        self.last_ts = now
        if from_orig:
            self.pkts_orig += 1
            self.bytes_orig += wire_bytes
            self.payload_bytes_orig += payload_bytes
        else:
            self.pkts_resp += 1
            self.bytes_resp += wire_bytes
            self.payload_bytes_resp += payload_bytes
        if tcp_flags is None:
            return False
        self._check_weird(from_orig, payload_bytes, tcp_flags)
        if seq is not None:
            self._track_sequence(from_orig, seq, payload_bytes, tcp_flags)
        return self._track_tcp(from_orig, tcp_flags, now)

    def weird(self, name: str) -> None:
        """Record one protocol anomaly on this connection."""
        self.weirds[name] = self.weirds.get(name, 0) + 1

    def _check_weird(self, from_orig: bool, payload_bytes: int,
                     flags: int) -> None:
        if flags & _SYN and flags & _FIN:
            self.weird("syn_and_fin")
        if flags & _SYN and payload_bytes > 0:
            self.weird("data_on_syn")
        if self.tcp_state is TcpConnState.SYN_SENT:
            if flags & _FIN and not (flags & _SYN):
                self.weird("fin_without_handshake")
            elif payload_bytes > 0 and from_orig and \
                    not (flags & _SYN) and self.pkts_orig <= 1:
                self.weird("data_before_established")
        if self.tcp_state is TcpConnState.CLOSED and payload_bytes > 0:
            self.weird("data_after_close")

    def _track_sequence(self, from_orig: bool, seq: int,
                        payload_bytes: int, flags: int) -> None:
        """Count late (out-of-order or retransmitted) data segments."""
        span = payload_bytes
        if flags & _SYN_OR_FIN:
            span += 1
        expected = self._next_seq_orig if from_orig else self._next_seq_resp
        if expected is not None and payload_bytes > 0:
            diff = (seq - expected) % (1 << 32)
            if diff >= (1 << 31):  # seq below the highest seen: late
                if from_orig:
                    self.ooo_orig += 1
                else:
                    self.ooo_resp += 1
                return  # do not move the high-water mark backwards
            if diff > 4_000_000:
                # A forward jump far beyond any plausible in-flight
                # window: sequence desync or injected segment.
                self.weird("large_seq_jump")
        end = (seq + span) % (1 << 32)
        if expected is None:
            new_expected = end
        else:
            ahead = (end - expected) % (1 << 32)
            new_expected = end if ahead < (1 << 31) else expected
        if from_orig:
            self._next_seq_orig = new_expected
        else:
            self._next_seq_resp = new_expected

    def _track_tcp(self, from_orig: bool, flags: int,
                   now: float) -> bool:
        newly_established = False
        if flags & _RST:
            self.tcp_state = TcpConnState.CLOSED
            self.history.append("R")
            return False
        if flags & _SYN:
            if flags & _ACK:
                self.history.append("SA")
                if self.tcp_state is TcpConnState.SYN_SENT:
                    self.tcp_state = TcpConnState.ESTABLISHED
                    self.established_ts = now
                    newly_established = True
            else:
                self.history.append("S")
                if self.syn_ts is None:
                    self.syn_ts = now
            return newly_established
        if flags & _FIN:
            self.history.append("F")
            if self.tcp_state is TcpConnState.CLOSING:
                self.tcp_state = TcpConnState.CLOSED
            elif self.tcp_state is not TcpConnState.CLOSED:
                self.tcp_state = TcpConnState.CLOSING
            return False
        # A plain data/ACK packet from the responder also proves
        # bidirectionality (handles taps that miss the SYN-ACK).
        if self.tcp_state is TcpConnState.SYN_SENT and not from_orig:
            self.tcp_state = TcpConnState.ESTABLISHED
            self.established_ts = now
            newly_established = True
        return newly_established

    def buffer_packet(self, mbuf: Mbuf) -> None:
        """Hold a packet until the filter fully matches (Figure 4a)."""
        self.buffered_mbufs.append(mbuf)
        self.buffered_bytes += len(mbuf)

    def drain_buffered(self) -> List[Mbuf]:
        mbufs = self.buffered_mbufs
        self.buffered_mbufs = []
        self.buffered_bytes = 0
        return mbufs

    @property
    def memory_bytes(self) -> int:
        """Estimated resident bytes for the Figure 8 memory model."""
        total = CONN_BASE_MEMORY_BYTES + self.buffered_bytes
        if self.reassembler is not None:
            total += self.reassembler.memory_bytes
        return total

    @property
    def terminated(self) -> bool:
        return self.tcp_state is TcpConnState.CLOSED

    def __repr__(self) -> str:
        return (
            f"Connection({self.five_tuple}, {self.state.value}, "
            f"{self.tcp_state.value}, pkts={self.total_packets})"
        )
