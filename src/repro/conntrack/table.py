"""Per-core connection hash table with timer-wheel expiration.

One :class:`ConnTable` exists per core; symmetric RSS guarantees both
directions of a flow land on the same core, so tables need no
cross-core synchronization (Section 5.2, citing Girondi et al.). The
table owns the two-tier :class:`~repro.conntrack.timerwheel.ConnectionTimers`
and exposes a small API the pipeline drives:

* :meth:`get_or_create` on packet arrival,
* :meth:`touch` to refresh timeouts and migrate establishment tiers,
* :meth:`expire` to harvest timed-out connections,
* :meth:`remove` for filter-driven early deletion (Figure 4's dashed
  transitions) and natural termination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.conntrack.conn import CONN_BASE_MEMORY_BYTES, Connection, \
    ConnState
from repro.conntrack.five_tuple import FiveTuple
from repro.conntrack.timerwheel import ConnectionTimers
from repro.errors import ResourceExhaustedError


@dataclass(frozen=True)
class TimeoutConfig:
    """Timeout scheme; ``None`` disables a tier (Figure 8 ablations)."""

    establish_timeout: Optional[float] = 5.0
    inactivity_timeout: Optional[float] = 300.0

    @classmethod
    def retina_default(cls) -> "TimeoutConfig":
        return cls(5.0, 300.0)

    @classmethod
    def inactivity_only(cls) -> "TimeoutConfig":
        """The Figure 8 middle curve: a flat 5-minute timeout."""
        return cls(None, 300.0)

    @classmethod
    def no_timeouts(cls) -> "TimeoutConfig":
        """The Figure 8 out-of-memory curve."""
        return cls(None, None)


class ConnTable:
    """Hash table of live connections for one core."""

    def __init__(self, timeouts: TimeoutConfig = TimeoutConfig()) -> None:
        self.timeouts = timeouts
        self._conns: Dict[Tuple, Connection] = {}
        self._timers = ConnectionTimers(
            timeouts.establish_timeout, timeouts.inactivity_timeout
        )
        # Lifetime statistics.
        self.created = 0
        self.removed = 0
        self.expired_establish = 0
        self.expired_inactive = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._conns)

    def __iter__(self) -> Iterator[Connection]:
        return iter(self._conns.values())

    def lookup(self, five_tuple: FiveTuple) -> Optional[Connection]:
        return self._conns.get(five_tuple.canonical())

    def lookup_key(self, key: Tuple) -> Optional[Connection]:
        """Lookup by an already-canonical key (columnar hot path: the
        key is assembled straight from decoded columns, no FiveTuple)."""
        return self._conns.get(key)

    def create_with_key(self, key: Tuple, five_tuple: FiveTuple,
                        now: float) -> Connection:
        """Insert a new connection whose canonical key is already known.

        Mirrors the create arm of :meth:`get_or_create`; the caller has
        already missed on :meth:`lookup_key` and pre-seeded
        ``five_tuple``'s canonical cache with ``key``.
        """
        conn = Connection(five_tuple, now)
        self._conns[key] = conn
        self._timers.on_new_connection(key, now)
        self.created += 1
        return conn

    def get_or_create(
        self, five_tuple: FiveTuple, now: float
    ) -> Tuple[Connection, bool]:
        """Return (connection, created_flag) for the packet's flow."""
        key = five_tuple.canonical()
        conn = self._conns.get(key)
        if conn is not None:
            return conn, False
        conn = Connection(five_tuple, now)
        self._conns[key] = conn
        self._timers.on_new_connection(key, now)
        self.created += 1
        return conn, True

    def touch(self, conn: Connection, now: float,
              newly_established: bool) -> None:
        """Refresh the connection's timeout after a packet."""
        if newly_established:
            self._timers.on_established(conn.key, now)
        else:
            self._timers.on_activity(conn.key, now, conn.established)

    def schedule_removal(self, conn: Connection, now: float,
                         linger: float = 5.0) -> bool:
        """TIME_WAIT-like linger for a closed, already-delivered
        connection: keep the (lightweight) entry briefly so trailing
        segments of the teardown don't re-create the flow."""
        return self._timers.schedule_removal(conn.key, now, linger)

    def remove(self, conn: Connection) -> None:
        """Delete a connection (filter miss, termination, or callback
        completion — the Figure 4 DELETE transitions)."""
        if self._conns.pop(conn.key, None) is not None:
            self._timers.on_remove(conn.key)
            self.removed += 1
            conn.state = ConnState.DELETE

    def expire(self, now: float) -> List[Connection]:
        """Harvest connections whose timers fired.

        Expired connections are removed from the table and returned so
        the pipeline can deliver them (an unanswered SYN is still a
        connection record the user may have subscribed to).
        """
        expired: List[Connection] = []
        for key in self._timers.advance(now):
            conn = self._conns.pop(key, None)
            if conn is None:
                continue
            if conn.established:
                self.expired_inactive += 1
            else:
                self.expired_establish += 1
            conn.state = ConnState.DELETE
            self.removed += 1
            expired.append(conn)
        return expired

    def drain(self) -> List[Connection]:
        """Remove and return every live connection (end of run)."""
        conns = list(self._conns.values())
        for conn in conns:
            self._timers.on_remove(conn.key)
            conn.state = ConnState.DELETE
        self._conns.clear()
        self.removed += len(conns)
        return conns

    def evict_idle(self, target_bytes: int) -> List[Connection]:
        """Force-expire connections, least-recently-active first, until
        resident memory is back under ``target_bytes``.

        This is the ``memory_policy="evict"`` degradation action: the
        victims are returned (like :meth:`expire`) so the pipeline can
        still deliver whatever connection-level data the subscription
        asked for. Ordering is by ``(last activity, canonical key)`` —
        fully deterministic, so the same run evicts the same flows on
        every backend.

        Raises :class:`~repro.errors.ResourceExhaustedError` — without
        evicting anything — when even an empty table would sit above
        ``target_bytes`` (the pressure is not attributable to idle
        connection state, so eviction cannot relieve it).
        """
        if target_bytes < 0:
            raise ResourceExhaustedError(
                f"memory target {target_bytes} B unreachable by "
                f"eviction: the deficit is not attributable to idle "
                f"connection state")
        remaining = self.memory_bytes
        if remaining <= target_bytes:
            return []
        victims: List[Connection] = []
        for conn in sorted(self._conns.values(),
                           key=lambda c: (c.last_ts, c.key)):
            if remaining <= target_bytes:
                break
            remaining -= conn.memory_bytes
            del self._conns[conn.key]
            self._timers.on_remove(conn.key)
            conn.state = ConnState.DELETE
            self.removed += 1
            self.evicted += 1
            victims.append(conn)
        return victims

    def heavy_connections(self, min_overhead_bytes: int
                          ) -> List[Connection]:
        """Connections still carrying heavy state (probing or parsing)
        whose per-connection overhead — reassembly buffers, held
        references, buffered packets — exceeds ``min_overhead_bytes``.

        This feeds the overload ladder's rung-3 circuit breaker
        (:mod:`repro.overload`): the returned victims get their lazy
        reassembly / session parsing disabled. Ordering is heaviest
        first with the canonical key as tiebreak — fully deterministic,
        so every backend downgrades the same flows.
        """
        heavy: List[Connection] = []
        for conn in self._conns.values():
            state = conn.state
            if state is not ConnState.PROBE and \
                    state is not ConnState.PARSE:
                continue
            if conn.memory_bytes - CONN_BASE_MEMORY_BYTES \
                    > min_overhead_bytes:
                heavy.append(conn)
        heavy.sort(key=lambda c: (-c.memory_bytes, c.key))
        return heavy

    @property
    def memory_bytes(self) -> int:
        """Estimated bytes of connection state currently resident."""
        return sum(conn.memory_bytes for conn in self._conns.values())
