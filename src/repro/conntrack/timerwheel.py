"""Hashed and hierarchical timing wheels (Varghese & Lauck) for
connection expiration.

Retina prevents memory exhaustion from inactive connections with two
timer tiers derived from empirical campus measurements: a short
*establishment* timeout (default 5 s) expiring single unanswered SYNs,
and a longer *inactivity* timeout (default 5 min) for established
connections. Timer-wheel deletion scales independently of table size
and keeps hash-table insertion O(1) [Girondi et al.].

The wheel uses lazy cancellation: rescheduling a key simply records the
new deadline; stale wheel entries are dropped when their slot fires by
comparing against the authoritative deadline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple


class TimerWheel:
    """A single hashed timing wheel with lazy cancellation.

    Keys are arbitrary hashables (canonical five-tuples). Deadlines
    beyond the wheel horizon are carried in the slot and re-inserted on
    fire — the standard "rounds" technique, giving hierarchical range
    with a single wheel.
    """

    def __init__(self, tick: float, num_slots: int) -> None:
        if tick <= 0 or num_slots < 2:
            raise ValueError("tick must be > 0 and num_slots >= 2")
        self.tick = tick
        self.num_slots = num_slots
        self._slots: List[List[Tuple[object, float]]] = [
            [] for _ in range(num_slots)
        ]
        #: Authoritative deadline per key; the wheel entries are hints.
        self._deadlines: Dict[object, float] = {}
        #: Live wheel entries per key, to keep rescheduling O(1) without
        #: accumulating stale entries.
        self._entry_count: Dict[object, int] = {}
        self._current_tick = 0

    def __len__(self) -> int:
        return len(self._deadlines)

    def __contains__(self, key: object) -> bool:
        return key in self._deadlines

    def deadline(self, key: object) -> Optional[float]:
        return self._deadlines.get(key)

    def schedule(self, key: object, fire_at: float) -> None:
        """Insert or reschedule ``key`` to fire at ``fire_at``.

        Rescheduling *later* is O(1): only the authoritative deadline
        moves; the existing wheel entry is re-aimed when its slot fires.
        Rescheduling *earlier* inserts a fresh entry at the new slot so
        the key cannot fire late (the stale entry is dropped inertly
        when its slot comes around).
        """
        previous = self._deadlines.get(key)
        self._deadlines[key] = fire_at
        # A fresh entry is needed when the key has no wheel entry at
        # all, when the only entries left are inert post-cancel hints
        # (previous is None: they may be aimed at a later slot than the
        # new deadline), or when the deadline moved earlier than the
        # live entry can fire.
        if self._entry_count.get(key, 0) == 0 or previous is None or \
                fire_at < previous:
            self._insert_entry(key, fire_at)

    def cancel(self, key: object) -> None:
        """Remove ``key``; its wheel entries become inert."""
        self._deadlines.pop(key, None)

    def _insert_entry(self, key: object, fire_at: float) -> None:
        target_tick = max(int(fire_at / self.tick), self._current_tick)
        horizon = self._current_tick + self.num_slots - 1
        slot_tick = min(target_tick, horizon)
        self._slots[slot_tick % self.num_slots].append((key, fire_at))
        self._entry_count[key] = self._entry_count.get(key, 0) + 1

    def advance(self, now: float) -> List[object]:
        """Advance wheel time to ``now``; return keys whose deadline
        passed. Fired keys are removed from the wheel."""
        expired: List[object] = []
        target_tick = int(now / self.tick)
        while self._current_tick <= target_tick:
            slot = self._slots[self._current_tick % self.num_slots]
            if slot:
                remaining: List[Tuple[object, float]] = []
                for key, hinted_at in slot:
                    deadline = self._deadlines.get(key)
                    if deadline is None:
                        self._drop_entry(key)  # cancelled
                        continue
                    if deadline <= now:
                        del self._deadlines[key]
                        self._drop_entry(key)
                        expired.append(key)
                    elif int(deadline / self.tick) <= self._current_tick:
                        # Deadline in this slot's tick but not yet due
                        # (fractional): keep for the next advance call.
                        remaining.append((key, deadline))
                    else:
                        # Rescheduled or beyond-horizon: re-aim at its
                        # (possibly capped) future slot.
                        self._drop_entry(key)
                        self._insert_entry(key, deadline)
                slot.clear()
                slot.extend(remaining)
            if self._current_tick == target_tick:
                break
            self._current_tick += 1
        return expired

    def _drop_entry(self, key: object) -> None:
        count = self._entry_count.get(key, 0)
        if count <= 1:
            self._entry_count.pop(key, None)
        else:
            self._entry_count[key] = count - 1


class ConnectionTimers:
    """Retina's two-tier timeout scheme over two timer wheels.

    Non-established connections live on a fine-grained wheel with the
    establishment timeout; once established they migrate to a coarse
    wheel with the inactivity timeout. ``None`` for either timeout
    disables that tier (used by the Figure 8 ablations).
    """

    def __init__(
        self,
        establish_timeout: Optional[float] = 5.0,
        inactivity_timeout: Optional[float] = 300.0,
    ) -> None:
        self.establish_timeout = establish_timeout
        self.inactivity_timeout = inactivity_timeout
        self._establish_wheel = (
            TimerWheel(tick=max(establish_timeout / 16, 1e-3), num_slots=64)
            if establish_timeout is not None else None
        )
        self._inactivity_wheel = (
            TimerWheel(tick=max(inactivity_timeout / 16, 1e-3), num_slots=64)
            if inactivity_timeout is not None else None
        )

    def on_new_connection(self, key: object, now: float) -> None:
        if self._establish_wheel is not None:
            self._establish_wheel.schedule(key, now + self.establish_timeout)
        elif self._inactivity_wheel is not None:
            self._inactivity_wheel.schedule(key,
                                            now + self.inactivity_timeout)

    def on_established(self, key: object, now: float) -> None:
        """Migrate from the establishment tier to the inactivity tier."""
        if self._establish_wheel is not None:
            self._establish_wheel.cancel(key)
        if self._inactivity_wheel is not None:
            self._inactivity_wheel.schedule(key,
                                            now + self.inactivity_timeout)

    def on_activity(self, key: object, now: float, established: bool) -> None:
        """Refresh the connection's deadline after a packet."""
        if established or self._establish_wheel is None:
            if self._inactivity_wheel is not None:
                self._inactivity_wheel.schedule(
                    key, now + self.inactivity_timeout)
        else:
            self._establish_wheel.schedule(key,
                                           now + self.establish_timeout)

    def schedule_removal(self, key: object, now: float,
                         linger: float = 5.0) -> bool:
        """Schedule a closed connection's tombstone for removal after a
        short linger (TIME_WAIT-like: absorbs the trailing ACK of a FIN
        handshake without re-creating the connection). Returns False if
        no timer tier is enabled (caller should remove immediately)."""
        if self._establish_wheel is not None:
            if self._inactivity_wheel is not None:
                self._inactivity_wheel.cancel(key)
            self._establish_wheel.schedule(key, now + linger)
            return True
        if self._inactivity_wheel is not None:
            self._inactivity_wheel.schedule(key, now + linger)
            return True
        return False

    def on_remove(self, key: object) -> None:
        if self._establish_wheel is not None:
            self._establish_wheel.cancel(key)
        if self._inactivity_wheel is not None:
            self._inactivity_wheel.cancel(key)

    def advance(self, now: float) -> List[object]:
        """Collect every connection whose deadline has passed."""
        expired: List[object] = []
        if self._establish_wheel is not None:
            expired.extend(self._establish_wheel.advance(now))
        if self._inactivity_wheel is not None:
            expired.extend(self._inactivity_wheel.advance(now))
        return expired
