"""Stateful connection processing (Section 5.2 substrate).

Per-core connection tables keyed by a direction-canonical five-tuple,
hierarchical timer wheels for the two-tier timeout scheme (a short
connection-establishment timeout to expire single unanswered SYNs and a
longer inactivity timeout for established connections), and the
per-connection state machine of Figure 4.
"""

from repro.conntrack.five_tuple import FiveTuple
from repro.conntrack.timerwheel import ConnectionTimers, TimerWheel
from repro.conntrack.conn import ConnState, Connection, TcpConnState
from repro.conntrack.table import ConnTable, TimeoutConfig

__all__ = [
    "FiveTuple",
    "TimerWheel",
    "ConnectionTimers",
    "Connection",
    "ConnState",
    "TcpConnState",
    "ConnTable",
    "TimeoutConfig",
]
