"""Direction-canonical connection keys."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.packet.stack import PacketStack


@dataclass(frozen=True)
class FiveTuple:
    """(src, dst, sport, dport, proto) identifying one connection.

    ``orig`` fields record the *originator* — the endpoint that sent the
    first packet the tracker saw. :meth:`canonical` produces a
    direction-insensitive key so both directions of a flow map to the
    same table entry (which symmetric RSS guarantees land on the same
    core).
    """

    src_ip: bytes
    dst_ip: bytes
    src_port: int
    dst_port: int
    protocol: int

    @classmethod
    def from_stack(cls, stack: PacketStack) -> Optional["FiveTuple"]:
        """Extract the five-tuple, or None for non-IP/transport frames."""
        if stack.ip is None or stack.transport is None:
            return None
        return cls(
            stack.ip.src_addr().packed,
            stack.ip.dst_addr().packed,
            stack.transport.src_port(),
            stack.transport.dst_port(),
            stack.ip.next_protocol(),
        )

    def canonical(self) -> Tuple:
        """Direction-insensitive hashable key."""
        fwd = (self.src_ip, self.src_port)
        rev = (self.dst_ip, self.dst_port)
        if fwd <= rev:
            return (self.src_ip, self.src_port, self.dst_ip,
                    self.dst_port, self.protocol)
        return (self.dst_ip, self.dst_port, self.src_ip,
                self.src_port, self.protocol)

    def reversed(self) -> "FiveTuple":
        return FiveTuple(self.dst_ip, self.src_ip, self.dst_port,
                         self.src_port, self.protocol)

    def same_direction(self, other: "FiveTuple") -> bool:
        """True if ``other`` flows in this tuple's direction."""
        return (self.src_ip, self.src_port) == (other.src_ip, other.src_port)

    def __str__(self) -> str:
        import ipaddress

        src = ipaddress.ip_address(self.src_ip)
        dst = ipaddress.ip_address(self.dst_ip)
        proto = {6: "tcp", 17: "udp"}.get(self.protocol, str(self.protocol))
        return f"{src}:{self.src_port} -> {dst}:{self.dst_port}/{proto}"
