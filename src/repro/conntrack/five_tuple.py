"""Direction-canonical connection keys."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.packet.stack import PacketStack

#: Cache sentinel for "computed: this frame has no five-tuple".
_NO_TUPLE = "no-tuple"


@dataclass(frozen=True)
class FiveTuple:
    """(src, dst, sport, dport, proto) identifying one connection.

    ``orig`` fields record the *originator* — the endpoint that sent the
    first packet the tracker saw. :meth:`canonical` produces a
    direction-insensitive key so both directions of a flow map to the
    same table entry (which symmetric RSS guarantees land on the same
    core).
    """

    src_ip: bytes
    dst_ip: bytes
    src_port: int
    dst_port: int
    protocol: int

    @classmethod
    def from_stack(cls, stack: PacketStack) -> Optional["FiveTuple"]:
        """Extract the five-tuple, or None for non-IP/transport frames.

        Memoized on the stack: conntrack keying, the overload admission
        gate, and subscription callbacks all see the same object, built
        from raw address bytes (no ``ipaddress`` round-trip).
        """
        cached = stack._five_tuple
        if cached is not None:
            return None if cached is _NO_TUPLE else cached
        ip = stack.ip
        transport = stack.tcp if stack.tcp is not None else stack.udp
        if ip is None or transport is None:
            stack._five_tuple = _NO_TUPLE
            return None
        tup = cls(
            ip.src_addr_bytes(),
            ip.dst_addr_bytes(),
            transport.src_port(),
            transport.dst_port(),
            ip.next_protocol(),
        )
        stack._five_tuple = tup
        return tup

    def canonical(self) -> Tuple:
        """Direction-insensitive hashable key (computed once, cached)."""
        try:
            return self._canonical  # type: ignore[attr-defined]
        except AttributeError:
            pass
        if (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port):
            canon = (self.src_ip, self.src_port, self.dst_ip,
                     self.dst_port, self.protocol)
        else:
            canon = (self.dst_ip, self.dst_port, self.src_ip,
                     self.src_port, self.protocol)
        object.__setattr__(self, "_canonical", canon)
        return canon

    def reversed(self) -> "FiveTuple":
        return FiveTuple(self.dst_ip, self.src_ip, self.dst_port,
                         self.src_port, self.protocol)

    def same_direction(self, other: "FiveTuple") -> bool:
        """True if ``other`` flows in this tuple's direction."""
        return (self.src_ip, self.src_port) == (other.src_ip, other.src_port)

    def __str__(self) -> str:
        import ipaddress

        src = ipaddress.ip_address(self.src_ip)
        dst = ipaddress.ip_address(self.dst_ip)
        proto = {6: "tcp", 17: "udp"}.get(self.protocol, str(self.protocol))
        return f"{src}:{self.src_port} -> {dst}:{self.dst_port}/{proto}"
