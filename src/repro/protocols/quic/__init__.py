"""QUIC protocol module (header-level parsing).

Retina gained a QUIC module after the paper's publication; this
reproduction includes the equivalent: RFC 8999/9000 invariant parsing
of long- and short-header packets (version, connection IDs, token
presence) from UDP flows. Initial-packet *payload* decryption (which
would expose the TLS ClientHello) requires the QUIC Initial secrets
(HKDF + AES-128-GCM) and is out of scope — exactly the fields the
invariant header exposes are filterable.
"""

from repro.protocols.quic.parser import QuicParser, QuicHandshakeData
from repro.protocols.quic.build import (
    build_quic_initial,
    build_quic_short,
    build_quic_version_negotiation,
    decode_varint,
    encode_varint,
)

__all__ = [
    "QuicParser",
    "QuicHandshakeData",
    "build_quic_initial",
    "build_quic_short",
    "build_quic_version_negotiation",
    "encode_varint",
    "decode_varint",
]
