"""QUIC invariant-header parser (ConnParsable implementation)."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.protocols.base import ConnParser, ParseResult, ProbeResult
from repro.protocols.quic.build import (
    QUIC_DRAFT29,
    QUIC_V1,
    QUIC_V2,
    decode_varint,
)
from repro.stream.pdu import StreamSegment

_VERSION_NAMES = {
    0: "VersionNegotiation",
    QUIC_V1: "QUICv1",
    QUIC_V2: "QUICv2",
    QUIC_DRAFT29: "draft-29",
}
_KNOWN_VERSIONS = frozenset(_VERSION_NAMES) | frozenset(
    0xFF000000 | d for d in range(17, 35)  # drafts 17-34
)

# Compiled once at import; long-header parse runs per datagram.
_U32 = struct.Struct("!I")


@dataclass
class QuicHandshakeData:
    """Invariant-header fields of a QUIC connection's first packets."""

    version_id: Optional[int] = None
    client_dcid: Optional[bytes] = None
    client_scid: Optional[bytes] = None
    server_scid: Optional[bytes] = None
    client_token_len: int = 0
    version_negotiated: bool = False
    long_header_packets: int = 0

    # -- filter accessors ---------------------------------------------------
    def version(self) -> Optional[str]:
        if self.version_id is None:
            return None
        return _VERSION_NAMES.get(self.version_id,
                                  f"0x{self.version_id:08x}")

    def dcid(self) -> Optional[str]:
        if self.client_dcid is None:
            return None
        return self.client_dcid.hex()

    @property
    def complete(self) -> bool:
        return (self.client_dcid is not None
                and self.server_scid is not None)


@dataclass
class _LongHeader:
    version: int
    dcid: bytes
    scid: bytes
    token: bytes = b""


def parse_long_header(datagram: bytes) -> Optional[_LongHeader]:
    """Parse a long-header packet's invariant fields; None if not one
    (or malformed)."""
    if len(datagram) < 7 or not datagram[0] & 0x80:
        return None
    try:
        version = _U32.unpack_from(datagram, 1)[0]
        offset = 5
        dcid_len = datagram[offset]
        offset += 1
        if dcid_len > 20 or offset + dcid_len > len(datagram):
            return None
        dcid = datagram[offset:offset + dcid_len]
        offset += dcid_len
        scid_len = datagram[offset]
        offset += 1
        if scid_len > 20 or offset + scid_len > len(datagram):
            return None
        scid = datagram[offset:offset + scid_len]
        offset += scid_len
        token = b""
        if version != 0 and (datagram[0] >> 4) & 0x03 == 0:  # Initial
            token_len, offset = decode_varint(datagram, offset)
            token = datagram[offset:offset + token_len]
        return _LongHeader(version, dcid, scid, token)
    except (IndexError, ValueError, struct.error):
        return None


class QuicParser(ConnParser):
    """Stateful QUIC parser over UDP datagrams."""

    protocol = "quic"

    def __init__(self) -> None:
        super().__init__()
        self._data = QuicHandshakeData()
        self._done = False

    def probe(self, segment: StreamSegment) -> ProbeResult:
        datagram = segment.payload
        if not datagram:
            return ProbeResult.UNSURE
        if not datagram[0] & 0x80:
            # Short header: only recognizable with connection context.
            return ProbeResult.NO_MATCH
        header = parse_long_header(datagram)
        if header is None:
            return ProbeResult.NO_MATCH
        if header.version == 0 or header.version in _KNOWN_VERSIONS:
            return ProbeResult.MATCH
        return ProbeResult.NO_MATCH

    def parse(self, segment: StreamSegment) -> ParseResult:
        if self._done:
            return ParseResult.DONE
        header = parse_long_header(segment.payload)
        if header is None:
            # Short-header or padding datagrams carry nothing we need.
            return ParseResult.CONTINUE
        data = self._data
        data.long_header_packets += 1
        if header.version == 0:
            data.version_negotiated = True
            if not segment.from_orig:
                data.server_scid = header.scid
        elif segment.from_orig:
            data.version_id = header.version
            if data.client_dcid is None:
                data.client_dcid = header.dcid
                data.client_scid = header.scid
                data.client_token_len = len(header.token)
        else:
            data.version_id = data.version_id or header.version
            data.server_scid = header.scid
        if data.complete:
            self._done = True
            self._finish_session(data, segment.timestamp)
            return ParseResult.DONE
        return ParseResult.CONTINUE

    def session_match_state(self) -> str:
        """Everything after the handshake is encrypted 1-RTT traffic."""
        return "track"

    def session_nomatch_state(self) -> str:
        return "delete"

    @property
    def handshake_data(self) -> QuicHandshakeData:
        return self._data
