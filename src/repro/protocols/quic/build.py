"""QUIC wire-format synthesis (RFC 9000 framing, opaque payloads)."""

from __future__ import annotations

import struct
from typing import Optional, Tuple

QUIC_V1 = 0x00000001
QUIC_V2 = 0x6B3343CF
QUIC_DRAFT29 = 0xFF00001D

#: Long-header packet types for v1 (bits 4-5 of the first byte).
TYPE_INITIAL = 0
TYPE_0RTT = 1
TYPE_HANDSHAKE = 2
TYPE_RETRY = 3


def encode_varint(value: int) -> bytes:
    """RFC 9000 §16 variable-length integer encoding."""
    if value < 0:
        raise ValueError("varints are unsigned")
    if value < 1 << 6:
        return bytes([value])
    if value < 1 << 14:
        return struct.pack("!H", value | 0x4000)
    if value < 1 << 30:
        return struct.pack("!I", value | 0x80000000)
    if value < 1 << 62:
        return struct.pack("!Q", value | 0xC000000000000000)
    raise ValueError("varint out of range")


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint; returns (value, end offset)."""
    if offset >= len(data):
        raise ValueError("truncated varint")
    prefix = data[offset] >> 6
    length = 1 << prefix
    if offset + length > len(data):
        raise ValueError("truncated varint body")
    value = data[offset] & 0x3F
    for i in range(1, length):
        value = (value << 8) | data[offset + i]
    return value, offset + length


def build_quic_initial(
    dcid: bytes,
    scid: bytes,
    version: int = QUIC_V1,
    token: bytes = b"",
    payload_len: int = 1200,
) -> bytes:
    """An Initial long-header packet with an opaque (padded) payload.

    Real Initials are >= 1200 bytes (anti-amplification); the payload
    here is encryption-shaped padding.
    """
    if len(dcid) > 20 or len(scid) > 20:
        raise ValueError("connection IDs are at most 20 bytes")
    first = 0xC0 | (TYPE_INITIAL << 4) | 0x03  # 4-byte packet number
    packet_number = b"\x00\x00\x00\x01"
    body_len = len(packet_number) + payload_len
    header = (
        bytes([first])
        + struct.pack("!I", version)
        + bytes([len(dcid)]) + dcid
        + bytes([len(scid)]) + scid
        + encode_varint(len(token)) + token
        + encode_varint(body_len)
    )
    return header + packet_number + bytes(payload_len)


def build_quic_short(dcid: bytes, payload_len: int = 1000) -> bytes:
    """A 1-RTT short-header packet (opaque payload)."""
    first = 0x40 | 0x03
    return bytes([first]) + dcid + b"\x00\x00\x00\x02" + bytes(payload_len)


def build_quic_version_negotiation(dcid: bytes, scid: bytes,
                                   versions=(QUIC_V1, QUIC_V2)) -> bytes:
    """A Version Negotiation packet (version field zero)."""
    header = (
        b"\xc0" + struct.pack("!I", 0)
        + bytes([len(dcid)]) + dcid
        + bytes([len(scid)]) + scid
    )
    return header + b"".join(struct.pack("!I", v) for v in versions)
