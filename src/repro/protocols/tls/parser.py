"""TLS record and handshake parser (ConnParsable implementation).

Parses the TLS record layer from both directions of a reassembled
stream, accumulates handshake messages (which may span records), and
extracts the handshake transcript fields Retina's TLS subscription
exposes: client/server randoms, SNI, offered and chosen cipher suites,
and the negotiated version (including TLS 1.3's supported_versions
indirection).

The parser reports ``DONE`` once both hellos have been seen — the point
at which Figure 4b lets Retina stop processing the connection
mid-stream, since everything after is opaque ciphertext.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.protocols.base import ConnParser, ParseResult, ProbeResult
from repro.protocols.tls.build import (
    EXT_ALPN,
    EXT_EC_POINT_FORMATS,
    EXT_SERVER_NAME,
    EXT_SUPPORTED_GROUPS,
    EXT_SUPPORTED_VERSIONS,
    HS_CERTIFICATE,
    HS_CLIENT_HELLO,
    HS_SERVER_HELLO,
    HS_SERVER_HELLO_DONE,
    RECORD_ALERT,
    RECORD_APPLICATION_DATA,
    RECORD_CHANGE_CIPHER_SPEC,
    RECORD_HANDSHAKE,
)
from repro.protocols.tls.data import TlsHandshakeData
from repro.stream.pdu import StreamSegment

_RECORD_HEADER_LEN = 5
_MAX_RECORD_LEN = (1 << 14) + 2048  # RFC ceiling with slack
_VALID_RECORD_TYPES = frozenset({
    RECORD_CHANGE_CIPHER_SPEC, RECORD_ALERT, RECORD_HANDSHAKE,
    RECORD_APPLICATION_DATA,
})
_VALID_VERSIONS = frozenset({0x0300, 0x0301, 0x0302, 0x0303, 0x0304})
# Wire formats compiled once at import; probe/parse run per record.
_U16 = struct.Struct("!H")
_U16_PAIR = struct.Struct("!HH")
_RECORD_HEADER = struct.Struct("!BHH")


class _DirectionBuffer:
    """Record-layer accumulation for one stream direction."""

    __slots__ = ("raw", "handshake")

    def __init__(self) -> None:
        self.raw = bytearray()
        self.handshake = bytearray()


class TlsParser(ConnParser):
    """Stateful TLS parser for one connection."""

    protocol = "tls"

    def __init__(self) -> None:
        super().__init__()
        self._client = _DirectionBuffer()
        self._server = _DirectionBuffer()
        self._data = TlsHandshakeData()
        self._done = False
        self._error = False

    # -- probing --------------------------------------------------------------
    def probe(self, segment: StreamSegment) -> ProbeResult:
        """A client-origin stream is TLS if it starts with a handshake
        record of a plausible version and length."""
        payload = segment.payload
        if len(payload) < _RECORD_HEADER_LEN:
            return ProbeResult.UNSURE
        record_type, version, length = _RECORD_HEADER.unpack_from(payload)
        if (
            record_type == RECORD_HANDSHAKE
            and version in _VALID_VERSIONS
            and 0 < length <= _MAX_RECORD_LEN
            and len(payload) >= _RECORD_HEADER_LEN + 1
            and payload[_RECORD_HEADER_LEN] == HS_CLIENT_HELLO
        ):
            return ProbeResult.MATCH
        if record_type in _VALID_RECORD_TYPES and version in _VALID_VERSIONS:
            # A valid record that is not a ClientHello start: plausibly
            # TLS mid-connection; only direction context can tell.
            return ProbeResult.MATCH if not segment.from_orig \
                else ProbeResult.UNSURE
        return ProbeResult.NO_MATCH

    # -- parsing ---------------------------------------------------------------
    def parse(self, segment: StreamSegment) -> ParseResult:
        if self._error:
            return ParseResult.ERROR
        if self._done:
            return ParseResult.DONE
        buffer = self._client if segment.from_orig else self._server
        buffer.raw.extend(segment.payload)
        result = self._consume_records(buffer, segment)
        if result is ParseResult.ERROR:
            self._error = True
        return result

    def _consume_records(
        self, buffer: _DirectionBuffer, segment: StreamSegment
    ) -> ParseResult:
        while len(buffer.raw) >= _RECORD_HEADER_LEN:
            record_type, version, length = _RECORD_HEADER.unpack_from(
                buffer.raw)
            if record_type not in _VALID_RECORD_TYPES or \
                    version not in _VALID_VERSIONS:
                return ParseResult.ERROR
            if len(buffer.raw) < _RECORD_HEADER_LEN + length:
                break  # incomplete record
            payload = bytes(
                buffer.raw[_RECORD_HEADER_LEN:_RECORD_HEADER_LEN + length])
            del buffer.raw[:_RECORD_HEADER_LEN + length]
            if record_type == RECORD_HANDSHAKE:
                buffer.handshake.extend(payload)
                result = self._consume_handshake(buffer, segment)
                if result is ParseResult.ERROR:
                    return result
            elif self._data.complete and not self._done:
                # A CCS or application-data record after both hellos:
                # the plaintext part of the handshake is over even if
                # no ServerHelloDone was seen (e.g. abbreviated
                # handshakes). Finish the session now.
                self._finish(segment)
        return ParseResult.DONE if self._done else ParseResult.CONTINUE

    def _consume_handshake(
        self, buffer: _DirectionBuffer, segment: StreamSegment
    ) -> ParseResult:
        """Drain complete handshake messages from the direction buffer.

        The session finishes once both hellos are seen, but messages
        already buffered from the same flight (Certificate,
        ServerHelloDone) are drained first — they cost no extra packets
        and carry the certificate-chain shape.
        """
        hs = buffer.handshake
        while len(hs) >= 4:
            msg_type = hs[0]
            msg_len = int.from_bytes(hs[1:4], "big")
            if len(hs) < 4 + msg_len:
                break  # message spans records
            body = bytes(hs[4:4 + msg_len])
            del hs[:4 + msg_len]
            self._data.transcript.append((msg_type, msg_len))
            if msg_type == HS_CLIENT_HELLO:
                if not self._parse_client_hello(body):
                    return ParseResult.ERROR
                self._data.client_hello_ts = segment.timestamp
            elif msg_type == HS_SERVER_HELLO:
                if not self._parse_server_hello(body):
                    return ParseResult.ERROR
                self._data.server_hello_ts = segment.timestamp
            elif msg_type == HS_CERTIFICATE:
                self._parse_certificate(body)
        if self._plaintext_handshake_over() and not self._done:
            self._finish(segment)
            return ParseResult.DONE
        return ParseResult.CONTINUE

    def _plaintext_handshake_over(self) -> bool:
        """True once nothing parseable can follow.

        TLS 1.3 encrypts everything after the ServerHello, so both
        hellos end the plaintext handshake. TLS 1.2's server flight
        continues in the clear (Certificate, ServerHelloDone), so wait
        for the ServerHelloDone — a CCS/application-data record is the
        fallback cue (handled in the record loop).
        """
        data = self._data
        if not data.complete:
            return False
        if data.negotiated_version_id == 0x0304:
            return True
        return any(msg_type == HS_SERVER_HELLO_DONE
                   for msg_type, _ in data.transcript)

    def _finish(self, segment: StreamSegment) -> None:
        self._done = True
        self._finish_session(self._data, segment.timestamp)

    def _parse_certificate(self, body: bytes) -> None:
        """Record the DER lengths of the server's certificate chain."""
        try:
            total = int.from_bytes(body[0:3], "big")
            offset = 3
            end = min(3 + total, len(body))
            while offset + 3 <= end:
                entry_len = int.from_bytes(body[offset:offset + 3], "big")
                offset += 3 + entry_len
                if offset > len(body):
                    break
                self._data.certificate_lengths.append(entry_len)
        except (IndexError, ValueError):
            pass

    # -- hello bodies --------------------------------------------------------
    def _parse_client_hello(self, body: bytes) -> bool:
        try:
            offset = 0
            self._data.client_version_id = _U16.unpack_from(
                body, offset)[0]
            offset += 2
            self._data.client_random = body[offset:offset + 32]
            offset += 32
            sid_len = body[offset]
            offset += 1
            self._data.session_id = body[offset:offset + sid_len]
            offset += sid_len
            ciphers_len = _U16.unpack_from(body, offset)[0]
            offset += 2
            self._data.offered_ciphers = [
                _U16.unpack_from(body, offset + i)[0]
                for i in range(0, ciphers_len, 2)
            ]
            offset += ciphers_len
            compression_len = body[offset]
            offset += 1 + compression_len
            if offset < len(body):
                self._parse_extensions(body, offset, client=True)
            return len(self._data.client_random) == 32
        except (IndexError, struct.error):
            return False

    def _parse_server_hello(self, body: bytes) -> bool:
        try:
            offset = 0
            self._data.server_version_id = _U16.unpack_from(
                body, offset)[0]
            offset += 2
            self._data.server_random = body[offset:offset + 32]
            offset += 32
            sid_len = body[offset]
            offset += 1 + sid_len
            self._data.chosen_cipher = _U16.unpack_from(
                body, offset)[0]
            offset += 2
            offset += 1  # compression method
            if self._data.negotiated_version_id is None:
                self._data.negotiated_version_id = \
                    self._data.server_version_id
            if offset < len(body):
                self._parse_extensions(body, offset, client=False)
            return len(self._data.server_random) == 32
        except (IndexError, struct.error):
            return False

    def _parse_extensions(self, body: bytes, offset: int,
                          client: bool) -> None:
        ext_total = _U16.unpack_from(body, offset)[0]
        offset += 2
        end = min(offset + ext_total, len(body))
        while offset + 4 <= end:
            ext_type, ext_len = _U16_PAIR.unpack_from(body, offset)
            offset += 4
            ext_body = body[offset:offset + ext_len]
            offset += ext_len
            if client:
                self._data.client_extensions.append(ext_type)
            if ext_type == EXT_SUPPORTED_GROUPS and client and \
                    len(ext_body) >= 2:
                count = _U16.unpack_from(ext_body)[0] // 2
                self._data.supported_groups = [
                    _U16.unpack_from(ext_body, 2 + 2 * i)[0]
                    for i in range(count)
                    if 2 + 2 * i + 2 <= len(ext_body)
                ]
            elif ext_type == EXT_EC_POINT_FORMATS and client and \
                    len(ext_body) >= 1:
                count = ext_body[0]
                self._data.ec_point_formats = list(
                    ext_body[1:1 + count])
            elif ext_type == EXT_SERVER_NAME and client and len(ext_body) >= 5:
                name_len = _U16.unpack_from(ext_body, 3)[0]
                name = ext_body[5:5 + name_len]
                try:
                    self._data.sni_value = name.decode("ascii")
                except UnicodeDecodeError:
                    self._data.sni_value = name.decode("latin-1")
            elif ext_type == EXT_SUPPORTED_VERSIONS and not client \
                    and len(ext_body) >= 2:
                self._data.negotiated_version_id = _U16.unpack_from(
                    ext_body)[0]
            elif ext_type == EXT_ALPN and client and len(ext_body) >= 2:
                self._parse_alpn(ext_body)

    def _parse_alpn(self, ext_body: bytes) -> None:
        offset = 2
        while offset < len(ext_body):
            length = ext_body[offset]
            offset += 1
            proto = ext_body[offset:offset + length]
            offset += length
            try:
                self._data.alpn_protocols.append(proto.decode("ascii"))
            except UnicodeDecodeError:
                pass

    # -- state-machine hints ---------------------------------------------------
    def session_match_state(self) -> str:
        """Past the handshake everything is ciphertext: no more parsing
        (Figure 4b transitions out of PARSE after the session)."""
        return "track"

    def session_nomatch_state(self) -> str:
        return "delete"

    @property
    def handshake_data(self) -> TlsHandshakeData:
        return self._data
