"""TLS wire-format synthesis.

The traffic generators build byte-accurate TLS records with these
helpers so the parser is exercised against real handshake encodings
(including extension framing for SNI, ALPN, and supported_versions).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence

RECORD_HANDSHAKE = 22
RECORD_APPLICATION_DATA = 23
RECORD_CHANGE_CIPHER_SPEC = 20
RECORD_ALERT = 21

HS_CLIENT_HELLO = 1
HS_SERVER_HELLO = 2
HS_CERTIFICATE = 11
HS_SERVER_HELLO_DONE = 14
HS_FINISHED = 20

EXT_SERVER_NAME = 0x0000
EXT_SUPPORTED_GROUPS = 0x000A
EXT_EC_POINT_FORMATS = 0x000B
EXT_ALPN = 0x0010
EXT_SUPPORTED_VERSIONS = 0x002B


def _record(record_type: int, payload: bytes, version: int = 0x0303) -> bytes:
    return struct.pack("!BHH", record_type, version, len(payload)) + payload


def _handshake_msg(msg_type: int, body: bytes) -> bytes:
    return struct.pack("!B", msg_type) + len(body).to_bytes(3, "big") + body


def _extension(ext_type: int, body: bytes) -> bytes:
    return struct.pack("!HH", ext_type, len(body)) + body


def _sni_extension(hostname: str) -> bytes:
    name = hostname.encode("ascii")
    entry = struct.pack("!BH", 0, len(name)) + name
    server_name_list = struct.pack("!H", len(entry)) + entry
    return _extension(EXT_SERVER_NAME, server_name_list)


def _alpn_extension(protocols: Sequence[str]) -> bytes:
    entries = b"".join(
        struct.pack("!B", len(p)) + p.encode("ascii") for p in protocols
    )
    return _extension(EXT_ALPN, struct.pack("!H", len(entries)) + entries)


def _supported_groups_extension(groups: Sequence[int]) -> bytes:
    body = struct.pack("!H", 2 * len(groups)) + b"".join(
        struct.pack("!H", g) for g in groups)
    return _extension(EXT_SUPPORTED_GROUPS, body)


def _ec_point_formats_extension(formats: Sequence[int]) -> bytes:
    return _extension(EXT_EC_POINT_FORMATS,
                      bytes([len(formats)]) + bytes(formats))


def _supported_versions_client(versions: Sequence[int]) -> bytes:
    body = struct.pack("!B", 2 * len(versions)) + b"".join(
        struct.pack("!H", v) for v in versions
    )
    return _extension(EXT_SUPPORTED_VERSIONS, body)


def _supported_versions_server(version: int) -> bytes:
    return _extension(EXT_SUPPORTED_VERSIONS, struct.pack("!H", version))


def build_client_hello(
    sni: Optional[str],
    client_random: bytes,
    cipher_suites: Sequence[int] = (0x1301, 0x1302, 0xC02F),
    client_version: int = 0x0303,
    supported_versions: Optional[Sequence[int]] = None,
    alpn: Optional[Sequence[str]] = None,
    supported_groups: Sequence[int] = (0x001D, 0x0017, 0x0018),
    ec_point_formats: Sequence[int] = (0,),
    session_id: bytes = b"",
    record_version: int = 0x0301,
) -> bytes:
    """Build a complete ClientHello record."""
    if len(client_random) != 32:
        raise ValueError("client_random must be exactly 32 bytes")
    extensions: List[bytes] = []
    if sni is not None:
        extensions.append(_sni_extension(sni))
    if supported_groups:
        extensions.append(_supported_groups_extension(supported_groups))
    if ec_point_formats:
        extensions.append(_ec_point_formats_extension(ec_point_formats))
    if supported_versions:
        extensions.append(_supported_versions_client(supported_versions))
    if alpn:
        extensions.append(_alpn_extension(alpn))
    ext_blob = b"".join(extensions)
    body = (
        struct.pack("!H", client_version)
        + client_random
        + struct.pack("!B", len(session_id)) + session_id
        + struct.pack("!H", 2 * len(cipher_suites))
        + b"".join(struct.pack("!H", c) for c in cipher_suites)
        + b"\x01\x00"  # one compression method: null
        + struct.pack("!H", len(ext_blob)) + ext_blob
    )
    return _record(RECORD_HANDSHAKE, _handshake_msg(HS_CLIENT_HELLO, body),
                   record_version)


def build_server_hello(
    server_random: bytes,
    cipher_suite: int = 0x1301,
    server_version: int = 0x0303,
    selected_version: Optional[int] = None,
    session_id: bytes = b"",
) -> bytes:
    """Build a ServerHello record; pass ``selected_version=0x0304`` to
    negotiate TLS 1.3 via the supported_versions extension."""
    if len(server_random) != 32:
        raise ValueError("server_random must be exactly 32 bytes")
    extensions: List[bytes] = []
    if selected_version is not None:
        extensions.append(_supported_versions_server(selected_version))
    ext_blob = b"".join(extensions)
    body = (
        struct.pack("!H", server_version)
        + server_random
        + struct.pack("!B", len(session_id)) + session_id
        + struct.pack("!H", cipher_suite)
        + b"\x00"  # null compression
        + struct.pack("!H", len(ext_blob)) + ext_blob
    )
    return _record(RECORD_HANDSHAKE, _handshake_msg(HS_SERVER_HELLO, body))


def build_certificate(cert_bytes: bytes = b"\x30\x82" + b"\x00" * 62) -> bytes:
    """An opaque Certificate handshake record (content not parsed)."""
    entry = len(cert_bytes).to_bytes(3, "big") + cert_bytes
    body = len(entry).to_bytes(3, "big") + entry
    return _record(RECORD_HANDSHAKE, _handshake_msg(HS_CERTIFICATE, body))


def build_server_hello_done() -> bytes:
    return _record(RECORD_HANDSHAKE, _handshake_msg(HS_SERVER_HELLO_DONE, b""))


def build_application_data(payload: bytes) -> bytes:
    """An encrypted application-data record (opaque payload)."""
    return _record(RECORD_APPLICATION_DATA, payload)
