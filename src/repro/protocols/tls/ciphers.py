"""TLS cipher-suite and version name tables."""

from __future__ import annotations

from typing import Dict

#: Common IANA cipher-suite ids → names (the suites that dominate
#: real-world traffic plus a tail of legacy suites).
CIPHER_SUITES: Dict[int, str] = {
    0x1301: "TLS_AES_128_GCM_SHA256",
    0x1302: "TLS_AES_256_GCM_SHA384",
    0x1303: "TLS_CHACHA20_POLY1305_SHA256",
    0xC02B: "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256",
    0xC02C: "TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384",
    0xC02F: "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
    0xC030: "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384",
    0xCCA8: "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256",
    0xCCA9: "TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256",
    0x009C: "TLS_RSA_WITH_AES_128_GCM_SHA256",
    0x009D: "TLS_RSA_WITH_AES_256_GCM_SHA384",
    0x002F: "TLS_RSA_WITH_AES_128_CBC_SHA",
    0x0035: "TLS_RSA_WITH_AES_256_CBC_SHA",
    0x000A: "TLS_RSA_WITH_3DES_EDE_CBC_SHA",
    0xC013: "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA",
    0xC014: "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA",
    0x003C: "TLS_RSA_WITH_AES_128_CBC_SHA256",
    0x0005: "TLS_RSA_WITH_RC4_128_SHA",
}

VERSION_NAMES: Dict[int, str] = {
    0x0300: "SSL 3.0",
    0x0301: "TLS 1.0",
    0x0302: "TLS 1.1",
    0x0303: "TLS 1.2",
    0x0304: "TLS 1.3",
}


def cipher_name(suite_id: int) -> str:
    """Name for a cipher-suite id; unknown ids render as hex."""
    return CIPHER_SUITES.get(suite_id, f"UNKNOWN_0x{suite_id:04x}")


def version_name(version_id: int) -> str:
    return VERSION_NAMES.get(version_id, f"UNKNOWN_0x{version_id:04x}")
