"""TLS protocol module: record/handshake parsing and synthesis."""

from repro.protocols.tls.data import TlsHandshakeData
from repro.protocols.tls.parser import TlsParser
from repro.protocols.tls.build import (
    build_client_hello,
    build_server_hello,
    build_application_data,
)
from repro.protocols.tls.ciphers import cipher_name, CIPHER_SUITES

__all__ = [
    "TlsHandshakeData",
    "TlsParser",
    "build_client_hello",
    "build_server_hello",
    "build_application_data",
    "cipher_name",
    "CIPHER_SUITES",
]
