"""Parsed TLS handshake transcript: the ``TlsHandshake`` subscribable."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.protocols.tls.ciphers import cipher_name, version_name


def is_grease(value: int) -> bool:
    """GREASE values (RFC 8701): 0x0a0a, 0x1a1a, ... 0xfafa."""
    return (value & 0x0F0F) == 0x0A0A and \
        (value >> 12) == ((value >> 4) & 0x0F)


@dataclass
class TlsHandshakeData:
    """Fields extracted from a TLS handshake.

    Accessor *methods* (``sni()``, ``cipher()``, ...) are what the
    session filter's generated code calls — their names match the field
    registry's accessor lists.
    """

    client_random: Optional[bytes] = None
    server_random: Optional[bytes] = None
    session_id: Optional[bytes] = None
    sni_value: Optional[str] = None
    client_version_id: Optional[int] = None
    server_version_id: Optional[int] = None
    negotiated_version_id: Optional[int] = None
    offered_ciphers: List[int] = field(default_factory=list)
    chosen_cipher: Optional[int] = None
    alpn_protocols: List[str] = field(default_factory=list)
    #: ClientHello extension types, in offer order.
    client_extensions: List[int] = field(default_factory=list)
    #: supported_groups (elliptic curves) from the ClientHello.
    supported_groups: List[int] = field(default_factory=list)
    #: ec_point_formats from the ClientHello.
    ec_point_formats: List[int] = field(default_factory=list)
    #: (handshake-message-type, length) in arrival order.
    transcript: List[Tuple[int, int]] = field(default_factory=list)
    #: DER lengths of the server's certificate chain entries (empty for
    #: TLS 1.3, where Certificate is encrypted).
    certificate_lengths: List[int] = field(default_factory=list)
    client_hello_ts: float = 0.0
    server_hello_ts: float = 0.0

    # -- filter accessors ---------------------------------------------------
    def sni(self) -> Optional[str]:
        """Server Name Indication from the ClientHello, if present."""
        return self.sni_value

    def cipher(self) -> Optional[str]:
        """Name of the server-chosen cipher suite."""
        if self.chosen_cipher is None:
            return None
        return cipher_name(self.chosen_cipher)

    def version(self) -> Optional[str]:
        """Negotiated protocol version name (e.g. ``"TLS 1.3"``)."""
        if self.negotiated_version_id is None:
            return None
        return version_name(self.negotiated_version_id)

    def client_version(self) -> Optional[str]:
        """Version offered in the ClientHello record."""
        if self.client_version_id is None:
            return None
        return version_name(self.client_version_id)

    def cert_count(self) -> int:
        """Number of certificates in the server's (plaintext) chain."""
        return len(self.certificate_lengths)

    # -- client fingerprinting -------------------------------------------------
    def ja3_string(self) -> Optional[str]:
        """The JA3 client-fingerprint input string:
        ``version,ciphers,extensions,groups,point_formats`` with GREASE
        values removed — the de-facto standard for TLS client
        identification in passive measurement."""
        if self.client_version_id is None:
            return None
        def clean(values):
            return "-".join(str(v) for v in values if not is_grease(v))
        return ",".join([
            str(self.client_version_id),
            clean(self.offered_ciphers),
            clean(self.client_extensions),
            clean(self.supported_groups),
            "-".join(str(v) for v in self.ec_point_formats),
        ])

    def ja3(self) -> Optional[str]:
        """MD5 digest of :meth:`ja3_string` (the canonical JA3 form)."""
        raw = self.ja3_string()
        if raw is None:
            return None
        return hashlib.md5(raw.encode("ascii")).hexdigest()

    # -- convenience ----------------------------------------------------------
    @property
    def complete(self) -> bool:
        """Both hellos seen — the data the paper's subscriptions need."""
        return (self.client_random is not None
                and self.server_random is not None)

    def __repr__(self) -> str:
        return (
            f"TlsHandshakeData(sni={self.sni_value!r}, "
            f"version={self.version()!r}, cipher={self.cipher()!r})"
        )
