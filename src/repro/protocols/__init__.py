"""Application-layer protocol modules (Appendix A, ``ConnParsable``).

Each protocol module implements the probe/parse contract of
:class:`~repro.protocols.base.ConnParser`: given in-order stream
segments it first *probes* (cheaply decides whether the connection
speaks this protocol) and then *parses* full application-layer
sessions. The registry maps protocol names to parser factories and is
what the connection tracker instantiates when a subscription requires
L7 data.
"""

from repro.protocols.base import (
    ConnParser,
    ParseResult,
    ProbeResult,
    Session,
)
from repro.protocols.registry import ParserRegistry, default_parser_registry
from repro.protocols.tls.parser import TlsParser
from repro.protocols.tls.data import TlsHandshakeData
from repro.protocols.http.parser import HttpParser, HttpTransactionData
from repro.protocols.ssh.parser import SshParser, SshHandshakeData
from repro.protocols.dns.parser import DnsParser, DnsTransactionData
from repro.protocols.quic.parser import QuicParser, QuicHandshakeData

__all__ = [
    "ConnParser",
    "ProbeResult",
    "ParseResult",
    "Session",
    "ParserRegistry",
    "default_parser_registry",
    "TlsParser",
    "TlsHandshakeData",
    "HttpParser",
    "HttpTransactionData",
    "SshParser",
    "SshHandshakeData",
    "DnsParser",
    "DnsTransactionData",
    "QuicParser",
    "QuicHandshakeData",
]
