"""The ConnParsable contract: probe, parse, and session management."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.stream.pdu import StreamSegment


class ProbeResult(enum.Enum):
    """Outcome of sniffing initial payload for a protocol signature."""

    MATCH = "match"        # this is definitely the protocol
    UNSURE = "unsure"      # need more bytes to decide
    NO_MATCH = "no_match"  # definitely not this protocol


class ParseResult(enum.Enum):
    """Outcome of feeding a segment to an identified protocol parser."""

    CONTINUE = "continue"  # mid-message, keep feeding
    DONE = "done"          # one or more sessions completed
    ERROR = "error"        # malformed; stop parsing this connection


@dataclass
class Session:
    """One parsed application-layer session (e.g. a TLS handshake)."""

    protocol: str
    data: Any
    session_id: int = 0
    timestamp: float = 0.0


class ConnParser:
    """Base class for connection-level protocol parsers.

    Mirrors Retina's ``ConnParsable`` trait (Figure 10): parsers consume
    in-order :class:`~repro.stream.pdu.StreamSegment` objects, identify
    their protocol via :meth:`probe`, accumulate state via :meth:`parse`,
    and surface completed :class:`Session` objects via
    :meth:`drain_sessions`.
    """

    #: Protocol name as used in filters (must match the field registry).
    protocol = "?"

    def __init__(self) -> None:
        self._sessions: List[Session] = []
        self._next_session_id = 0

    # -- contract -----------------------------------------------------------
    def probe(self, segment: StreamSegment) -> ProbeResult:
        """Cheaply decide whether the stream speaks this protocol."""
        raise NotImplementedError

    def parse(self, segment: StreamSegment) -> ParseResult:
        """Consume one in-order segment of an identified stream."""
        raise NotImplementedError

    def sessions_parsed(self) -> int:
        return len(self._sessions)

    def drain_sessions(self) -> List[Session]:
        """Remove and return all completed sessions."""
        sessions = self._sessions
        self._sessions = []
        return sessions

    # -- hooks for subscription-derived state machines -----------------------
    def session_match_state(self) -> str:
        """Connection state after a session matched the filter:
        ``"parse"`` to keep parsing for more sessions (e.g. HTTP
        pipelining) or ``"track"``/``"delete"`` when no more parsed data
        can be produced (e.g. TLS past the handshake)."""
        return "parse"

    def session_nomatch_state(self) -> str:
        """Connection state after a session failed the filter."""
        return "delete"

    # -- helpers ------------------------------------------------------------
    def _finish_session(self, data: Any, timestamp: float = 0.0) -> None:
        self._sessions.append(
            Session(self.protocol, data, self._next_session_id, timestamp)
        )
        self._next_session_id += 1
