"""DNS wire-format synthesis (RFC 1035) for the traffic generators."""

from __future__ import annotations

import ipaddress
import struct
from typing import Optional

QTYPE = {"A": 1, "NS": 2, "CNAME": 5, "SOA": 6, "PTR": 12, "MX": 15,
         "TXT": 16, "AAAA": 28, "HTTPS": 65}


def encode_name(name: str) -> bytes:
    """Encode a dotted name into DNS label format."""
    out = bytearray()
    for label in name.rstrip(".").split("."):
        raw = label.encode("idna") if label else b""
        if len(raw) > 63:
            raise ValueError(f"label too long: {label!r}")
        out.append(len(raw))
        out.extend(raw)
    out.append(0)
    return bytes(out)


def build_dns_query(
    name: str,
    qtype: str = "A",
    txn_id: int = 0x1234,
    recursion_desired: bool = True,
) -> bytes:
    """Build a single-question DNS query message."""
    flags = 0x0100 if recursion_desired else 0x0000
    header = struct.pack("!HHHHHH", txn_id, flags, 1, 0, 0, 0)
    question = encode_name(name) + struct.pack("!HH", QTYPE[qtype], 1)
    return header + question


def build_dns_response(
    name: str,
    address: str = "93.184.216.34",
    qtype: str = "A",
    txn_id: int = 0x1234,
    rcode: int = 0,
    ttl: int = 300,
) -> bytes:
    """Build a response with one answer (for rcode 0) to a query."""
    ancount = 1 if rcode == 0 else 0
    flags = 0x8180 | (rcode & 0x000F)
    header = struct.pack("!HHHHHH", txn_id, flags, 1, ancount, 0, 0)
    question = encode_name(name) + struct.pack("!HH", QTYPE[qtype], 1)
    message = header + question
    if ancount:
        rdata = ipaddress.ip_address(address).packed
        answer = (
            b"\xc0\x0c"  # compression pointer to the question name
            + struct.pack("!HHIH", QTYPE[qtype], 1, ttl, len(rdata))
            + rdata
        )
        message += answer
    return message
