"""DNS protocol module (wire-format parser + builder)."""

from repro.protocols.dns.parser import DnsParser, DnsTransactionData
from repro.protocols.dns.build import build_dns_query, build_dns_response

__all__ = [
    "DnsParser",
    "DnsTransactionData",
    "build_dns_query",
    "build_dns_response",
]
