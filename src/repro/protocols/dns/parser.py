"""DNS message parser (ConnParsable implementation).

Parses query/response pairs from UDP datagram payloads (each stream
segment is one datagram; the pipeline feeds UDP payloads directly).
TCP-carried DNS with its 2-byte length prefix is also handled.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.protocols.base import ConnParser, ParseResult, ProbeResult
from repro.protocols.dns.build import QTYPE
from repro.stream.pdu import StreamSegment

_TYPE_NAMES = {v: k for k, v in QTYPE.items()}
_RCODE_NAMES = {0: "NOERROR", 1: "FORMERR", 2: "SERVFAIL", 3: "NXDOMAIN",
                4: "NOTIMP", 5: "REFUSED"}

# Wire formats compiled once at import (a parser runs per segment, and
# inline format strings recompile per call).
_U16 = struct.Struct("!H")
_DNS_HEADER = struct.Struct("!HHHH")
_RR_FIXED = struct.Struct("!HHIH")


@dataclass
class DnsAnswer:
    """One decoded resource record from the answer section."""

    name: str
    type_name: str
    ttl: int
    #: Decoded value: dotted address for A/AAAA, target name for
    #: CNAME/NS/PTR, hex for anything else.
    value: str


@dataclass
class DnsTransactionData:
    """One query (and optionally its response)."""

    txn_id: int = 0
    query_name_value: Optional[str] = None
    query_type_value: Optional[str] = None
    response_code_value: Optional[int] = None
    answer_count: int = 0
    answers: list = None
    query_ts: float = 0.0
    response_ts: float = 0.0

    def __post_init__(self) -> None:
        if self.answers is None:
            self.answers = []

    # -- filter accessors ---------------------------------------------------
    def query_name(self) -> Optional[str]:
        return self.query_name_value

    def query_type(self) -> Optional[str]:
        return self.query_type_value

    def response_code(self) -> Optional[int]:
        return self.response_code_value

    def rcode_name(self) -> Optional[str]:
        if self.response_code_value is None:
            return None
        return _RCODE_NAMES.get(self.response_code_value,
                                str(self.response_code_value))


def parse_name(message: bytes, offset: int) -> Tuple[str, int]:
    """Decode a (possibly compressed) DNS name; returns (name, end)."""
    labels = []
    jumps = 0
    end: Optional[int] = None
    while True:
        if offset >= len(message) or jumps > 16:
            raise ValueError("truncated or looping DNS name")
        length = message[offset]
        if length == 0:
            offset += 1
            break
        if length & 0xC0 == 0xC0:
            if offset + 2 > len(message):
                raise ValueError("truncated compression pointer")
            pointer = _U16.unpack_from(message, offset)[0] & 0x3FFF
            if end is None:
                end = offset + 2
            offset = pointer
            jumps += 1
            continue
        offset += 1
        labels.append(
            message[offset:offset + length].decode("latin-1"))
        offset += length
    return ".".join(labels), (end if end is not None else offset)


class DnsParser(ConnParser):
    """Stateful DNS parser for one flow."""

    protocol = "dns"

    def __init__(self) -> None:
        super().__init__()
        self._pending: Dict[int, DnsTransactionData] = {}

    def probe(self, segment: StreamSegment) -> ProbeResult:
        payload = self._datagram(segment)
        if len(payload) < 12:
            return ProbeResult.UNSURE
        try:
            self._parse_message(payload, segment, commit=False)
        except ValueError:
            return ProbeResult.NO_MATCH
        return ProbeResult.MATCH

    def parse(self, segment: StreamSegment) -> ParseResult:
        payload = self._datagram(segment)
        if len(payload) < 12:
            return ParseResult.CONTINUE
        try:
            finished = self._parse_message(payload, segment, commit=True)
        except ValueError:
            return ParseResult.ERROR
        return ParseResult.DONE if finished else ParseResult.CONTINUE

    @staticmethod
    def _datagram(segment: StreamSegment) -> bytes:
        """Strip the TCP length prefix if the payload carries one."""
        payload = segment.payload
        if len(payload) >= 14:
            (prefix,) = _U16.unpack_from(payload)
            if prefix == len(payload) - 2:
                return payload[2:]
        return payload

    def _parse_message(self, message: bytes, segment: StreamSegment,
                       commit: bool) -> bool:
        txn_id, flags, qdcount, ancount = _DNS_HEADER.unpack_from(
            message)
        is_response = bool(flags & 0x8000)
        rcode = flags & 0x000F
        opcode = (flags >> 11) & 0x0F
        if qdcount == 0 or qdcount > 16:
            raise ValueError("implausible question count")
        if opcode > 5:
            raise ValueError("implausible opcode")
        if flags & 0x0040:  # the Z bit must be zero (RFC 1035)
            raise ValueError("reserved Z bit set")
        offset = 12
        qname = qtype_name = None
        if qdcount:
            qname, offset = parse_name(message, offset)
            if offset + 4 > len(message):
                raise ValueError("truncated question")
            qtype = _U16.unpack_from(message, offset)[0]
            qtype_name = _TYPE_NAMES.get(qtype, str(qtype))
            offset += 4
            # Additional questions (rare) are skipped.
            for _ in range(qdcount - 1):
                _, offset = parse_name(message, offset)
                offset += 4
        if not commit:
            return False
        answers = self._parse_answers(message, offset, ancount) \
            if is_response else []
        if not is_response:
            txn = DnsTransactionData(
                txn_id=txn_id, query_name_value=qname,
                query_type_value=qtype_name, query_ts=segment.timestamp,
            )
            self._pending[txn_id] = txn
            return False
        txn = self._pending.pop(txn_id, None)
        if txn is None:
            txn = DnsTransactionData(
                txn_id=txn_id, query_name_value=qname,
                query_type_value=qtype_name,
            )
        txn.response_code_value = rcode
        txn.answer_count = ancount
        txn.answers = answers
        txn.response_ts = segment.timestamp
        self._finish_session(txn, segment.timestamp)
        return True

    @staticmethod
    def _parse_answers(message: bytes, offset: int,
                       ancount: int) -> list:
        """Decode the answer section; stops quietly on truncation."""
        import ipaddress

        answers = []
        try:
            for _ in range(min(ancount, 64)):
                name, offset = parse_name(message, offset)
                if offset + 10 > len(message):
                    break
                rtype, _rclass, ttl, rdlength = _RR_FIXED.unpack_from(
                    message, offset)
                offset += 10
                rdata = message[offset:offset + rdlength]
                offset += rdlength
                if len(rdata) < rdlength:
                    break
                type_name = _TYPE_NAMES.get(rtype, str(rtype))
                if type_name == "A" and rdlength == 4:
                    value = str(ipaddress.IPv4Address(rdata))
                elif type_name == "AAAA" and rdlength == 16:
                    value = str(ipaddress.IPv6Address(rdata))
                elif type_name in ("CNAME", "NS", "PTR"):
                    value, _ = parse_name(
                        message, offset - rdlength)
                else:
                    value = rdata.hex()
                answers.append(DnsAnswer(name, type_name, ttl, value))
        except ValueError:
            pass
        return answers

    def session_match_state(self) -> str:
        return "parse"  # a flow (e.g. resolver 5-tuple reuse) can carry more

    def session_nomatch_state(self) -> str:
        return "parse"
