"""Parser registry: protocol name → parser factory.

The runtime populates each connection's probe set from this registry,
restricted to the protocols the subscription actually needs (the
"Parser Registry" box in Figure 2): a TLS-handshake subscription only
ever probes with the TLS parser, so no cycles are spent recognizing
protocols the filter would discard anyway.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

from repro.errors import SubscriptionError
from repro.protocols.base import ConnParser


class ParserRegistry:
    """Maps protocol names to ConnParser factories."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[], ConnParser]] = {}

    def register(self, name: str,
                 factory: Callable[[], ConnParser]) -> None:
        self._factories[name] = factory

    def create(self, name: str) -> ConnParser:
        try:
            return self._factories[name]()
        except KeyError:
            raise SubscriptionError(
                f"no parser registered for protocol '{name}'"
            ) from None

    def create_set(self, names: Iterable[str]) -> List[ConnParser]:
        """Fresh parser instances for a new connection's probe set."""
        return [self.create(name) for name in sorted(set(names))]

    def protocols(self) -> List[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories


def default_parser_registry() -> ParserRegistry:
    """Registry with the built-in protocol modules."""
    from repro.protocols.dns.parser import DnsParser
    from repro.protocols.http.parser import HttpParser
    from repro.protocols.quic.parser import QuicParser
    from repro.protocols.ssh.parser import SshParser
    from repro.protocols.tls.parser import TlsParser

    registry = ParserRegistry()
    registry.register("tls", TlsParser)
    registry.register("http", HttpParser)
    registry.register("ssh", SshParser)
    registry.register("dns", DnsParser)
    registry.register("quic", QuicParser)
    return registry
