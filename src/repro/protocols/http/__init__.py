"""HTTP/1.x protocol module."""

from repro.protocols.http.parser import HttpParser, HttpTransactionData

__all__ = ["HttpParser", "HttpTransactionData"]
