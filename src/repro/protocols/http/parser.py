"""HTTP/1.x request/response parser (ConnParsable implementation).

Parses request and response heads (start line + headers) from the two
directions of a reassembled stream and pairs them into transactions.
Bodies are skipped by Content-Length (or treated as opaque for chunked
/ close-delimited responses) — Retina's HTTP subscription exposes
message metadata, not entity bodies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.protocols.base import ConnParser, ParseResult, ProbeResult
from repro.stream.pdu import StreamSegment

_METHODS = (
    b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ", b"OPTIONS ",
    b"PATCH ", b"TRACE ", b"CONNECT ",
)
_MAX_HEAD = 64 * 1024
_REQUEST_RE = re.compile(
    rb"^([A-Z]+) (\S+) HTTP/(\d\.\d)\r?\n", re.MULTILINE)
_STATUS_RE = re.compile(rb"^HTTP/(\d\.\d) (\d{3})")


@dataclass
class HttpTransactionData:
    """One request/response pair's metadata (the session data object)."""

    method_value: Optional[str] = None
    uri_value: Optional[str] = None
    version_value: Optional[str] = None
    request_headers: Dict[str, str] = field(default_factory=dict)
    status_code_value: Optional[int] = None
    response_headers: Dict[str, str] = field(default_factory=dict)
    request_ts: float = 0.0
    response_ts: float = 0.0

    # -- filter accessors ---------------------------------------------------
    def method(self) -> Optional[str]:
        return self.method_value

    def uri(self) -> Optional[str]:
        return self.uri_value

    def host(self) -> Optional[str]:
        return self.request_headers.get("host")

    def user_agent(self) -> Optional[str]:
        return self.request_headers.get("user-agent")

    def version(self) -> Optional[str]:
        return self.version_value

    def status_code(self) -> Optional[int]:
        return self.status_code_value

    def content_length(self) -> Optional[int]:
        raw = self.response_headers.get("content-length")
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            return None

    def __repr__(self) -> str:
        return (
            f"HttpTransactionData({self.method_value} {self.uri_value} "
            f"-> {self.status_code_value})"
        )


class _HalfParser:
    """Head/body scanner for one direction.

    Bodies are skipped, not stored: by Content-Length when present, or
    chunk by chunk for ``Transfer-Encoding: chunked`` messages.
    """

    __slots__ = ("buffer", "skip", "chunked")

    def __init__(self) -> None:
        self.buffer = bytearray()
        self.skip = 0       # body bytes still to discard
        self.chunked = False

    def feed(self, data: bytes) -> List[bytes]:
        """Return complete message heads found after feeding ``data``."""
        heads: List[bytes] = []
        self.buffer.extend(data)
        while True:
            if self.skip:
                consumed = min(self.skip, len(self.buffer))
                del self.buffer[:consumed]
                self.skip -= consumed
                if self.skip:
                    return heads
            if self.chunked:
                if not self._consume_chunks():
                    return heads
                continue
            end = self.buffer.find(b"\r\n\r\n")
            if end < 0:
                if len(self.buffer) > _MAX_HEAD:
                    raise ValueError("unreasonably large message head")
                return heads
            heads.append(bytes(self.buffer[:end]))
            del self.buffer[:end + 4]
            transfer = _header_value(heads[-1], b"transfer-encoding")
            if transfer is not None and b"chunked" in transfer.lower():
                self.chunked = True
                continue
            heads_cl = _header_value(heads[-1], b"content-length")
            if heads_cl is not None:
                try:
                    self.skip = int(heads_cl)
                except ValueError:
                    raise ValueError("bad Content-Length")

    def _consume_chunks(self) -> bool:
        """Skip chunked-body framing; True once the body is consumed."""
        while True:
            end = self.buffer.find(b"\r\n")
            if end < 0:
                if len(self.buffer) > 1024:
                    raise ValueError("unterminated chunk-size line")
                return False
            size_token = bytes(self.buffer[:end]).split(b";", 1)[0].strip()
            try:
                size = int(size_token, 16)
            except ValueError:
                raise ValueError(f"bad chunk size {size_token!r}")
            if size == 0:
                # Last chunk: consume trailer section up to its CRLF.
                terminator = self.buffer.find(b"\r\n\r\n", end)
                if self.buffer[end + 2:end + 4] == b"\r\n":
                    del self.buffer[:end + 4]
                elif terminator >= 0:
                    del self.buffer[:terminator + 4]
                elif len(self.buffer) - end > _MAX_HEAD:
                    raise ValueError("unreasonably large trailer")
                else:
                    return False
                self.chunked = False
                return True
            needed = end + 2 + size + 2  # size line + chunk + CRLF
            if len(self.buffer) < needed:
                # Defer: drop what we have and remember the remainder.
                available = len(self.buffer)
                del self.buffer[:available]
                self.skip = needed - available
                self.chunked = True
                return False
            del self.buffer[:needed]


def _header_value(head: bytes, name: bytes) -> Optional[bytes]:
    for line in head.split(b"\r\n")[1:]:
        key, _, value = line.partition(b":")
        if key.strip().lower() == name:
            return value.strip()
    return None


def _parse_headers(head: bytes) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in head.split(b"\r\n")[1:]:
        key, sep, value = line.partition(b":")
        if not sep:
            continue
        headers[key.strip().lower().decode("latin-1")] = \
            value.strip().decode("latin-1")
    return headers


class HttpParser(ConnParser):
    """Stateful HTTP/1.x parser for one connection."""

    protocol = "http"

    def __init__(self) -> None:
        super().__init__()
        self._requests = _HalfParser()
        self._responses = _HalfParser()
        #: Requests waiting for their response (pipelining-safe FIFO).
        self._pending: List[HttpTransactionData] = []

    def probe(self, segment: StreamSegment) -> ProbeResult:
        payload = segment.payload
        if segment.from_orig:
            if any(payload.startswith(m) for m in _METHODS):
                return ProbeResult.MATCH
            if any(m.startswith(payload[:len(m)]) for m in _METHODS):
                return ProbeResult.UNSURE
            return ProbeResult.NO_MATCH
        if payload.startswith(b"HTTP/"):
            return ProbeResult.MATCH
        if b"HTTP/".startswith(payload[:5]):
            return ProbeResult.UNSURE
        return ProbeResult.NO_MATCH

    def parse(self, segment: StreamSegment) -> ParseResult:
        try:
            if segment.from_orig:
                heads = self._requests.feed(segment.payload)
                for head in heads:
                    self._start_transaction(head, segment.timestamp)
            else:
                heads = self._responses.feed(segment.payload)
                completed = False
                for head in heads:
                    completed |= self._finish_transaction(
                        head, segment.timestamp)
                if completed:
                    return ParseResult.DONE
        except ValueError:
            return ParseResult.ERROR
        return ParseResult.CONTINUE

    def _start_transaction(self, head: bytes, ts: float) -> None:
        txn = HttpTransactionData(request_ts=ts)
        match = _REQUEST_RE.match(head)
        if match:
            txn.method_value = match.group(1).decode("latin-1")
            txn.uri_value = match.group(2).decode("latin-1")
            txn.version_value = match.group(3).decode("latin-1")
        txn.request_headers = _parse_headers(head)
        self._pending.append(txn)

    def _finish_transaction(self, head: bytes, ts: float) -> bool:
        txn = self._pending.pop(0) if self._pending \
            else HttpTransactionData()
        match = _STATUS_RE.match(head)
        if match:
            if txn.version_value is None:
                txn.version_value = match.group(1).decode("latin-1")
            txn.status_code_value = int(match.group(2))
        txn.response_headers = _parse_headers(head)
        txn.response_ts = ts
        self._finish_session(txn, ts)
        return True

    def session_match_state(self) -> str:
        """Keep parsing: a connection can carry many transactions."""
        return "parse"

    def session_nomatch_state(self) -> str:
        """One non-matching transaction does not condemn the
        connection — later transactions may match (unlike TLS)."""
        return "parse"
