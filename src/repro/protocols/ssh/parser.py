"""SSH identification-exchange parser (RFC 4253 §4.2).

Both peers open with ``SSH-protoversion-softwareversion [comments]\\r\\n``.
The session completes once both banners are seen; the key exchange that
follows is opaque to the subscription, so — like TLS — the connection
can stop being parsed mid-stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.protocols.base import ConnParser, ParseResult, ProbeResult
from repro.stream.pdu import StreamSegment

_MAX_BANNER = 255  # RFC 4253 limit


@dataclass
class SshHandshakeData:
    """Both peers' identification strings."""

    client_banner: Optional[str] = None
    server_banner: Optional[str] = None

    # -- filter accessors ---------------------------------------------------
    def client_version(self) -> Optional[str]:
        """Protocol version offered by the client (e.g. ``"2.0"``)."""
        return _version_of(self.client_banner)

    def server_version(self) -> Optional[str]:
        return _version_of(self.server_banner)

    def client_software(self) -> Optional[str]:
        """Client software string (e.g. ``"OpenSSH_8.9p1"``)."""
        return _software_of(self.client_banner)

    def server_software(self) -> Optional[str]:
        return _software_of(self.server_banner)

    @property
    def complete(self) -> bool:
        return self.client_banner is not None and \
            self.server_banner is not None


def _version_of(banner: Optional[str]) -> Optional[str]:
    if banner is None:
        return None
    parts = banner.split("-", 2)
    return parts[1] if len(parts) >= 2 else None


def _software_of(banner: Optional[str]) -> Optional[str]:
    if banner is None:
        return None
    parts = banner.split("-", 2)
    if len(parts) < 3:
        return None
    return parts[2].split(" ", 1)[0]


class SshParser(ConnParser):
    """Stateful SSH banner parser for one connection."""

    protocol = "ssh"

    def __init__(self) -> None:
        super().__init__()
        self._client_buf = bytearray()
        self._server_buf = bytearray()
        self._data = SshHandshakeData()
        self._done = False

    def probe(self, segment: StreamSegment) -> ProbeResult:
        payload = segment.payload
        prefix = b"SSH-"
        if payload.startswith(prefix):
            return ProbeResult.MATCH
        if prefix.startswith(payload[:len(prefix)]):
            return ProbeResult.UNSURE
        return ProbeResult.NO_MATCH

    def parse(self, segment: StreamSegment) -> ParseResult:
        if self._done:
            return ParseResult.DONE
        buffer = self._client_buf if segment.from_orig else self._server_buf
        if (segment.from_orig and self._data.client_banner is None) or \
                (not segment.from_orig and self._data.server_banner is None):
            buffer.extend(segment.payload)
            if len(buffer) > _MAX_BANNER + 2:
                del buffer[_MAX_BANNER + 2:]
            end = buffer.find(b"\n")
            if end < 0:
                if len(buffer) > _MAX_BANNER:
                    return ParseResult.ERROR
                return ParseResult.CONTINUE
            banner = bytes(buffer[:end]).rstrip(b"\r").decode(
                "utf-8", errors="replace")
            if not banner.startswith("SSH-"):
                return ParseResult.ERROR
            if segment.from_orig:
                self._data.client_banner = banner
            else:
                self._data.server_banner = banner
        if self._data.complete:
            self._done = True
            self._finish_session(self._data, segment.timestamp)
            return ParseResult.DONE
        return ParseResult.CONTINUE

    def session_match_state(self) -> str:
        return "track"

    def session_nomatch_state(self) -> str:
        return "delete"
