"""SSH protocol module."""

from repro.protocols.ssh.parser import SshParser, SshHandshakeData

__all__ = ["SshParser", "SshHandshakeData"]
