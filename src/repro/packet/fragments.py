"""IPv4 fragment reassembly.

Port-based filters cannot match non-first fragments (their transport
header lives in the first fragment only), so a capture pipeline must
either reassemble datagrams or accept that fragmented traffic partially
escapes filtering. Retina — like most kernel-bypass pipelines — does
not reassemble; this module provides the option for deployments that
need it (``RuntimeConfig(reassemble_fragments=True)``), with the
defensive bounds the adversarial-reassembly literature demands: a
per-datagram byte cap, a datagram table cap, and a timeout.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.packet.builder import checksum16
from repro.packet.ipv4 import Ipv4
from repro.packet.mbuf import Mbuf
from repro.packet.stack import parse_stack

_MF_FLAG = 0x2000  # more-fragments bit in the flags/offset word


def fragment_ipv4(frame: bytes, fragment_payload: int = 1208) -> List[bytes]:
    """Split an IPv4 frame into valid fragments (builder-side).

    ``fragment_payload`` is the IP payload bytes per fragment and must
    be a multiple of 8 (fragment offsets are in 8-byte units).
    """
    if fragment_payload % 8:
        raise ValueError("fragment payload must be a multiple of 8")
    stack = parse_stack(Mbuf(frame))
    if stack.ip is None or stack.ip.version() != 4:
        raise ValueError("not an IPv4 frame")
    ip = stack.ip
    eth_header = frame[:ip.offset]
    ip_header = bytearray(frame[ip.offset:ip.offset + ip.header_len()])
    payload = frame[ip.offset + ip.header_len():
                    ip.offset + ip.total_length()]
    if len(payload) <= fragment_payload:
        return [frame]
    fragments = []
    offset_units = 0
    while offset_units * 8 < len(payload):
        start = offset_units * 8
        chunk = payload[start:start + fragment_payload]
        more = start + len(chunk) < len(payload)
        header = bytearray(ip_header)
        struct.pack_into("!H", header, 2, len(header) + len(chunk))
        struct.pack_into("!H", header, 6,
                         (offset_units & 0x1FFF) | (_MF_FLAG if more else 0))
        struct.pack_into("!H", header, 10, 0)
        struct.pack_into("!H", header, 10, checksum16(bytes(header)))
        fragments.append(bytes(eth_header) + bytes(header) + chunk)
        offset_units += fragment_payload // 8
    return fragments


class _Datagram:
    """Accumulation state for one fragmented datagram."""

    __slots__ = ("chunks", "total_len", "bytes_held", "first_ts",
                 "eth_header", "ip_header")

    def __init__(self, first_ts: float) -> None:
        self.chunks: Dict[int, bytes] = {}
        self.total_len: Optional[int] = None
        self.bytes_held = 0
        self.first_ts = first_ts
        self.eth_header: Optional[bytes] = None
        self.ip_header: Optional[bytes] = None


class FragmentReassembler:
    """Bounded IPv4 datagram reassembly.

    Returns complete frames; incomplete datagrams are bounded by
    ``max_datagram_bytes`` (oversize → discarded), ``max_datagrams``
    (table pressure → oldest evicted), and ``timeout`` seconds.
    """

    def __init__(
        self,
        max_datagram_bytes: int = 65535,
        max_datagrams: int = 1024,
        timeout: float = 30.0,
    ) -> None:
        self.max_datagram_bytes = max_datagram_bytes
        self.max_datagrams = max_datagrams
        self.timeout = timeout
        self._table: Dict[Tuple, _Datagram] = {}
        self.reassembled = 0
        self.discarded = 0

    def __len__(self) -> int:
        return len(self._table)

    @staticmethod
    def is_fragment(ip: Ipv4) -> bool:
        word = (ip.flags() << 13) | ip.fragment_offset()
        return bool(word & _MF_FLAG) or ip.fragment_offset() > 0

    def push(self, mbuf: Mbuf) -> Optional[Mbuf]:
        """Insert a fragment; returns the reassembled frame when the
        datagram completes, else None. Non-fragment frames pass
        through unchanged."""
        stack = parse_stack(mbuf)
        if stack.ip is None or stack.ip.version() != 4:
            return mbuf
        ip = stack.ip
        if not self.is_fragment(ip):
            return mbuf
        self._expire(mbuf.timestamp)
        key = (ip.src_addr_u32(), ip.dst_addr_u32(),
               ip.identification(), ip.protocol())
        datagram = self._table.get(key)
        if datagram is None:
            if len(self._table) >= self.max_datagrams:
                self._evict_oldest()
            datagram = _Datagram(mbuf.timestamp)
            self._table[key] = datagram
        start = ip.fragment_offset() * 8
        chunk = mbuf.data[ip.offset + ip.header_len():
                          ip.offset + ip.total_length()]
        more = bool(((ip.flags() << 13) | ip.fragment_offset()) & _MF_FLAG)
        if start == 0:
            datagram.eth_header = mbuf.data[:ip.offset]
            datagram.ip_header = mbuf.data[ip.offset:
                                           ip.offset + ip.header_len()]
        if start not in datagram.chunks:
            datagram.chunks[start] = chunk
            datagram.bytes_held += len(chunk)
        if not more:
            datagram.total_len = start + len(chunk)
        if datagram.bytes_held > self.max_datagram_bytes:
            del self._table[key]
            self.discarded += 1
            return None
        frame = self._try_complete(datagram)
        if frame is None:
            return None
        del self._table[key]
        self.reassembled += 1
        return Mbuf(frame, timestamp=mbuf.timestamp, port=mbuf.port)

    def _try_complete(self, datagram: _Datagram) -> Optional[bytes]:
        if datagram.total_len is None or datagram.ip_header is None:
            return None
        payload = bytearray()
        offset = 0
        while offset < datagram.total_len:
            chunk = datagram.chunks.get(offset)
            if chunk is None:
                return None
            payload.extend(chunk)
            offset += len(chunk)
        header = bytearray(datagram.ip_header)
        struct.pack_into("!H", header, 2, len(header) + len(payload))
        struct.pack_into("!H", header, 6, 0)  # clear flags/offset
        struct.pack_into("!H", header, 10, 0)
        struct.pack_into("!H", header, 10, checksum16(bytes(header)))
        return bytes(datagram.eth_header) + bytes(header) + bytes(payload)

    def _expire(self, now: float) -> None:
        stale = [key for key, d in self._table.items()
                 if now - d.first_ts > self.timeout]
        for key in stale:
            del self._table[key]
            self.discarded += 1

    def _evict_oldest(self) -> None:
        oldest = min(self._table, key=lambda k: self._table[k].first_ts)
        del self._table[oldest]
        self.discarded += 1

    @property
    def memory_bytes(self) -> int:
        return sum(d.bytes_held for d in self._table.values())
