"""Flat-buffer packet batches: one blob per burst instead of N objects.

Retina moves packets between the NIC and cores as *bursts of mbufs
inside a contiguous ring*, never as individually allocated messages.
:class:`PackedBatch` is the reproduction's analogue for process
boundaries: a burst of frames packed into one ``bytes`` blob plus three
primitive arrays (frame offsets, float64 timestamps, ingress ports).

Pickling a ``PackedBatch`` serializes four flat buffers regardless of
how many packets it carries — O(bytes), not O(objects) — which is what
makes the parallel backend's feeder→worker IPC cheap. On the receiving
side :meth:`unpack` rebuilds :class:`~repro.packet.mbuf.Mbuf` views
whose ``data`` is a zero-copy ``memoryview`` slice of the shared blob;
header parsing works on those views in place, and the few places that
must materialize bytes (5-tuple keys, RSS input, L4 payloads) normalize
with ``bytes()`` at the boundary.

Timestamps travel as ``array('d')`` — exact IEEE-754 float64 round-trip
— so the bit-identical cross-backend stats guarantee survives packing.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.packet.mbuf import Mbuf

#: Default packets-per-batch for generator-side packing; matches the
#: runtime's default ``parallel_batch_size`` order of magnitude.
DEFAULT_BATCH_SIZE = 256

def _rebuild(blob: bytes, lengths: bytes, length_code: str,
             timestamps: bytes, ports: Union[int, bytes],
             queue: Optional[int],
             trace_ctx: Optional[tuple] = None,
             epoch: Optional[tuple] = None) -> "PackedBatch":
    """Unpickle helper: reconstruct the arrays from the wire fields.

    The wire carries per-frame *lengths* (u16 unless a frame exceeds
    64 KiB) and either a scalar port (uniform batch, the common case)
    or the raw port array; offsets and the in-memory port array are
    rebuilt here. ``trace_ctx`` and ``epoch`` default to None so older
    pickles still rebuild.
    """
    lens = array(length_code)
    lens.frombytes(lengths)
    offsets = array("I", (0,))
    append = offsets.append
    total = 0
    for length in lens:
        total += length
        append(total)
    ts = array("d")
    ts.frombytes(timestamps)
    if isinstance(ports, int):
        pt = array("H", (ports,)) * len(ts)
    else:
        pt = array("H")
        pt.frombytes(ports)
    batch = PackedBatch(blob, offsets, ts, pt, queue)
    batch.trace_ctx = trace_ctx
    batch.epoch = epoch
    return batch


class PackedBatch:
    """A burst of frames as one blob + primitive offset/metadata arrays.

    Attributes:
        blob: Concatenated raw frame bytes of every packet in order.
        offsets: ``array('I')`` of ``n + 1`` byte offsets into ``blob``;
            frame *i* spans ``blob[offsets[i]:offsets[i + 1]]``.
        timestamps: ``array('d')`` of receive timestamps (exact float64).
        ports: ``array('H')`` of ingress port indices.
        queue: RSS receive queue shared by the whole batch (set when the
            feeder packs an already-sharded per-queue burst), or ``None``
            for pre-dispatch batches from a traffic generator.
        trace_ctx: Optional span context — ``(queue, seq)`` stamped by
            the parallel feeder when burst span tracing is on, so the
            worker's burst spans stitch into the parent's trace
            (:mod:`repro.telemetry.spans`). ``None`` when spans are off;
            costs nothing on the wire then (pickled as a None slot).
        epoch: Optional filter-table epoch bump —
            ``(epoch_number, actions_tuple)`` stamped by a multi-tenant
            feeder on the (usually empty) batch that publishes a new
            :class:`~repro.tenancy.table.FilterTable` epoch to every
            worker (:mod:`repro.tenancy`). ``None`` on ordinary batches
            and in single-tenant runs; costs nothing on the wire then.
    """

    __slots__ = ("blob", "offsets", "timestamps", "ports", "queue",
                 "trace_ctx", "epoch")

    def __init__(self, blob: bytes, offsets: array, timestamps: array,
                 ports: array, queue: Optional[int] = None,
                 trace_ctx: Optional[tuple] = None,
                 epoch: Optional[tuple] = None) -> None:
        self.blob = blob
        self.offsets = offsets
        self.timestamps = timestamps
        self.ports = ports
        self.queue = queue
        self.trace_ctx = trace_ctx
        self.epoch = epoch

    @classmethod
    def pack(cls, mbufs: Sequence[Mbuf],
             queue: Optional[int] = None) -> "PackedBatch":
        """Pack a burst of mbufs into one flat buffer.

        ``queue`` stamps the whole batch (per-queue IPC batches are
        uniform by construction); pass ``None`` for generator output
        that has not been through RSS yet. Derived per-packet scratch
        state (``stack``, ``pkt_term_node``) is not carried — it is
        recomputed after unpacking, exactly as ``Mbuf.__reduce__``
        drops it for object pickling.
        """
        offsets = array("I", (0,))
        append_offset = offsets.append
        parts: List[bytes] = []
        total = 0
        for mbuf in mbufs:
            data = mbuf.data
            if type(data) is not bytes:
                data = bytes(data)  # memoryview-backed frame
            parts.append(data)
            total += len(data)
            append_offset(total)
        return cls(
            b"".join(parts),
            offsets,
            array("d", [m.timestamp for m in mbufs]),
            array("H", [m.port for m in mbufs]),
            queue,
        )

    @classmethod
    def from_rows(cls, rows: Sequence[tuple],
                  queue: Optional[int] = None) -> "PackedBatch":
        """Assemble a batch from ``(frame_bytes, timestamp, port)`` rows.

        The surgery constructor: drop/duplicate/reorder a batch by
        building a row list of blob slices (``memoryview`` slices of a
        source batch pass straight through) and joining them — no
        per-packet :class:`Mbuf` graph, no pickling, O(bytes) copying
        into the one new blob. The impairment layer
        (:mod:`repro.netem.impair`) rewrites packed streams this way.
        """
        offsets = array("I", (0,))
        append_offset = offsets.append
        parts: List[bytes] = []
        timestamps = array("d")
        ports = array("H")
        total = 0
        for data, ts, port in rows:
            if type(data) is not bytes:
                data = bytes(data)
            parts.append(data)
            total += len(data)
            append_offset(total)
            timestamps.append(ts)
            ports.append(port)
        return cls(b"".join(parts), offsets, timestamps, ports, queue)

    def frames(self) -> Iterator[tuple]:
        """Iterate ``(frame_view, timestamp, port)`` rows zero-copy —
        the read side of :meth:`from_rows` surgery."""
        view = memoryview(self.blob)
        offsets = self.offsets
        start = offsets[0]
        for i, ts in enumerate(self.timestamps):
            end = offsets[i + 1]
            yield view[start:end], ts, self.ports[i]
            start = end

    def unpack(self) -> List[Mbuf]:
        """Rebuild the burst as memoryview-backed :class:`Mbuf` views.

        Each mbuf's ``data`` is a zero-copy slice of the shared blob;
        header parsing (indexing and ``struct.unpack_from``) works on
        it unchanged.
        """
        view = memoryview(self.blob)
        offsets = self.offsets
        queue = self.queue
        out: List[Mbuf] = []
        append = out.append
        start = offsets[0]
        i = 0
        for ts in self.timestamps:
            end = offsets[i + 1]
            append(Mbuf(view[start:end], ts, self.ports[i], queue))
            start = end
            i += 1
        return out

    def __len__(self) -> int:
        """Packet count (feeder health accounting reads this)."""
        return len(self.timestamps)

    def _wire_fields(self):
        """The compact wire encoding: (lengths, code, ports-or-scalar).

        Frame lengths ship as u16 (u32 only if a frame exceeds 64 KiB)
        and a port array that is uniform — every batch packed after RSS
        dispatch, and most generator output — collapses to one int.
        """
        offsets = self.offsets
        n = len(self.timestamps)
        lengths = [offsets[i + 1] - offsets[i] for i in range(n)]
        code = "I" if lengths and max(lengths) > 0xFFFF else "H"
        ports = self.ports
        first = ports[0] if n else 0
        for port in ports:
            if port != first:
                return array(code, lengths), code, ports.tobytes()
        return array(code, lengths), code, first

    @property
    def nbytes(self) -> int:
        """Serialized payload size: what crosses the process boundary
        (plus a small constant pickle frame) — the numerator of the
        backend-health ``ipc_bytes_per_packet`` metric."""
        lengths, _code, ports = self._wire_fields()
        port_bytes = 0 if isinstance(ports, int) else len(ports)
        return (len(self.blob) + lengths.itemsize * len(lengths)
                + self.timestamps.itemsize * len(self.timestamps)
                + port_bytes)

    def __reduce__(self):
        # Flat buffers only; unpickling rebuilds the arrays with
        # frombytes. No per-packet object graph ever hits the pickler.
        lengths, code, ports = self._wire_fields()
        if self.trace_ctx is None and self.epoch is None:
            return (_rebuild, (self.blob, lengths.tobytes(), code,
                               self.timestamps.tobytes(), ports,
                               self.queue))
        if self.epoch is None:
            # Span-only batches keep the pre-tenancy 7-field tuple.
            return (_rebuild, (self.blob, lengths.tobytes(), code,
                               self.timestamps.tobytes(), ports,
                               self.queue, self.trace_ctx))
        return (_rebuild, (self.blob, lengths.tobytes(), code,
                           self.timestamps.tobytes(), ports, self.queue,
                           self.trace_ctx, self.epoch))

    def __repr__(self) -> str:
        return (f"PackedBatch(n={len(self)}, bytes={len(self.blob)}, "
                f"queue={self.queue})")


def pack_stream(mbufs: Iterable[Mbuf],
                batch_size: int = DEFAULT_BATCH_SIZE
                ) -> Iterator[PackedBatch]:
    """Pack an mbuf stream into successive :class:`PackedBatch` chunks."""
    batch: List[Mbuf] = []
    for mbuf in mbufs:
        batch.append(mbuf)
        if len(batch) >= batch_size:
            yield PackedBatch.pack(batch)
            batch = []
    if batch:
        yield PackedBatch.pack(batch)


def _flatten(traffic: Iterable[Union[Mbuf, PackedBatch]]) -> Iterator[Mbuf]:
    for item in traffic:
        if type(item) is PackedBatch:
            for mbuf in item.unpack():
                yield mbuf
        else:
            yield item


def iter_mbufs(traffic: Iterable[Union[Mbuf, PackedBatch]]
               ) -> Iterable[Mbuf]:
    """Normalize a traffic source to a per-mbuf iterable.

    Accepts plain mbuf iterables, :class:`PackedBatch` iterables, or a
    mix. A list containing no batches — the common benchmark shape — is
    returned as-is so the hot sequential loop iterates it directly with
    no generator frame per packet.
    """
    if type(traffic) is list:
        for item in traffic:
            if type(item) is PackedBatch:
                break
        else:
            return traffic
    return _flatten(traffic)
