"""Flat-buffer packet batches: one blob per burst instead of N objects.

Retina moves packets between the NIC and cores as *bursts of mbufs
inside a contiguous ring*, never as individually allocated messages.
:class:`PackedBatch` is the reproduction's analogue for process
boundaries: a burst of frames packed into one ``bytes`` blob plus three
primitive arrays (frame offsets, float64 timestamps, ingress ports).

Pickling a ``PackedBatch`` serializes four flat buffers regardless of
how many packets it carries — O(bytes), not O(objects) — which is what
makes the parallel backend's feeder→worker IPC cheap. On the receiving
side :meth:`unpack` rebuilds :class:`~repro.packet.mbuf.Mbuf` views
whose ``data`` is a zero-copy ``memoryview`` slice of the shared blob;
header parsing works on those views in place, and the few places that
must materialize bytes (5-tuple keys, RSS input, L4 payloads) normalize
with ``bytes()`` at the boundary.

Timestamps travel as ``array('d')`` — exact IEEE-754 float64 round-trip
— so the bit-identical cross-backend stats guarantee survives packing.
"""

from __future__ import annotations

import struct
from array import array
from itertools import accumulate, chain
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, \
    Union

from repro.packet.mbuf import Mbuf

#: Default packets-per-batch for generator-side packing; matches the
#: runtime's default ``parallel_batch_size`` order of magnitude.
DEFAULT_BATCH_SIZE = 256

#: Shared-memory slot header (repro.core.shm): rows, blob length, the
#: supervised batch seq (-1 when unsupervised), the RSS queue (-1 for
#: None), flags, the collapsed scalar port, and the span trace context.
#: Hoisted to module level like the columnar prefix structs — the slot
#: codec packs/unpacks one of these per burst on the hot path.
_SLOT_HEADER = struct.Struct("<IIqhHHiq")
SLOT_HEADER_BYTES = _SLOT_HEADER.size
#: Slot header flag bits.
_F_WIDE = 1          # frame lengths are u32 (a frame exceeded 64 KiB)
_F_SCALAR_PORT = 2   # uniform batch: one port value, no port column
_F_TRACE = 4         # trace_ctx fields are meaningful


def _rebuild(blob: bytes, lengths: bytes, length_code: str,
             timestamps: bytes, ports: Union[int, bytes],
             queue: Optional[int],
             trace_ctx: Optional[tuple] = None,
             epoch: Optional[tuple] = None) -> "PackedBatch":
    """Unpickle helper: reconstruct the arrays from the wire fields.

    The wire carries per-frame *lengths* (u16 unless a frame exceeds
    64 KiB) and either a scalar port (uniform batch, the common case)
    or the raw port array; offsets and the in-memory port array are
    rebuilt here. ``trace_ctx`` and ``epoch`` default to None so older
    pickles still rebuild.
    """
    lens = array(length_code)
    lens.frombytes(lengths)
    offsets = array("I", chain((0,), accumulate(lens)))
    ts = array("d")
    ts.frombytes(timestamps)
    if isinstance(ports, int):
        pt = array("H", (ports,)) * len(ts)
    else:
        pt = array("H")
        pt.frombytes(ports)
    batch = PackedBatch(blob, offsets, ts, pt, queue)
    batch.trace_ctx = trace_ctx
    batch.epoch = epoch
    return batch


class PackedBatch:
    """A burst of frames as one blob + primitive offset/metadata arrays.

    Attributes:
        blob: Concatenated raw frame bytes of every packet in order.
        offsets: ``array('I')`` of ``n + 1`` byte offsets into ``blob``;
            frame *i* spans ``blob[offsets[i]:offsets[i + 1]]``.
        timestamps: ``array('d')`` of receive timestamps (exact float64).
        ports: ``array('H')`` of ingress port indices.
        queue: RSS receive queue shared by the whole batch (set when the
            feeder packs an already-sharded per-queue burst), or ``None``
            for pre-dispatch batches from a traffic generator.
        trace_ctx: Optional span context — ``(queue, seq)`` stamped by
            the parallel feeder when burst span tracing is on, so the
            worker's burst spans stitch into the parent's trace
            (:mod:`repro.telemetry.spans`). ``None`` when spans are off;
            costs nothing on the wire then (pickled as a None slot).
        epoch: Optional filter-table epoch bump —
            ``(epoch_number, actions_tuple)`` stamped by a multi-tenant
            feeder on the (usually empty) batch that publishes a new
            :class:`~repro.tenancy.table.FilterTable` epoch to every
            worker (:mod:`repro.tenancy`). ``None`` on ordinary batches
            and in single-tenant runs; costs nothing on the wire then.
    """

    __slots__ = ("blob", "offsets", "timestamps", "ports", "queue",
                 "trace_ctx", "epoch")

    def __init__(self, blob: bytes, offsets: array, timestamps: array,
                 ports: array, queue: Optional[int] = None,
                 trace_ctx: Optional[tuple] = None,
                 epoch: Optional[tuple] = None) -> None:
        self.blob = blob
        self.offsets = offsets
        self.timestamps = timestamps
        self.ports = ports
        self.queue = queue
        self.trace_ctx = trace_ctx
        self.epoch = epoch

    @classmethod
    def pack(cls, mbufs: Sequence[Mbuf],
             queue: Optional[int] = None) -> "PackedBatch":
        """Pack a burst of mbufs into one flat buffer.

        ``queue`` stamps the whole batch (per-queue IPC batches are
        uniform by construction); pass ``None`` for generator output
        that has not been through RSS yet. Derived per-packet scratch
        state (``stack``, ``pkt_term_node``) is not carried — it is
        recomputed after unpacking, exactly as ``Mbuf.__reduce__``
        drops it for object pickling.
        """
        offsets = array("I", (0,))
        append_offset = offsets.append
        parts: List[bytes] = []
        total = 0
        for mbuf in mbufs:
            data = mbuf.data
            if type(data) is not bytes:
                data = bytes(data)  # memoryview-backed frame
            parts.append(data)
            total += len(data)
            append_offset(total)
        return cls(
            b"".join(parts),
            offsets,
            array("d", [m.timestamp for m in mbufs]),
            array("H", [m.port for m in mbufs]),
            queue,
        )

    @classmethod
    def from_rows(cls, rows: Sequence[tuple],
                  queue: Optional[int] = None) -> "PackedBatch":
        """Assemble a batch from ``(frame_bytes, timestamp, port)`` rows.

        The surgery constructor: drop/duplicate/reorder a batch by
        building a row list of blob slices (``memoryview`` slices of a
        source batch pass straight through) and joining them — no
        per-packet :class:`Mbuf` graph, no pickling, O(bytes) copying
        into the one new blob. The impairment layer
        (:mod:`repro.netem.impair`) rewrites packed streams this way.
        """
        offsets = array("I", (0,))
        append_offset = offsets.append
        parts: List[bytes] = []
        timestamps = array("d")
        ports = array("H")
        total = 0
        for data, ts, port in rows:
            if type(data) is not bytes:
                data = bytes(data)
            parts.append(data)
            total += len(data)
            append_offset(total)
            timestamps.append(ts)
            ports.append(port)
        return cls(b"".join(parts), offsets, timestamps, ports, queue)

    def frames(self) -> Iterator[tuple]:
        """Iterate ``(frame_view, timestamp, port)`` rows zero-copy —
        the read side of :meth:`from_rows` surgery."""
        view = memoryview(self.blob)
        offsets = self.offsets
        start = offsets[0]
        for i, ts in enumerate(self.timestamps):
            end = offsets[i + 1]
            yield view[start:end], ts, self.ports[i]
            start = end

    def unpack(self) -> List[Mbuf]:
        """Rebuild the burst as memoryview-backed :class:`Mbuf` views.

        Each mbuf's ``data`` is a zero-copy slice of the shared blob;
        header parsing (indexing and ``struct.unpack_from``) works on
        it unchanged.
        """
        view = memoryview(self.blob)
        offsets = self.offsets
        queue = self.queue
        out: List[Mbuf] = []
        append = out.append
        start = offsets[0]
        i = 0
        for ts in self.timestamps:
            end = offsets[i + 1]
            append(Mbuf(view[start:end], ts, self.ports[i], queue))
            start = end
            i += 1
        return out

    def __len__(self) -> int:
        """Packet count (feeder health accounting reads this)."""
        return len(self.timestamps)

    def _wire_fields(self):
        """The compact wire encoding: (lengths, code, ports-or-scalar).

        Frame lengths ship as u16 (u32 only if a frame exceeds 64 KiB)
        and a port array that is uniform — every batch packed after RSS
        dispatch, and most generator output — collapses to one int.
        """
        offsets = self.offsets
        n = len(self.timestamps)
        lengths = [offsets[i + 1] - offsets[i] for i in range(n)]
        code = "I" if lengths and max(lengths) > 0xFFFF else "H"
        ports = self.ports
        first = ports[0] if n else 0
        for port in ports:
            if port != first:
                return array(code, lengths), code, ports.tobytes()
        return array(code, lengths), code, first

    @property
    def nbytes(self) -> int:
        """Serialized payload size: what crosses the process boundary
        (plus a small constant pickle frame) — the numerator of the
        backend-health ``ipc_bytes_per_packet`` metric."""
        lengths, _code, ports = self._wire_fields()
        port_bytes = 0 if isinstance(ports, int) else len(ports)
        return (len(self.blob) + lengths.itemsize * len(lengths)
                + self.timestamps.itemsize * len(self.timestamps)
                + port_bytes)

    def __reduce__(self):
        # Flat buffers only; unpickling rebuilds the arrays with
        # frombytes. No per-packet object graph ever hits the pickler.
        lengths, code, ports = self._wire_fields()
        if self.trace_ctx is None and self.epoch is None:
            return (_rebuild, (self.blob, lengths.tobytes(), code,
                               self.timestamps.tobytes(), ports,
                               self.queue))
        if self.epoch is None:
            # Span-only batches keep the pre-tenancy 7-field tuple.
            return (_rebuild, (self.blob, lengths.tobytes(), code,
                               self.timestamps.tobytes(), ports,
                               self.queue, self.trace_ctx))
        return (_rebuild, (self.blob, lengths.tobytes(), code,
                           self.timestamps.tobytes(), ports, self.queue,
                           self.trace_ctx, self.epoch))

    def __repr__(self) -> str:
        return (f"PackedBatch(n={len(self)}, bytes={len(self.blob)}, "
                f"queue={self.queue})")


def pack_stream(mbufs: Iterable[Mbuf],
                batch_size: int = DEFAULT_BATCH_SIZE
                ) -> Iterator[PackedBatch]:
    """Pack an mbuf stream into successive :class:`PackedBatch` chunks."""
    batch: List[Mbuf] = []
    for mbuf in mbufs:
        batch.append(mbuf)
        if len(batch) >= batch_size:
            yield PackedBatch.pack(batch)
            batch = []
    if batch:
        yield PackedBatch.pack(batch)


def _flatten(traffic: Iterable[Union[Mbuf, PackedBatch]]) -> Iterator[Mbuf]:
    for item in traffic:
        if type(item) is PackedBatch:
            for mbuf in item.unpack():
                yield mbuf
        else:
            yield item


def iter_mbufs(traffic: Iterable[Union[Mbuf, PackedBatch]]
               ) -> Iterable[Mbuf]:
    """Normalize a traffic source to a per-mbuf iterable.

    Accepts plain mbuf iterables, :class:`PackedBatch` iterables, or a
    mix. A list containing no batches — the common benchmark shape — is
    returned as-is so the hot sequential loop iterates it directly with
    no generator frame per packet.
    """
    if type(traffic) is list:
        for item in traffic:
            if type(item) is PackedBatch:
                break
        else:
            return traffic
    return _flatten(traffic)


# ---------------------------------------------------------------------------
# shared-memory slot codec (repro.core.shm)
#
# The same wire fields __reduce__ ships through a pickled queue —
# frames blob, u16/u32 lengths, f64 timestamps, scalar-or-column ports,
# trace context — laid out in place inside a pre-allocated shared-memory
# slot: header, lengths, timestamps, ports, blob. The feeder writes a
# slot with one of the two writers below; the worker maps it back with
# slot_read, whose blob is a zero-copy memoryview of the slot. Epoch
# bumps never ride slots (they use the transport's ordered control
# channel), so the header carries no epoch field.
# ---------------------------------------------------------------------------

def slot_write_mbufs(buf, offset: int, limit: int, mbufs: Sequence[Mbuf],
                     queue: Optional[int],
                     trace_ctx: Optional[tuple] = None,
                     seq: int = -1) -> int:
    """Pack a burst of mbufs straight into a shared-memory slot.

    The unsupervised hot path: frames are copied from the mbufs into
    the slot exactly once — no intermediate blob join, no pickle.
    Returns the bytes written, or -1 when the burst does not fit in
    ``limit`` bytes (or exceeds the descriptor's u16 row field); the
    caller falls back to the control channel then.
    """
    n = len(mbufs)
    lengths = [len(m.data) for m in mbufs]
    blob_len = sum(lengths)
    wide = bool(lengths) and max(lengths) > 0xFFFF
    item = 4 if wide else 2
    flags = _F_WIDE if wide else 0
    port0 = mbufs[0].port if n else 0
    scalar = True
    for m in mbufs:
        if m.port != port0:
            scalar = False
            break
    if scalar:
        flags |= _F_SCALAR_PORT
    need = (SLOT_HEADER_BYTES + n * item + n * 8
            + (0 if scalar else n * 2) + blob_len)
    if need > limit or n > 0xFFFF:
        return -1
    tq = ts_ = 0
    if trace_ctx is not None:
        flags |= _F_TRACE
        tq, ts_ = trace_ctx
    _SLOT_HEADER.pack_into(buf, offset, n, blob_len, seq,
                           -1 if queue is None else queue, flags,
                           port0 if scalar else 0, tq, ts_)
    pos = offset + SLOT_HEADER_BYTES
    end = pos + n * item
    buf[pos:end] = array("I" if wide else "H", lengths).tobytes()
    pos = end
    end = pos + n * 8
    buf[pos:end] = array("d", [m.timestamp for m in mbufs]).tobytes()
    pos = end
    if not scalar:
        end = pos + n * 2
        buf[pos:end] = array("H", [m.port for m in mbufs]).tobytes()
        pos = end
    for m, length in zip(mbufs, lengths):
        end = pos + length
        buf[pos:end] = m.data
        pos = end
    return need


def slot_write_packed(buf, offset: int, limit: int, batch: PackedBatch,
                      seq: int = -1) -> int:
    """Write an already-packed batch into a shared-memory slot.

    The supervised path: the feeder packs once (the redo log keeps the
    slot-independent ``PackedBatch``), then copies the same wire fields
    here — so a post-crash replay rewrites the identical slot contents
    under the batch's original seq. Returns bytes written or -1 when
    the batch does not fit (caller falls back to the control channel).
    """
    lengths, code, ports = batch._wire_fields()
    n = len(batch.timestamps)
    blob = batch.blob
    scalar = isinstance(ports, int)
    flags = (_F_WIDE if code == "I" else 0) \
        | (_F_SCALAR_PORT if scalar else 0)
    need = (SLOT_HEADER_BYTES + n * lengths.itemsize + n * 8
            + (0 if scalar else n * 2) + len(blob))
    if need > limit or n > 0xFFFF:
        return -1
    trace_ctx = batch.trace_ctx
    tq = ts_ = 0
    if trace_ctx is not None:
        flags |= _F_TRACE
        tq, ts_ = trace_ctx
    queue = batch.queue
    _SLOT_HEADER.pack_into(buf, offset, n, len(blob), seq,
                           -1 if queue is None else queue, flags,
                           ports if scalar else 0, tq, ts_)
    pos = offset + SLOT_HEADER_BYTES
    end = pos + n * lengths.itemsize
    buf[pos:end] = lengths.tobytes()
    pos = end
    end = pos + n * 8
    buf[pos:end] = batch.timestamps.tobytes()
    pos = end
    if not scalar:
        end = pos + n * 2
        buf[pos:end] = ports
        pos = end
    end = pos + len(blob)
    buf[pos:end] = blob
    return need


def slot_read(buf, offset: int) -> Tuple[PackedBatch, int]:
    """Map a slot back to a ``PackedBatch`` (worker side).

    The small lengths/timestamps/ports arrays are copied out (they are
    rebuilt as ``array`` objects anyway); the frames blob stays a
    zero-copy ``memoryview`` of the slot, valid until the worker
    retires the descriptor and the slot is recycled — the same
    lifetime discipline the pipeline already honors for unpacked batch
    views (values that outlive the packet are ``bytes()``-normalized
    at the boundary). Returns ``(batch, seq)``; ``seq`` is -1 for
    unsupervised batches.
    """
    (n, blob_len, seq, queue, flags, port0, tq,
     ts_) = _SLOT_HEADER.unpack_from(buf, offset)
    pos = offset + SLOT_HEADER_BYTES
    lens = array("I" if flags & _F_WIDE else "H")
    end = pos + n * lens.itemsize
    lens.frombytes(buf[pos:end])
    pos = end
    ts = array("d")
    end = pos + n * 8
    ts.frombytes(buf[pos:end])
    pos = end
    if flags & _F_SCALAR_PORT:
        ports = array("H", (port0,)) * n
    else:
        ports = array("H")
        end = pos + n * 2
        ports.frombytes(buf[pos:end])
        pos = end
    offsets = array("I", chain((0,), accumulate(lens)))
    batch = PackedBatch(buf[pos:pos + blob_len], offsets, ts, ports,
                        None if queue < 0 else queue)
    if flags & _F_TRACE:
        batch.trace_ctx = (tq, ts_)
    return batch, seq
