"""Packet construction with correct lengths and checksums.

The traffic generators synthesize real frames with these helpers, so the
parsing path is exercised against byte-accurate packets (including IPv4
header checksums and TCP/UDP pseudo-header checksums).
"""

from __future__ import annotations

import ipaddress
import struct
from typing import Optional, Union

from repro.packet.ethernet import ETHERTYPE_IPV4, ETHERTYPE_IPV6
from repro.packet.ipv4 import PROTO_TCP, PROTO_UDP

IPAddr = Union[str, ipaddress.IPv4Address, ipaddress.IPv6Address]

_DEFAULT_SRC_MAC = bytes.fromhex("02aabbccdd01")
_DEFAULT_DST_MAC = bytes.fromhex("02aabbccdd02")


#: Per-word-count Struct cache for :func:`checksum16` — the traffic
#: generators checksum every synthesized segment, and compiling
#: ``!{n}H`` anew per call dominates the builder profile. The key space
#: is the set of distinct frame sizes the generators emit (small).
_CHECKSUM_STRUCTS: dict = {}


def checksum16(data: bytes) -> int:
    """RFC 1071 ones'-complement 16-bit checksum."""
    if len(data) % 2:
        data += b"\x00"
    words = len(data) // 2
    unpacker = _CHECKSUM_STRUCTS.get(words)
    if unpacker is None:
        unpacker = _CHECKSUM_STRUCTS[words] = struct.Struct(f"!{words}H")
    total = sum(unpacker.unpack(data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _ip_bytes(addr: IPAddr) -> bytes:
    return ipaddress.ip_address(addr).packed


def build_ethernet(
    payload: bytes,
    ethertype: int,
    src_mac: bytes = _DEFAULT_SRC_MAC,
    dst_mac: bytes = _DEFAULT_DST_MAC,
) -> bytes:
    """Wrap ``payload`` in an Ethernet II header."""
    return dst_mac + src_mac + struct.pack("!H", ethertype) + payload


def build_ipv4(
    payload: bytes,
    src: IPAddr,
    dst: IPAddr,
    protocol: int,
    ttl: int = 64,
    identification: int = 0,
    dscp: int = 0,
) -> bytes:
    """Build an IPv4 header (no options) with a valid header checksum."""
    total_length = 20 + len(payload)
    header = struct.pack(
        "!BBHHHBBH4s4s",
        (4 << 4) | 5,
        dscp << 2,
        total_length,
        identification,
        0,  # flags/fragment offset
        ttl,
        protocol,
        0,  # checksum placeholder
        _ip_bytes(src),
        _ip_bytes(dst),
    )
    csum = checksum16(header)
    return header[:10] + struct.pack("!H", csum) + header[12:] + payload


def build_ipv6(
    payload: bytes,
    src: IPAddr,
    dst: IPAddr,
    next_header: int,
    hop_limit: int = 64,
    flow_label: int = 0,
) -> bytes:
    """Build a fixed IPv6 header (no extension headers)."""
    first_word = (6 << 28) | (flow_label & 0xFFFFF)
    header = struct.pack(
        "!IHBB16s16s",
        first_word,
        len(payload),
        next_header,
        hop_limit,
        _ip_bytes(src),
        _ip_bytes(dst),
    )
    return header + payload


def _pseudo_header(src: IPAddr, dst: IPAddr, protocol: int, length: int) -> bytes:
    src_b, dst_b = _ip_bytes(src), _ip_bytes(dst)
    if len(src_b) == 4:
        return src_b + dst_b + struct.pack("!BBH", 0, protocol, length)
    return src_b + dst_b + struct.pack("!IHBB", length, 0, 0, protocol)


def build_tcp(
    payload: bytes,
    src: IPAddr,
    dst: IPAddr,
    src_port: int,
    dst_port: int,
    seq: int = 0,
    ack: int = 0,
    flags: int = 0x10,
    window: int = 65535,
) -> bytes:
    """Build a TCP segment with a valid pseudo-header checksum."""
    header = struct.pack(
        "!HHIIBBHHH",
        src_port,
        dst_port,
        seq & 0xFFFFFFFF,
        ack & 0xFFFFFFFF,
        5 << 4,
        flags,
        window,
        0,  # checksum placeholder
        0,  # urgent pointer
    )
    segment = header + payload
    csum = checksum16(_pseudo_header(src, dst, PROTO_TCP, len(segment)) + segment)
    return segment[:16] + struct.pack("!H", csum) + segment[18:]


def build_udp(
    payload: bytes,
    src: IPAddr,
    dst: IPAddr,
    src_port: int,
    dst_port: int,
) -> bytes:
    """Build a UDP datagram with a valid pseudo-header checksum."""
    length = 8 + len(payload)
    header = struct.pack("!HHHH", src_port, dst_port, length, 0)
    datagram = header + payload
    csum = checksum16(_pseudo_header(src, dst, PROTO_UDP, length) + datagram)
    if csum == 0:
        csum = 0xFFFF
    return datagram[:6] + struct.pack("!H", csum) + datagram[8:]


def _build_l3(payload: bytes, src: IPAddr, dst: IPAddr, protocol: int,
              ttl: int) -> bytes:
    src_ip = ipaddress.ip_address(src)
    if src_ip.version == 4:
        packet = build_ipv4(payload, src, dst, protocol, ttl=ttl)
        return build_ethernet(packet, ETHERTYPE_IPV4)
    packet = build_ipv6(payload, src, dst, protocol, hop_limit=ttl)
    return build_ethernet(packet, ETHERTYPE_IPV6)


def build_tcp_packet(
    src: IPAddr,
    dst: IPAddr,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    seq: int = 0,
    ack: int = 0,
    flags: int = 0x10,
    ttl: int = 64,
    window: int = 65535,
) -> bytes:
    """Build a full Ethernet/IP/TCP frame (IPv4 or IPv6 by address type)."""
    segment = build_tcp(payload, src, dst, src_port, dst_port,
                        seq=seq, ack=ack, flags=flags, window=window)
    return _build_l3(segment, src, dst, PROTO_TCP, ttl)


def build_icmp_echo(
    src: IPAddr,
    dst: IPAddr,
    identifier: int = 1,
    sequence: int = 1,
    reply: bool = False,
    payload: bytes = b"\x00" * 32,
    ttl: int = 64,
) -> bytes:
    """Build a full Ethernet/IPv4/ICMP echo request or reply frame."""
    icmp_type = 0 if reply else 8
    header = struct.pack("!BBHHH", icmp_type, 0, 0, identifier, sequence)
    message = header + payload
    csum = checksum16(message)
    message = message[:2] + struct.pack("!H", csum) + message[4:]
    packet = build_ipv4(message, src, dst, 1, ttl=ttl)
    return build_ethernet(packet, ETHERTYPE_IPV4)


def build_udp_packet(
    src: IPAddr,
    dst: IPAddr,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    ttl: int = 64,
) -> bytes:
    """Build a full Ethernet/IP/UDP frame (IPv4 or IPv6 by address type)."""
    datagram = build_udp(payload, src, dst, src_port, dst_port)
    return _build_l3(datagram, src, dst, PROTO_UDP, ttl)
