"""Common machinery for lazily parsed protocol header views.

Each header class is a lightweight view over an :class:`~repro.packet.mbuf.Mbuf`
at a fixed byte offset. Construction validates only that enough bytes are
present for the fixed header; field accessors decode on demand with
``struct.unpack_from`` so untouched fields cost nothing — the Python
analogue of Retina parsing headers in place inside the mbuf.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.errors import PacketParseError
from repro.packet.mbuf import Mbuf

_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")


class HeaderView:
    """A protocol header parsed in place at ``offset`` within an mbuf."""

    __slots__ = ("mbuf", "offset")

    #: Minimum number of bytes the fixed header occupies.
    MIN_LEN = 0

    def __init__(self, mbuf: Mbuf, offset: int) -> None:
        if offset + self.MIN_LEN > len(mbuf.data):
            raise PacketParseError(
                f"{type(self).__name__}: need {self.MIN_LEN} bytes at "
                f"offset {offset}, frame has {len(mbuf.data)}"
            )
        self.mbuf = mbuf
        self.offset = offset

    # -- PacketParsable-style interface ---------------------------------
    def header_len(self) -> int:
        """Length of this header in bytes (including options)."""
        raise NotImplementedError

    def next_protocol(self) -> Optional[int]:
        """EtherType or IANA protocol number of the encapsulated layer."""
        raise NotImplementedError

    def payload_offset(self) -> int:
        """Offset from the start of the frame to this header's payload."""
        return self.offset + self.header_len()

    def payload(self) -> memoryview:
        """Zero-copy view of the bytes following this header."""
        return memoryview(self.mbuf.data)[self.payload_offset():]

    # -- decoding helpers ------------------------------------------------
    def _u8(self, rel: int) -> int:
        # Indexing bytes/memoryview yields the int directly; going
        # through struct would cost a C-call plus tuple per field.
        return self.mbuf.data[self.offset + rel]

    def _u16(self, rel: int) -> int:
        return _U16.unpack_from(self.mbuf.data, self.offset + rel)[0]

    def _u32(self, rel: int) -> int:
        return _U32.unpack_from(self.mbuf.data, self.offset + rel)[0]

    def _bytes(self, rel: int, length: int) -> bytes:
        start = self.offset + rel
        # ``bytes()`` is a no-op for bytes-backed mbufs and normalizes
        # memoryview-backed ones (flat-buffer IPC) so callers can hash,
        # compare, and pickle the result.
        return bytes(self.mbuf.data[start:start + length])
