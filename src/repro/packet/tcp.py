"""TCP header view."""

from __future__ import annotations

import enum
from typing import Optional, Union

from repro.errors import PacketParseError
from repro.packet.base import HeaderView
from repro.packet.ipv4 import Ipv4, PROTO_TCP
from repro.packet.ipv6 import Ipv6
from repro.packet.mbuf import Mbuf


class TcpFlags(enum.IntFlag):
    """TCP flag bits (low byte of the flags field)."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80


class Tcp(HeaderView):
    """TCP header parsed in place; options covered by the data offset."""

    __slots__ = ("_hdr_len",)

    MIN_LEN = 20

    def __init__(self, mbuf: Mbuf, offset: int) -> None:
        super().__init__(mbuf, offset)
        doff = (self._u8(12) >> 4) * 4
        if doff < 20 or offset + doff > len(mbuf.data):
            raise PacketParseError(f"Tcp: bad data offset {doff}")
        self._hdr_len = doff

    @classmethod
    def parse_from(cls, ip: Union[Ipv4, Ipv6]) -> "Tcp":
        """Parse a TCP header from an IP packet's payload."""
        if ip.next_protocol() != PROTO_TCP:
            raise PacketParseError("Tcp: IP protocol is not 6")
        return cls(ip.mbuf, ip.payload_offset())

    # -- fields ----------------------------------------------------------
    def src_port(self) -> int:
        return self._u16(0)

    def dst_port(self) -> int:
        return self._u16(2)

    def seq_no(self) -> int:
        return self._u32(4)

    def ack_no(self) -> int:
        return self._u32(8)

    def flags(self) -> TcpFlags:
        return TcpFlags(self._u8(13))

    def flags_raw(self) -> int:
        """Flag bits as a plain int (hot path: no IntFlag construction)."""
        return self._u8(13)

    def window(self) -> int:
        return self._u16(14)

    def checksum(self) -> int:
        return self._u16(16)

    def urgent_pointer(self) -> int:
        return self._u16(18)

    def synack(self) -> bool:
        return self.flags() & (TcpFlags.SYN | TcpFlags.ACK) == (
            TcpFlags.SYN | TcpFlags.ACK
        )

    # -- PacketParsable ----------------------------------------------------
    def header_len(self) -> int:
        return self._hdr_len

    def next_protocol(self) -> Optional[int]:
        return None
