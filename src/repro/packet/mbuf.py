"""Message buffer: the unit of packet data flowing through the pipeline.

An :class:`Mbuf` is the reproduction's analogue of a DPDK ``rte_mbuf``:
immutable frame bytes plus receive-side metadata (timestamp, port,
queue). Parsed header views borrow from the mbuf rather than copying,
mirroring Retina's zero-copy discipline.
"""

from __future__ import annotations

from typing import Optional


class Mbuf:
    """Raw frame bytes plus receive metadata.

    Attributes:
        data: The raw Ethernet frame bytes.
        timestamp: Receive time in (virtual) seconds.
        port: Index of the NIC port the frame arrived on.
        queue: RSS receive queue the NIC dispatched the frame to, or
            ``None`` before RSS assignment.
        pkt_term_node: Predicate-trie node id recorded by the software
            packet filter when a pattern matches non-terminally. Later
            filter layers branch directly from this node instead of
            re-walking the trie (Section 4.1 of the paper).
        stack: Memoized :class:`~repro.packet.stack.PacketStack` set by
            the first :func:`~repro.packet.stack.parse_stack` call, so
            RSS dispatch, the software filters, and conntrack all read
            the same parse-once header views instead of re-decoding.
    """

    __slots__ = ("data", "timestamp", "port", "queue", "pkt_term_node",
                 "stack")

    def __init__(
        self,
        data: bytes,
        timestamp: float = 0.0,
        port: int = 0,
        queue: Optional[int] = None,
    ) -> None:
        self.data = data
        self.timestamp = timestamp
        self.port = port
        self.queue = queue
        self.pkt_term_node: Optional[int] = None
        self.stack = None

    def __len__(self) -> int:
        return len(self.data)

    def __reduce__(self):
        # Compact pickling for the parallel backend's IPC batches:
        # rebuild from constructor args instead of a per-slot state
        # dict. ``pkt_term_node`` and ``stack`` are derived scratch
        # state that is only set after dispatch, so they are
        # deliberately not carried. ``bytes()`` normalizes
        # memoryview-backed frames (which cannot pickle) and is a no-op
        # for ``bytes`` data.
        return (Mbuf, (bytes(self.data), self.timestamp, self.port,
                       self.queue))

    def __repr__(self) -> str:
        return (
            f"Mbuf(len={len(self.data)}, ts={self.timestamp:.6f}, "
            f"port={self.port}, queue={self.queue})"
        )
