"""IPv4 header view."""

from __future__ import annotations

import ipaddress
from typing import Optional

from repro.errors import PacketParseError
from repro.packet.base import HeaderView
from repro.packet.ethernet import Ethernet, ETHERTYPE_IPV4
from repro.packet.mbuf import Mbuf

PROTO_TCP = 6
PROTO_UDP = 17
PROTO_ICMP = 1


class Ipv4(HeaderView):
    """IPv4 header parsed in place, options included in header length."""

    __slots__ = ("_hdr_len",)

    MIN_LEN = 20

    def __init__(self, mbuf: Mbuf, offset: int) -> None:
        super().__init__(mbuf, offset)
        first = self._u8(0)
        if first >> 4 != 4:
            raise PacketParseError("Ipv4: version field is not 4")
        ihl = (first & 0x0F) * 4
        if ihl < 20 or offset + ihl > len(mbuf.data):
            raise PacketParseError(f"Ipv4: bad IHL {ihl}")
        self._hdr_len = ihl

    @classmethod
    def parse_from(cls, eth: Ethernet) -> "Ipv4":
        """Parse an IPv4 header from an Ethernet frame's payload."""
        if eth.next_protocol() != ETHERTYPE_IPV4:
            raise PacketParseError("Ipv4: ethertype is not 0x0800")
        return cls(eth.mbuf, eth.payload_offset())

    # -- fields ----------------------------------------------------------
    def version(self) -> int:
        return self._u8(0) >> 4

    def ihl(self) -> int:
        return self._u8(0) & 0x0F

    def dscp(self) -> int:
        return self._u8(1) >> 2

    def ecn(self) -> int:
        return self._u8(1) & 0x03

    def total_length(self) -> int:
        return self._u16(2)

    def identification(self) -> int:
        return self._u16(4)

    def flags(self) -> int:
        return self._u16(6) >> 13

    def fragment_offset(self) -> int:
        return self._u16(6) & 0x1FFF

    def ttl(self) -> int:
        return self._u8(8)

    def protocol(self) -> int:
        return self._u8(9)

    def checksum(self) -> int:
        return self._u16(10)

    def src_addr(self) -> ipaddress.IPv4Address:
        return ipaddress.IPv4Address(self._bytes(12, 4))

    def dst_addr(self) -> ipaddress.IPv4Address:
        return ipaddress.IPv4Address(self._bytes(16, 4))

    def src_addr_u32(self) -> int:
        return self._u32(12)

    def dst_addr_u32(self) -> int:
        return self._u32(16)

    def src_addr_bytes(self) -> bytes:
        """Raw 4-byte source address (hot path: no ipaddress object)."""
        return self._bytes(12, 4)

    def dst_addr_bytes(self) -> bytes:
        """Raw 4-byte destination address (hot path: no ipaddress object)."""
        return self._bytes(16, 4)

    # -- PacketParsable ----------------------------------------------------
    def header_len(self) -> int:
        return self._hdr_len

    def next_protocol(self) -> Optional[int]:
        return self.protocol()
