"""Byte-level packet substrate.

This package provides the packet representation used throughout the
framework: an :class:`~repro.packet.mbuf.Mbuf` wrapping raw frame bytes
plus receive metadata, and lazily parsed protocol header views for
Ethernet, IPv4, IPv6, TCP, and UDP.

The parsing model mirrors Retina's ``PacketParsable`` trait: each header
type knows how to parse itself from the payload of an encapsulating
header, reports its own header length, and exposes the IANA protocol
number (or EtherType) of the next layer.
"""

from repro.packet.mbuf import Mbuf
from repro.packet.batch import PackedBatch, iter_mbufs, pack_stream
from repro.packet.ethernet import Ethernet, ETHERTYPE_IPV4, ETHERTYPE_IPV6
from repro.packet.icmp import Icmp
from repro.packet.ipv4 import Ipv4
from repro.packet.ipv6 import Ipv6
from repro.packet.tcp import Tcp, TcpFlags
from repro.packet.udp import Udp
from repro.packet.stack import PacketStack, parse_stack
from repro.packet.builder import (
    build_ethernet,
    build_icmp_echo,
    build_ipv4,
    build_ipv6,
    build_tcp,
    build_udp,
    build_tcp_packet,
    build_udp_packet,
    checksum16,
)

__all__ = [
    "Mbuf",
    "PackedBatch",
    "iter_mbufs",
    "pack_stream",
    "PacketStack",
    "parse_stack",
    "Ethernet",
    "Icmp",
    "Ipv4",
    "Ipv6",
    "Tcp",
    "TcpFlags",
    "Udp",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_IPV6",
    "build_ethernet",
    "build_icmp_echo",
    "build_ipv4",
    "build_ipv6",
    "build_tcp",
    "build_udp",
    "build_tcp_packet",
    "build_udp_packet",
    "checksum16",
]
