"""Columnar bulk decode of packet batches (the Retina data-path idea).

Retina amortizes per-packet work by operating on *bursts*: headers are
parsed in place and the compiled subscription touches each field once.
The Python analogue of "one instruction, many packets" is one *C call*,
many packets: this module gathers the first 68 bytes of every frame in
a batch into one contiguous buffer and decodes all fixed-offset
Ethernet/IP/TCP/UDP fields with two ``struct.iter_unpack`` passes (one
per IP version's layout) — a handful of bulk operations per 256-packet
burst instead of dozens of attribute lookups and ``unpack_from`` calls
per packet.

The decoded :class:`ColumnarBatch` holds *columns* (one sequence per
field, indexed by packet position) plus a ``fast`` eligibility mask.
A row is fast-path eligible only when the fixed-offset decode is
provably identical to the layered :func:`~repro.packet.stack.parse_stack`
walk: untagged Ethernet II carrying either IPv4 with no options
(``ver_ihl == 0x45``, not a later fragment) or IPv6 with no extension
headers, plus a TCP/UDP header that fits inside the frame. Everything
else — VLAN/QinQ tags, ICMP, IPv4 options, IPv6 extension chains,
truncated or fragmented frames — keeps ``fast[i] == False`` and is
handled by the existing per-packet slow path, so the columnar layer
never changes observable behavior (property-tested in
``tests/test_columnar_parity``).
"""

from __future__ import annotations

import struct
from itertools import islice
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.packet.mbuf import Mbuf

#: Fused fixed-offset layout for untagged-Ethernet / IPv4-no-options
#: frames (the IPv6 interpretation of the same bytes is `_PREFIX6`):
#:
#: ==========  ======  =============================
#: offset      fmt     field
#: ==========  ======  =============================
#: 0..11       12x     MAC addresses (skipped)
#: 12          H       EtherType
#: 14          B       IPv4 version/IHL byte
#: 16          H       IPv4 total length
#: 20          H       IPv4 flags/fragment offset
#: 23          B       IPv4 protocol
#: 26          4s      IPv4 source address
#: 30          4s      IPv4 destination address
#: 34          H       TCP/UDP source port
#: 36          H       TCP/UDP destination port
#: 38          I       TCP sequence number
#: 46          B       TCP data-offset byte
#: 47          B       TCP flags byte
#: 48..67      20x     (IPv6 tail; unused here)
#: ==========  ======  =============================
_PREFIX4 = struct.Struct("!12xHBxH2xHxB2x4s4sHHI4xBB20x")

#: The same 68 gathered bytes read as untagged Ethernet + extensionless
#: IPv6 + TCP/UDP:
#:
#: ==========  ======  =============================
#: offset      fmt     field
#: ==========  ======  =============================
#: 18          H       IPv6 payload length
#: 20          B       IPv6 next header
#: 22          16s     IPv6 source address
#: 38          16s     IPv6 destination address
#: 54          H       TCP/UDP source port
#: 56          H       TCP/UDP destination port
#: 58          I       TCP sequence number
#: 66          B       TCP data-offset byte
#: 67          B       TCP flags byte
#: ==========  ======  =============================
#:
#: (EtherType and the IP version nibble come from the `_PREFIX4` pass.)
_PREFIX6 = struct.Struct("!18xHBx16s16sHHI4xBB")

assert _PREFIX4.size == _PREFIX6.size == 68
_WIDTH = _PREFIX4.size

#: Zero padding for frames shorter than the gathered prefix; the padded
#: tail decodes to garbage, but such rows never pass the ``fast`` gate.
_PAD = bytes(_WIDTH)

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD
_VER_IHL_PLAIN = 0x45  # IPv4, 20-byte header, no options
_FRAG_OFFSET_MASK = 0x1FFF
#: IPv6 next-header values the fixed-offset decode understands; ext
#: headers (hop-by-hop/routing/dest-opts/fragment) force the slow path.
_V6_TCP = 6
_V6_UDP = 17


class ColumnarBatch:
    """Decoded field columns for one burst of frames.

    Columns are positional: index ``i`` of every column describes the
    ``i``-th mbuf of the burst the batch was decoded from. TCP-specific
    columns (``tcp_seq``, ``tcp_flags``) carry meaningless values for
    non-TCP rows; consumers must gate on ``proto``. Address columns
    hold raw wire bytes — 4 per row for IPv4, 16 for IPv6 — and
    ``ip_total_len`` is only meaningful on IPv4 rows; all columns other
    than ``wire``/``fast``/``payload_len``/``ethertype`` are only
    meaningful where ``fast[i]`` is True.
    """

    __slots__ = ("n", "wire", "fast", "ethertype", "proto", "src_ip",
                 "dst_ip", "src_port", "dst_port", "payload_len",
                 "tcp_flags", "tcp_seq", "ip_total_len")

    def __init__(self, n: int, wire: Sequence[int], fast: Sequence[bool],
                 ethertype: Sequence[int], proto: Sequence[int],
                 src_ip: Sequence[bytes], dst_ip: Sequence[bytes],
                 src_port: Sequence[int], dst_port: Sequence[int],
                 payload_len: Sequence[int], tcp_flags: Sequence[int],
                 tcp_seq: Sequence[int],
                 ip_total_len: Sequence[int]) -> None:
        self.n = n
        self.wire = wire
        self.fast = fast
        self.ethertype = ethertype
        self.proto = proto
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload_len = payload_len
        self.tcp_flags = tcp_flags
        self.tcp_seq = tcp_seq
        self.ip_total_len = ip_total_len


_EMPTY: Tuple = ()


def decode_mbufs(mbufs: Sequence[Mbuf]) -> ColumnarBatch:
    """Bulk-decode a burst of mbufs into field columns.

    The gather loop is the only unconditional per-packet Python in the
    decode: one slice (zero-copy for memoryview-backed frames) per
    packet into a single ``b"".join``, then two ``iter_unpack`` passes
    emit every fixed-offset field of every frame under both IP-version
    layouts and ``zip(*...)`` transposes rows into columns. The
    eligibility loop then splices the IPv6 interpretation into the
    shared columns for rows whose EtherType says so.
    """
    n = len(mbufs)
    if n == 0:
        e = _EMPTY
        return ColumnarBatch(0, e, e, e, e, e, e, e, e, e, e, e, e)
    pad = _PAD
    width = _WIDTH
    parts: List[bytes] = []
    append = parts.append
    wire: List[int] = []
    wire_append = wire.append
    for m in mbufs:
        d = m.data
        ln = len(d)
        wire_append(ln)
        if ln >= width:
            append(d[:width])
        else:
            append(bytes(d) + pad[:width - ln])
    buf = b"".join(parts)
    (ethertype, ver_ihl, ip_total_len, flags_frag, proto4, src_ip4,
     dst_ip4, src_port4, dst_port4, tcp_seq4, doff4, tcp_flags4) = zip(
        *_PREFIX4.iter_unpack(buf))
    (v6_plen, v6_nh, src_ip6, dst_ip6, src_port6, dst_port6, tcp_seq6,
     doff6, tcp_flags6) = zip(*_PREFIX6.iter_unpack(buf))

    # Eligibility + payload length + column splice: mirrors
    # parse_stack/l4_payload_len exactly for the frames it accepts (see
    # module docstring). IPv4 rows read the already-transposed tuples;
    # IPv6 fast rows overwrite their slots with the v6 interpretation.
    fast = [False] * n
    payload_len = [0] * n
    proto: List[int] = list(proto4)
    src_ip: List[bytes] = list(src_ip4)
    dst_ip: List[bytes] = list(dst_ip4)
    src_port: List[int] = list(src_port4)
    dst_port: List[int] = list(dst_port4)
    tcp_seq: List[int] = list(tcp_seq4)
    tcp_flags: List[int] = list(tcp_flags4)
    for i in range(n):
        et = ethertype[i]
        w = wire[i]
        if et == ETHERTYPE_IPV4:
            if ver_ihl[i] != _VER_IHL_PLAIN or \
                    flags_frag[i] & _FRAG_OFFSET_MASK:
                continue
            p = proto4[i]
            if p == 6:
                if w < 54:
                    continue
                hdr = (doff4[i] >> 4) * 4
                if hdr < 20 or 34 + hdr > w:
                    continue
                start = 34 + hdr
            elif p == 17:
                if w < 42:
                    continue
                start = 42
            else:
                continue
            end = 14 + ip_total_len[i]
        elif et == ETHERTYPE_IPV6:
            if ver_ihl[i] >> 4 != 6:
                continue
            p = v6_nh[i]
            if p == _V6_TCP:
                if w < 74:
                    continue
                hdr = (doff6[i] >> 4) * 4
                if hdr < 20 or 54 + hdr > w:
                    continue
                start = 54 + hdr
            elif p == _V6_UDP:
                if w < 62:
                    continue
                start = 62
            else:
                continue
            proto[i] = p
            src_ip[i] = src_ip6[i]
            dst_ip[i] = dst_ip6[i]
            src_port[i] = src_port6[i]
            dst_port[i] = dst_port6[i]
            tcp_seq[i] = tcp_seq6[i]
            tcp_flags[i] = tcp_flags6[i]
            end = 54 + v6_plen[i]
        else:
            continue
        fast[i] = True
        if end > w:
            end = w
        if end > start:
            payload_len[i] = end - start
    return ColumnarBatch(n, wire, fast, ethertype, proto, src_ip, dst_ip,
                         src_port, dst_port, payload_len, tcp_flags,
                         tcp_seq, ip_total_len)


def columnar_dispatch(mbufs: Iterable[Mbuf], nics: Sequence,
                      chunk_size: int = 256
                      ) -> Iterator[Tuple[Mbuf, object]]:
    """Chunked NIC ingress: decode a burst, dispatch packets one by one.

    Yields ``(mbuf, queue)`` exactly as the legacy per-packet
    ``nic.receive`` loop would produce them, but header decode is
    amortized over ``chunk_size`` packets via :func:`decode_mbufs` and
    each NIC consumes the columns through ``receive_columnar``. The
    generator is lazy per packet — ``receive_columnar`` runs when the
    consumer pulls the next item — so per-packet bookkeeping
    interleaves with NIC state updates in the same order as the scalar
    loop (monitor snapshots and failure injection observe identical
    intermediate states).
    """
    num_nics = len(nics)
    nic0 = nics[0]
    it = iter(mbufs)
    while True:
        chunk = list(islice(it, chunk_size))
        if not chunk:
            return
        cols = decode_mbufs(chunk)
        i = 0
        for m in chunk:
            port = m.port
            nic = nics[port] if 0 < port < num_nics else nic0
            yield m, nic.receive_columnar(m, cols, i)
            i += 1
