"""UDP header view."""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import PacketParseError
from repro.packet.base import HeaderView
from repro.packet.ipv4 import Ipv4, PROTO_UDP
from repro.packet.ipv6 import Ipv6


class Udp(HeaderView):
    """UDP header parsed in place."""

    __slots__ = ()

    MIN_LEN = 8

    @classmethod
    def parse_from(cls, ip: Union[Ipv4, Ipv6]) -> "Udp":
        """Parse a UDP header from an IP packet's payload."""
        if ip.next_protocol() != PROTO_UDP:
            raise PacketParseError("Udp: IP protocol is not 17")
        return cls(ip.mbuf, ip.payload_offset())

    def src_port(self) -> int:
        return self._u16(0)

    def dst_port(self) -> int:
        return self._u16(2)

    def length(self) -> int:
        return self._u16(4)

    def checksum(self) -> int:
        return self._u16(6)

    def header_len(self) -> int:
        return 8

    def next_protocol(self) -> Optional[int]:
        return None
