"""Parse-once decoding of a full frame into a layered view.

:func:`parse_stack` walks Ethernet → IP → transport once and memoizes
the resulting :class:`PacketStack` on ``mbuf.stack``. Every later
consumer — RSS dispatch, the software packet filter (generated and
interpreted), the connection filter, conntrack keying — reads the same
decoded fields instead of re-running ``struct.unpack_from`` per layer.
The stack also carries per-packet caches for the canonical 5-tuple and
the symmetric-RSS input bytes so those are computed at most once.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import PacketParseError
from repro.packet.ethernet import Ethernet, ETHERTYPE_IPV4, ETHERTYPE_IPV6
from repro.packet.icmp import Icmp
from repro.packet.ipv4 import Ipv4, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.packet.ipv6 import Ipv6
from repro.packet.mbuf import Mbuf
from repro.packet.tcp import Tcp
from repro.packet.udp import Udp


class PacketStack:
    """Parsed layers of a single frame; absent layers are ``None``.

    ``ipv4``/``ipv6`` alias ``ip`` split by version so filter closures
    can branch on protocol without calling ``version()`` per packet.
    ``_five_tuple``/``_rss_input`` are lazily filled caches owned by
    :mod:`repro.conntrack.five_tuple` and :mod:`repro.nic.rss`.
    """

    __slots__ = ("mbuf", "eth", "ip", "ipv4", "ipv6", "tcp", "udp", "icmp",
                 "_five_tuple", "_rss_input")

    def __init__(self, mbuf: Mbuf) -> None:
        self.mbuf = mbuf
        self.eth: Optional[Ethernet] = None
        self.ip: Optional[Union[Ipv4, Ipv6]] = None
        self.ipv4: Optional[Ipv4] = None
        self.ipv6: Optional[Ipv6] = None
        self.tcp: Optional[Tcp] = None
        self.udp: Optional[Udp] = None
        self.icmp: Optional[Icmp] = None
        self._five_tuple = None
        self._rss_input: Optional[bytes] = None

    @property
    def transport(self) -> Optional[Union[Tcp, Udp]]:
        return self.tcp if self.tcp is not None else self.udp

    def l4_payload(self) -> bytes:
        """Bytes above the transport layer, honoring the IP total length."""
        transport = self.transport
        if transport is None or self.ip is None:
            return b""
        start = transport.payload_offset()
        if self.ipv4 is not None:
            end = self.ipv4.offset + self.ipv4.total_length()
        else:
            end = self.ip.payload_offset() + self.ip.payload_length()
        data = self.mbuf.data
        end = min(end, len(data))
        # bytes() is a no-op for bytes-backed mbufs and normalizes
        # memoryview-backed ones from the flat-buffer IPC path.
        return bytes(data[start:end])

    def l4_payload_len(self) -> int:
        """Length of :meth:`l4_payload` without materializing the bytes.

        The hot path needs only the payload *size* for connection
        accounting; the bytes themselves are sliced lazily, and only
        for connections still probing/parsing/streaming.
        """
        transport = self.transport
        if transport is None or self.ip is None:
            return 0
        start = transport.payload_offset()
        if self.ipv4 is not None:
            end = self.ipv4.offset + self.ipv4.total_length()
        else:
            end = self.ip.payload_offset() + self.ip.payload_length()
        end = min(end, len(self.mbuf.data))
        return end - start if end > start else 0


def parse_stack(mbuf: Mbuf) -> PacketStack:
    """Parse as many layers as the frame contains; never raises.

    The result is memoized on ``mbuf.stack``: the first caller pays for
    the layer walk, every later layer reads the cached views.
    """
    stack = mbuf.stack
    if stack is not None:
        return stack
    stack = PacketStack(mbuf)
    mbuf.stack = stack
    # Constructors are invoked directly (not via the parse_from
    # classmethods) because this walk has already validated what those
    # wrappers re-check: the EtherType / IP protocol dispatch below IS
    # the check, and each layer's offset comes from the previous
    # layer's cached header length.
    try:
        eth = stack.eth = Ethernet(mbuf, 0)
    except PacketParseError:
        return stack
    ethertype = eth._next_proto
    try:
        if ethertype == ETHERTYPE_IPV4:
            ip = stack.ip = stack.ipv4 = Ipv4(mbuf, eth._hdr_len)
        elif ethertype == ETHERTYPE_IPV6:
            ip = stack.ip = stack.ipv6 = Ipv6(mbuf, eth._hdr_len)
        else:
            return stack
    except PacketParseError:
        return stack
    if stack.ipv4 is not None and ip.fragment_offset() > 0:
        # Non-first fragment: the transport header lives in fragment 0;
        # whatever bytes sit here are mid-payload, not a header.
        return stack
    proto = ip.next_protocol()
    transport_offset = ip.offset + ip._hdr_len
    try:
        if proto == PROTO_TCP:
            stack.tcp = Tcp(mbuf, transport_offset)
        elif proto == PROTO_UDP:
            stack.udp = Udp(mbuf, transport_offset)
        elif proto == PROTO_ICMP and stack.ipv4 is not None:
            stack.icmp = Icmp(mbuf, transport_offset)
    except PacketParseError:
        pass
    return stack
