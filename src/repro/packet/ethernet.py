"""Ethernet II frame header, with 802.1Q VLAN awareness."""

from __future__ import annotations

from typing import Optional

from repro.packet.base import HeaderView
from repro.packet.mbuf import Mbuf

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD
ETHERTYPE_VLAN = 0x8100
ETHERTYPE_QINQ = 0x88A8

_ETH_LEN = 14
_VLAN_TAG_LEN = 4


class Ethernet(HeaderView):
    """Ethernet II header view.

    Transparently skips up to two stacked 802.1Q/802.1ad VLAN tags when
    reporting :meth:`header_len` and :meth:`next_protocol`, so upper
    layers parse from the right offset regardless of tagging.
    """

    MIN_LEN = _ETH_LEN

    @classmethod
    def parse(cls, mbuf: Mbuf) -> "Ethernet":
        """Parse the frame's outermost Ethernet header."""
        return cls(mbuf, 0)

    def dst_mac(self) -> bytes:
        return self._bytes(0, 6)

    def src_mac(self) -> bytes:
        return self._bytes(6, 6)

    def ethertype(self) -> int:
        """The EtherType in the base header (may be a VLAN TPID)."""
        return self._u16(12)

    def vlan_ids(self) -> tuple:
        """VLAN IDs of any stacked tags, outermost first."""
        ids = []
        rel = 12
        ethertype = self._u16(rel)
        while ethertype in (ETHERTYPE_VLAN, ETHERTYPE_QINQ) and len(ids) < 2:
            tci = self._u16(rel + 2)
            ids.append(tci & 0x0FFF)
            rel += _VLAN_TAG_LEN
            ethertype = self._u16(rel)
        return tuple(ids)

    def header_len(self) -> int:
        return _ETH_LEN + _VLAN_TAG_LEN * len(self.vlan_ids())

    def next_protocol(self) -> Optional[int]:
        """EtherType of the encapsulated protocol, past any VLAN tags."""
        rel = 12 + _VLAN_TAG_LEN * len(self.vlan_ids())
        return self._u16(rel)
