"""Ethernet II frame header, with 802.1Q VLAN awareness."""

from __future__ import annotations

from typing import Optional

from repro.packet.base import HeaderView
from repro.packet.mbuf import Mbuf

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD
ETHERTYPE_VLAN = 0x8100
ETHERTYPE_QINQ = 0x88A8

_ETH_LEN = 14
_VLAN_TAG_LEN = 4


class Ethernet(HeaderView):
    """Ethernet II header view.

    Transparently skips up to two stacked 802.1Q/802.1ad VLAN tags when
    reporting :meth:`header_len` and :meth:`next_protocol`, so upper
    layers parse from the right offset regardless of tagging.

    The VLAN walk runs once, bounds-checked, at construction time: the
    hot path calls :meth:`next_protocol` and :meth:`header_len` for
    every frame, and a truncated tag stack must surface as "no next
    protocol" rather than an escaping ``struct.error``.
    """

    __slots__ = ("_vlans", "_hdr_len", "_next_proto")

    MIN_LEN = _ETH_LEN

    def __init__(self, mbuf: Mbuf, offset: int) -> None:
        super().__init__(mbuf, offset)
        data = mbuf.data
        end = len(data)
        rel = offset + 12
        ethertype = (data[rel] << 8) | data[rel + 1]
        vlans = []
        while ethertype in (ETHERTYPE_VLAN, ETHERTYPE_QINQ) and len(vlans) < 2:
            if rel + _VLAN_TAG_LEN + 2 > end:
                # Truncated tag stack: no complete inner EtherType.
                self._vlans = tuple(vlans)
                self._hdr_len = rel + 2 - offset
                self._next_proto = None
                return
            tci = (data[rel + 2] << 8) | data[rel + 3]
            vlans.append(tci & 0x0FFF)
            rel += _VLAN_TAG_LEN
            ethertype = (data[rel] << 8) | data[rel + 1]
        self._vlans = tuple(vlans)
        self._hdr_len = rel + 2 - offset
        self._next_proto = ethertype

    @classmethod
    def parse(cls, mbuf: Mbuf) -> "Ethernet":
        """Parse the frame's outermost Ethernet header."""
        return cls(mbuf, 0)

    def dst_mac(self) -> bytes:
        return self._bytes(0, 6)

    def src_mac(self) -> bytes:
        return self._bytes(6, 6)

    def ethertype(self) -> int:
        """The EtherType in the base header (may be a VLAN TPID)."""
        return self._u16(12)

    def vlan_ids(self) -> tuple:
        """VLAN IDs of any stacked tags, outermost first."""
        return self._vlans

    def header_len(self) -> int:
        return self._hdr_len

    def next_protocol(self) -> Optional[int]:
        """EtherType past any VLAN tags; ``None`` if tags are truncated."""
        return self._next_proto
