"""ICMP header view (echo-oriented; other types expose type/code)."""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import PacketParseError
from repro.packet.base import HeaderView
from repro.packet.ipv4 import Ipv4, PROTO_ICMP

ECHO_REPLY = 0
DEST_UNREACHABLE = 3
ECHO_REQUEST = 8
TIME_EXCEEDED = 11


class Icmp(HeaderView):
    """ICMPv4 header parsed in place."""

    __slots__ = ()

    MIN_LEN = 8

    @classmethod
    def parse_from(cls, ip: Ipv4) -> "Icmp":
        if ip.next_protocol() != PROTO_ICMP:
            raise PacketParseError("Icmp: IP protocol is not 1")
        return cls(ip.mbuf, ip.payload_offset())

    def icmp_type(self) -> int:
        return self._u8(0)

    def code(self) -> int:
        return self._u8(1)

    def checksum(self) -> int:
        return self._u16(2)

    def identifier(self) -> int:
        """Echo identifier (meaningful for echo request/reply)."""
        return self._u16(4)

    def sequence(self) -> int:
        return self._u16(6)

    def header_len(self) -> int:
        return 8

    def next_protocol(self) -> Optional[int]:
        return None
