"""IPv6 header view (fixed header; common extension headers skipped)."""

from __future__ import annotations

import ipaddress
from typing import Optional

from repro.errors import PacketParseError
from repro.packet.base import HeaderView
from repro.packet.ethernet import Ethernet, ETHERTYPE_IPV6
from repro.packet.mbuf import Mbuf

_FIXED_LEN = 40

# Extension headers we can skip to reach the transport layer.
_EXT_HEADERS = frozenset({0, 43, 60})  # hop-by-hop, routing, destination opts


class Ipv6(HeaderView):
    """IPv6 header view.

    :meth:`header_len` and :meth:`next_protocol` account for chained
    hop-by-hop / routing / destination-options extension headers so that
    TCP/UDP parse from the correct offset.
    """

    __slots__ = ("_transport_proto", "_hdr_len")

    MIN_LEN = _FIXED_LEN

    def __init__(self, mbuf: Mbuf, offset: int) -> None:
        super().__init__(mbuf, offset)
        if self._u8(0) >> 4 != 6:
            raise PacketParseError("Ipv6: version field is not 6")
        self._resolve_extensions()

    def _resolve_extensions(self) -> None:
        """Walk extension headers to find the transport protocol/offset."""
        proto = self._u8(6)
        rel = _FIXED_LEN
        data = self.mbuf.data
        while proto in _EXT_HEADERS:
            abs_off = self.offset + rel
            if abs_off + 2 > len(data):
                raise PacketParseError("Ipv6: truncated extension header")
            proto = data[abs_off]
            rel += (data[abs_off + 1] + 1) * 8
        self._transport_proto = proto
        self._hdr_len = rel

    @classmethod
    def parse_from(cls, eth: Ethernet) -> "Ipv6":
        """Parse an IPv6 header from an Ethernet frame's payload."""
        if eth.next_protocol() != ETHERTYPE_IPV6:
            raise PacketParseError("Ipv6: ethertype is not 0x86DD")
        return cls(eth.mbuf, eth.payload_offset())

    # -- fields ----------------------------------------------------------
    def version(self) -> int:
        return self._u8(0) >> 4

    def traffic_class(self) -> int:
        return (self._u16(0) >> 4) & 0xFF

    def flow_label(self) -> int:
        return self._u32(0) & 0x000FFFFF

    def payload_length(self) -> int:
        return self._u16(4)

    def next_header(self) -> int:
        """Next-header value in the fixed header (may be an extension)."""
        return self._u8(6)

    def hop_limit(self) -> int:
        return self._u8(7)

    def src_addr(self) -> ipaddress.IPv6Address:
        return ipaddress.IPv6Address(self._bytes(8, 16))

    def dst_addr(self) -> ipaddress.IPv6Address:
        return ipaddress.IPv6Address(self._bytes(24, 16))

    def src_addr_bytes(self) -> bytes:
        """Raw 16-byte source address (hot path: no ipaddress object)."""
        return self._bytes(8, 16)

    def dst_addr_bytes(self) -> bytes:
        """Raw 16-byte destination address (hot path: no ipaddress object)."""
        return self._bytes(24, 16)

    # -- PacketParsable ----------------------------------------------------
    def header_len(self) -> int:
        return self._hdr_len

    def next_protocol(self) -> Optional[int]:
        return self._transport_proto
