"""The shared multi-tenant packet classifier.

N tenants' packet-layer predicate tries merge into one trie keyed by
predicate text (per-layer predicate dedup): common prefixes — the
``eth``/``ipv4``/``tcp`` chains every filter starts with — are walked
*once* per packet, and each merged node carries the list of tenants for
which it is a report node. One walk therefore yields every tenant's
verdict, which is what makes classification cost sublinear in tenant
count (the ``bench_tenancy.py`` acceptance benchmark).

Correctness contract (pinned by ``tests/test_tenancy_fuzz.py``): for
every tenant, the verdict fanned out of the shared walk is *identical*
— same matched/terminal flags, same tenant-native trie node id — to
running that tenant's own :class:`~repro.filter.CompiledFilter`
independently, on both the scalar and the columnar mask paths. Verdicts
carry tenant-native node ids precisely so the per-tenant connection and
session sub-filters downstream need no changes at all.

The single-tenant walkers return the *first* matching report in their
DFS emission order (packet children before the node's own report; see
``codegen._emit_packet_children`` / ``interp._walk_packet``). The
merged trie cannot replay N different DFS orders in one walk, so each
tenant's report nodes are ranked by that emission order at build time
and the walk keeps, per tenant, the matched report with the *minimum
rank* — which is exactly the first-match result. Tenant tries are
merged as built (after ``_order_children``); cross-tenant subsumption
pruning is deliberately *not* applied — tenant A's ``ipv4`` terminal
must not swallow tenant B's ``ipv4 and tcp`` subtree.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import TenancyError
from repro.filter import CompiledFilter
from repro.filter.batch import (
    NO_MATCH,
    binary_supported,
    encode_verdict,
    make_pred_evaluator,
    trie_batch_supported,
    unary_kind,
)
from repro.filter.fields import Layer
from repro.filter.hardware import HardwareFilter
from repro.filter.interp import evaluate_binary
from repro.filter.result import FilterResult
from repro.filter.trie import TrieNode
from repro.packet.mbuf import Mbuf
from repro.packet.stack import parse_stack

_NO_PRIORITY = float("inf")


def union_hardware(filters: Sequence[CompiledFilter]) -> HardwareFilter:
    """The union flow-rule set admitting every tenant's traffic.

    Installed once at runtime construction for all tenants the run will
    ever know (including dormant late joiners), so a mid-run epoch swap
    never has to touch the NIC — the hardware plane stays immutable
    while the software table swaps.
    """
    rules = []
    seen: set = set()
    for compiled in filters:
        hw = compiled.hardware
        if hw.accept_all:
            return HardwareFilter([], accept_all=True)
        for rule in hw.rules:
            key = rule.describe()
            if key not in seen:
                seen.add(key)
                rules.append(rule)
    if not rules:
        return HardwareFilter([], accept_all=True)
    return HardwareFilter(rules, accept_all=False)


def _ladder_order(trie) -> Dict[int, int]:
    """Rank each packet-layer report node by the single-tenant walkers'
    first-match emission order: children before the node's own report."""
    order: Dict[int, int] = {}

    def is_report(node: TrieNode) -> bool:
        return node.terminal or any(
            child.layer is not Layer.PACKET for child in node.children)

    def walk(node: TrieNode) -> None:
        for child in node.children:
            if child.layer is Layer.PACKET:
                walk(child)
        if node.parent is not None and is_report(node):
            order[node.id] = len(order)

    walk(trie.root)
    return order


class _MergedNode:
    """One predicate in the merged trie, tagged with every tenant for
    which this path is a report."""

    __slots__ = ("pred", "children", "_child_by_key", "tags",
                 "batch_kind", "batch_eval")

    def __init__(self, pred) -> None:
        self.pred = pred
        self.children: List["_MergedNode"] = []
        self._child_by_key: Dict[str, "_MergedNode"] = {}
        #: ``(tenant_idx, rank, encoded_verdict, FilterResult)`` per
        #: tenant whose own trie reports at this path.
        self.tags: List[Tuple[int, int, int, FilterResult]] = []
        self.batch_kind = None
        self.batch_eval: Optional[Callable] = None

    def child_for(self, pred) -> "_MergedNode":
        key = str(pred)
        child = self._child_by_key.get(key)
        if child is None:
            child = _MergedNode(pred)
            self._child_by_key[key] = child
            self.children.append(child)
        return child


class SharedFilter:
    """N compiled tenant filters merged into one shared classifier."""

    def __init__(self, names: Sequence[str],
                 filters: Sequence[CompiledFilter]) -> None:
        if len(names) != len(filters):
            raise TenancyError("names and filters must pair up")
        if not filters:
            raise TenancyError("a shared filter needs >= 1 tenant")
        registry = filters[0].registry
        for compiled in filters:
            if compiled.registry is not registry:
                raise TenancyError(
                    "all tenants must share one field registry")
        self.names = list(names)
        self.filters = list(filters)
        self.registry = registry
        count = len(filters)
        #: Tenants whose trie root is terminal (match-all filters):
        #: scalar verdict is terminal node 0 unconditionally, batch
        #: verdict is terminal for every fast row.
        self._match_all = [compiled.trie.root.terminal
                           for compiled in filters]
        self._base = [FilterResult.match_terminal(0) if match_all
                      else FilterResult.no_match()
                      for match_all in self._match_all]
        self._root = _MergedNode(None)
        self.tenant_report_nodes = 0
        self.tenant_packet_nodes = 0
        for idx, compiled in enumerate(filters):
            if self._match_all[idx]:
                continue
            order = _ladder_order(compiled.trie)
            self.tenant_report_nodes += len(order)
            self._merge(idx, compiled.trie.root, self._root, order)
        self.shared_packet_nodes = self._prepare_batch()
        #: One decoded-column walk yields every tenant's verdict iff
        #: every tenant's own trie is batch-expressible (the same
        #: condition each CompiledFilter applies to itself).
        self.batch_supported = all(
            trie_batch_supported(compiled.trie, registry)
            for compiled in filters)
        self.hardware = union_hardware(filters)

    # -- construction --------------------------------------------------
    def _merge(self, idx: int, src: TrieNode, dst: _MergedNode,
               order: Dict[int, int]) -> None:
        for child in src.children:
            if child.layer is not Layer.PACKET:
                continue
            self.tenant_packet_nodes += 1
            merged = dst.child_for(child.pred)
            rank = order.get(child.id)
            if rank is not None:
                result = (FilterResult.match_terminal(child.id)
                          if child.terminal
                          else FilterResult.match_non_terminal(child.id))
                merged.tags.append(
                    (idx, rank,
                     encode_verdict(child.id, child.terminal), result))
            self._merge(idx, child, merged, order)

    def _prepare_batch(self) -> int:
        """Precompute per-node batch narrowing strategy; returns the
        merged packet-node count (the dedup win the bench reports)."""
        total = 0
        stack = list(self._root.children)
        while stack:
            node = stack.pop()
            total += 1
            pred = node.pred
            if pred.is_unary:
                node.batch_kind = unary_kind(pred.protocol)
            elif binary_supported(pred, self.registry):
                node.batch_kind = "binary"
                node.batch_eval = make_pred_evaluator(pred,
                                                      self.registry)
            stack.extend(node.children)
        return total

    # -- scalar path ---------------------------------------------------
    def classify(self, mbuf: Mbuf) -> List[FilterResult]:
        """One packet, every tenant's packet-filter verdict.

        Mirrors ``interp.packet_filter`` over the merged trie: walk
        every matching branch once, keep each tenant's minimum-rank
        matched report.
        """
        results = list(self._base)
        stack = mbuf.stack
        if stack is None:
            stack = parse_stack(mbuf)
        if stack.eth is None:
            return results
        headers: Dict[str, Any] = {
            "eth": stack.eth,
            "ipv4": stack.ipv4,
            "ipv6": stack.ipv6,
            "tcp": stack.tcp,
            "udp": stack.udp,
            "icmp": stack.icmp,
        }
        best = [_NO_PRIORITY] * len(results)
        for child in self._root.children:
            self._walk(child, headers, best, results)
        return results

    def _walk(self, node: _MergedNode, headers: Dict[str, Any],
              best: List[float], results: List[FilterResult]) -> None:
        pred = node.pred
        obj = headers.get(pred.protocol)
        if obj is None:
            return
        if not pred.is_unary and \
                not evaluate_binary(pred, obj, self.registry):
            return
        for idx, rank, _verdict, result in node.tags:
            if rank < best[idx]:
                best[idx] = rank
                results[idx] = result
        for child in node.children:
            self._walk(child, headers, best, results)

    # -- columnar mask path --------------------------------------------
    def classify_batch(self, cols) -> Optional[List[List[int]]]:
        """One decoded burst, every tenant's encoded verdict vector.

        Returns one ``ColumnarBatch``-aligned verdict list per tenant
        (``NO_MATCH`` or ``(node_id << 1) | terminal``; valid only for
        fast rows, like every batch packet filter), or None when some
        tenant's predicates are not batch-expressible.
        """
        if not self.batch_supported:
            return None
        n = cols.n
        fast = cols.fast
        outs: List[List[int]] = []
        ranks: List[List[float]] = []
        for match_all in self._match_all:
            if match_all:
                outs.append([1 if flag else NO_MATCH for flag in fast])
            else:
                outs.append([NO_MATCH] * n)
            ranks.append([_NO_PRIORITY] * n)
        idxs = [i for i in range(n) if fast[i]]
        if idxs:
            for child in self._root.children:
                self._walk_batch(child, cols, idxs, outs, ranks)
        return outs

    def _walk_batch(self, node: _MergedNode, cols, idxs: List[int],
                    outs: List[List[int]],
                    ranks: List[List[float]]) -> None:
        kind = node.batch_kind
        if kind == "never":
            return  # fast rows are never e.g. ICMP
        if kind == "binary":
            evaluate = node.batch_eval
            idxs = [i for i in idxs if evaluate(cols, i)]
        elif kind != "always":
            col_name, want = kind
            column = getattr(cols, col_name)
            idxs = [i for i in idxs if column[i] == want]
        if not idxs:
            return
        for tenant, rank, verdict, _result in node.tags:
            out = outs[tenant]
            tenant_ranks = ranks[tenant]
            for i in idxs:
                if rank < tenant_ranks[i]:
                    tenant_ranks[i] = rank
                    out[i] = verdict
        for child in node.children:
            self._walk_batch(child, cols, idxs, outs, ranks)

    # -- introspection -------------------------------------------------
    def describe(self) -> str:
        lines = [f"shared filter over {len(self.names)} tenants "
                 f"({self.tenant_packet_nodes} tenant packet nodes "
                 f"merged into {self.shared_packet_nodes})"]
        for name, compiled in zip(self.names, self.filters):
            lines.append(f"  {name}: {compiled.text or '<match-all>'}")
        return "\n".join(lines)
