"""The versioned, atomically swappable filter table.

A :class:`FilterTable` is an *immutable* snapshot of the tenant set at
one epoch: the ordered specs, which of them are active, and the
compiled :class:`~repro.tenancy.shared.SharedFilter` over the active
set. ``subscribe``/``unsubscribe`` never mutate a table — they build
the successor table at ``epoch + 1`` and record the action, so a swap
is a single reference assignment (atomic in CPython) and every action
ever applied can be replayed onto a freshly restarted worker
(``actions_since`` seeds the supervisor's restart path).

Tables compile lazily: workers that receive an epoch bump rebuild
their own shared filter from the action stream, so the feeder process
never pays compilation for filters only workers evaluate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TenancyError
from repro.filter import compile_filter
from repro.tenancy.shared import SharedFilter
from repro.tenancy.spec import TenantSpec

#: One reconfiguration action on the wire: ``(action, name, wire_spec)``
#: with ``wire_spec`` None for drops. A tuple of these rides each epoch
#: bump batch, so the bump is self-describing and replay-safe.
WireAction = Tuple[str, str, Optional[Dict]]


class FilterTable:
    """One epoch of the multi-tenant subscription set."""

    def __init__(self, specs: Sequence[TenantSpec], epoch: int = 0,
                 active: Optional[Sequence[str]] = None,
                 actions: Sequence[Tuple[int, WireAction]] = ()) -> None:
        self.specs: List[TenantSpec] = list(specs)
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise TenancyError(f"duplicate tenant names in {names}")
        self.by_name: Dict[str, TenantSpec] = {
            spec.name: spec for spec in self.specs}
        self.epoch = epoch
        if active is None:
            active = [spec.name for spec in self.specs if spec.start]
        self.active: List[str] = list(active)
        for name in self.active:
            if name not in self.by_name:
                raise TenancyError(f"active tenant {name!r} unknown")
        if not self.specs:
            raise TenancyError("a filter table needs >= 1 tenant spec")
        #: Every ``(epoch, action)`` applied since epoch 0, newest last.
        self.actions: List[Tuple[int, WireAction]] = list(actions)
        self._shared: Optional[SharedFilter] = None

    # -- swaps ---------------------------------------------------------
    def subscribe(self, spec: TenantSpec) -> "FilterTable":
        """The successor table with ``spec`` active.

        A known (dormant or previously dropped) name re-activates with
        its stored spec — the caller may pass an updated spec under the
        same name only if the tenant is inactive.
        """
        if spec.name in self.active:
            raise TenancyError(
                f"tenant {spec.name!r} is already subscribed")
        specs = [s for s in self.specs if s.name != spec.name]
        specs.append(spec)
        action: WireAction = ("add", spec.name, spec.to_wire())
        return FilterTable(
            specs, epoch=self.epoch + 1,
            active=self.active + [spec.name],
            actions=self.actions + [(self.epoch + 1, action)])

    def unsubscribe(self, name: str) -> "FilterTable":
        """The successor table with tenant ``name`` inactive. The spec
        stays known (it can re-subscribe), and the runtime keeps the
        tenant's in-flight connections draining under their admission
        epoch."""
        if name not in self.active:
            raise TenancyError(f"tenant {name!r} is not subscribed")
        action: WireAction = ("drop", name, None)
        return FilterTable(
            self.specs, epoch=self.epoch + 1,
            active=[n for n in self.active if n != name],
            actions=self.actions + [(self.epoch + 1, action)])

    def apply_action(self, action: WireAction) -> "FilterTable":
        kind, name, wire = action
        if kind == "add":
            return self.subscribe(TenantSpec.from_wire(wire))
        if kind == "drop":
            return self.unsubscribe(name)
        raise TenancyError(f"unknown table action {kind!r}")

    def actions_since(self, epoch: int) -> List[Tuple[int, WireAction]]:
        """Actions a worker restarted at table state ``epoch`` must
        replay to catch up to this table."""
        return [(e, a) for e, a in self.actions if e > epoch]

    # -- views ---------------------------------------------------------
    def active_specs(self) -> List[TenantSpec]:
        return [self.by_name[name] for name in self.active]

    def shared(self, filter_mode: str = "codegen",
               nic=None) -> SharedFilter:
        """The compiled shared classifier over the active tenants
        (compiled on first use, cached — the table is immutable)."""
        if self._shared is None:
            active = self.active_specs()
            self._shared = SharedFilter(
                [spec.name for spec in active],
                [compile_filter(spec.filter, mode=filter_mode, nic=nic)
                 for spec in active])
        return self._shared

    def describe(self) -> str:
        rows = [f"epoch {self.epoch}: "
                f"{len(self.active)}/{len(self.specs)} tenants active"]
        for spec in self.specs:
            state = "active" if spec.name in self.active else "dormant"
            rows.append(f"  {spec.name} [{state}]: "
                        f"{spec.filter or '<match-all>'}")
        return "\n".join(rows)
