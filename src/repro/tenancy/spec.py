"""Tenant subscription specs and the subscriptions-file format.

A tenant is one named subscription: a filter, a data type, a callback,
and optional robustness knobs (ingress quota, callback-error policy, a
private fault plan for tests). Specs must survive a trip through the
parallel backend's pickled worker specs, so the wire form
(:meth:`TenantSpec.to_wire`) is a plain dict of primitives plus a
picklable callback.

The subscriptions file (CLI ``--subscriptions``) is JSON: either a list
of tenant objects or ``{"tenants": [...]}``. Each object::

    {"name": "web", "filter": "ipv4 and tcp.port = 80",
     "datatype": "connection", "callback": "count",
     "quota_mbps": 50.0, "start": true}

``callback`` is ``null``/"none" (deliver without a user function),
``"count"`` (a no-op counting stub), or a ``"module:function"`` dotted
path imported at load time. ``start: false`` defines a tenant that is
dormant until a ``--reconfigure-at T:add:name`` event activates it.
"""

from __future__ import annotations

import importlib
import json
import re
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import TenancyError
from repro.resilience.faults import FaultPlan

#: Tenant names label Prometheus families and appear in
#: ``--reconfigure-at`` event strings (colon-separated), so keep them
#: to a conservative identifier alphabet.
_NAME_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")


def count_callback(obj) -> None:
    """The "count" callback: deliveries are tallied by the runtime's
    stats counters; the user function itself does nothing."""


def resolve_callback(spec: Optional[str]) -> Optional[Callable]:
    """Resolve a subscriptions-file callback spec to a callable."""
    if spec is None or spec == "none":
        return None
    if spec == "count":
        return count_callback
    if ":" not in spec:
        raise TenancyError(
            f"callback spec {spec!r} is not 'none', 'count', or a "
            f"'module:function' path")
    mod_name, _, fn_name = spec.partition(":")
    try:
        mod = importlib.import_module(mod_name)
    except ImportError as exc:
        raise TenancyError(
            f"callback module {mod_name!r} not importable: {exc}") from exc
    fn = getattr(mod, fn_name, None)
    if not callable(fn):
        raise TenancyError(
            f"callback {spec!r} does not name a callable")
    return fn


@dataclass(frozen=True)
class TenantSpec:
    """One named subscription in a multi-tenant filter table."""

    name: str
    filter: str = ""
    datatype: str = "packet"
    callback: Optional[Callable] = None
    #: Spec string the callback was resolved from (kept for reports).
    callback_spec: Optional[str] = None
    #: Per-tenant ingress budget in megabits per *virtual* second; rows
    #: beyond the budget are shed (and attributed to this tenant in its
    #: loss ledger) before they reach the tenant's pipeline. None means
    #: unmetered. The budget is split evenly across cores, mirroring
    #: the shared-nothing overload ladder.
    quota_mbps: Optional[float] = None
    #: Active at epoch 0. Dormant tenants (False) are compiled into the
    #: union hardware filter up front but join classification only when
    #: an ``add`` event activates them.
    start: bool = True
    identify_services: bool = False
    #: Per-tenant overrides of the runtime-wide callback-error policy;
    #: None inherits :class:`~repro.config.RuntimeConfig`.
    callback_error_policy: Optional[str] = None
    callback_error_budget: Optional[int] = None
    #: Tenant-scoped fault plan (tests): injected only into this
    #: tenant's pipelines, so quarantine stays tenant-local.
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise TenancyError(
                f"tenant name {self.name!r} must match "
                f"{_NAME_RE.pattern} (it labels metrics and CLI events)")
        if self.quota_mbps is not None and self.quota_mbps <= 0:
            raise TenancyError(
                f"tenant {self.name!r}: quota_mbps must be > 0 "
                f"(omit it for an unmetered tenant)")
        if self.callback_error_policy not in (None, "raise", "isolate"):
            raise TenancyError(
                f"tenant {self.name!r}: callback_error_policy must be "
                f"'raise' or 'isolate'")

    @property
    def quota_bytes_per_sec(self) -> Optional[float]:
        if self.quota_mbps is None:
            return None
        return self.quota_mbps * 1e6 / 8.0

    def with_(self, **kwargs) -> "TenantSpec":
        return replace(self, **kwargs)

    # -- pickled wire form (worker specs, epoch-bump actions) ----------
    def to_wire(self) -> Dict:
        return {
            "name": self.name,
            "filter": self.filter,
            "datatype": self.datatype,
            "callback": self.callback,
            "callback_spec": self.callback_spec,
            "quota_mbps": self.quota_mbps,
            "start": self.start,
            "identify_services": self.identify_services,
            "callback_error_policy": self.callback_error_policy,
            "callback_error_budget": self.callback_error_budget,
            "fault_plan": self.fault_plan,
        }

    @classmethod
    def from_wire(cls, wire: Dict) -> "TenantSpec":
        return cls(**wire)


@dataclass(frozen=True)
class ReconfigureEvent:
    """A scheduled live reconfiguration: at virtual time ``time``,
    ``add`` (activate) or ``drop`` (deactivate) tenant ``name``.

    Events apply at a deterministic packet boundary: the first ingress
    packet with timestamp >= ``time`` observes the new epoch, on both
    backends at any worker count.
    """

    time: float
    action: str
    name: str

    def __post_init__(self) -> None:
        if self.action not in ("add", "drop"):
            raise TenancyError(
                f"reconfigure action {self.action!r} must be "
                f"'add' or 'drop'")
        if self.time < 0:
            raise TenancyError("reconfigure time must be >= 0")


def parse_reconfigure(text: str) -> ReconfigureEvent:
    """Parse one ``<virtual-time>:<add|drop>:<name>`` event string."""
    parts = text.split(":")
    if len(parts) != 3:
        raise TenancyError(
            f"reconfigure spec {text!r} is not "
            f"<virtual-time>:<add|drop>:<name>")
    raw_time, action, name = parts
    try:
        time = float(raw_time)
    except ValueError:
        raise TenancyError(
            f"reconfigure spec {text!r}: {raw_time!r} is not a "
            f"virtual-time float") from None
    event = ReconfigureEvent(time=time, action=action, name=name)
    if not _NAME_RE.match(name):
        raise TenancyError(
            f"reconfigure spec {text!r}: bad tenant name {name!r}")
    return event


def parse_subscriptions(text: str,
                        source: str = "<subscriptions>",
                        ) -> List[TenantSpec]:
    """Parse the JSON subscriptions document into tenant specs."""
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise TenancyError(f"{source}: not valid JSON: {exc}") from exc
    if isinstance(doc, dict):
        doc = doc.get("tenants")
    if not isinstance(doc, list) or not doc:
        raise TenancyError(
            f"{source}: expected a non-empty JSON list of tenant "
            f"objects (or {{\"tenants\": [...]}})")
    specs: List[TenantSpec] = []
    seen: set = set()
    allowed = {"name", "filter", "datatype", "callback", "quota_mbps",
               "start", "identify_services", "callback_error_policy",
               "callback_error_budget"}
    for i, entry in enumerate(doc):
        if not isinstance(entry, dict):
            raise TenancyError(
                f"{source}: tenant #{i} is not a JSON object")
        unknown = set(entry) - allowed
        if unknown:
            raise TenancyError(
                f"{source}: tenant #{i} has unknown keys "
                f"{sorted(unknown)} (allowed: {sorted(allowed)})")
        name = entry.get("name")
        if not isinstance(name, str):
            raise TenancyError(f"{source}: tenant #{i} needs a "
                               f"string 'name'")
        if name in seen:
            raise TenancyError(
                f"{source}: duplicate tenant name {name!r}")
        seen.add(name)
        cb_spec = entry.get("callback")
        specs.append(TenantSpec(
            name=name,
            filter=entry.get("filter", ""),
            datatype=entry.get("datatype", "packet"),
            callback=resolve_callback(cb_spec),
            callback_spec=cb_spec,
            quota_mbps=entry.get("quota_mbps"),
            start=bool(entry.get("start", True)),
            identify_services=bool(entry.get("identify_services",
                                             False)),
            callback_error_policy=entry.get("callback_error_policy"),
            callback_error_budget=entry.get("callback_error_budget"),
        ))
    return specs


def load_subscriptions(path: str) -> List[TenantSpec]:
    """Load and parse a subscriptions file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise TenancyError(
            f"subscriptions file {path!r} unreadable: {exc}") from exc
    return parse_subscriptions(text, source=path)


def check_events(events: Sequence[ReconfigureEvent],
                 specs: Sequence[TenantSpec]) -> None:
    """Validate a reconfiguration schedule against the tenant set:
    every event must name a known tenant, and the add/drop sequence per
    tenant must alternate sensibly from its ``start`` state."""
    known = {spec.name: spec.start for spec in specs}
    for event in sorted(events, key=lambda e: (e.time,)):
        active = known.get(event.name)
        if active is None:
            raise TenancyError(
                f"reconfigure event {event.time}:{event.action}:"
                f"{event.name} names an unknown tenant (define it in "
                f"the subscriptions file, with \"start\": false for a "
                f"late joiner)")
        if event.action == "add" and active:
            raise TenancyError(
                f"reconfigure event {event.time}:add:{event.name}: "
                f"tenant is already active at that point")
        if event.action == "drop" and not active:
            raise TenancyError(
                f"reconfigure event {event.time}:drop:{event.name}: "
                f"tenant is not active at that point")
        known[event.name] = event.action == "add"
