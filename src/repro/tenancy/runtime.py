"""The multi-tenant runtime: N subscriptions over one shared pipeline.

A :class:`TenantRuntime` deploys a whole
:class:`~repro.tenancy.table.FilterTable` instead of one subscription:
every core runs a :class:`~repro.tenancy.pipeline.TenantCorePipeline`
that classifies each packet once against the merged shared trie and
fans verdicts out per tenant. The table is versioned — ``subscribe``/
``unsubscribe`` build the successor epoch and publish it — and swaps
land atomically on burst boundaries:

- **Sequential backend**: the feeder loop below checks scheduled
  reconfiguration events *before* routing each packet; when one is due
  it flushes every pending per-queue batch (old-epoch packets classify
  under the old table), applies the event, and calls ``apply_epoch`` on
  every pipeline. The first packet with ``timestamp >= event.time``
  therefore observes the new epoch — exactly the parallel feeder's
  contract, which is what keeps the two backends byte-identical per
  tenant even across a mid-run swap.
- **Parallel backend**: :func:`repro.core.parallel.run_parallel`
  discovers this runtime's :meth:`tenant_wire_state` /
  :meth:`publish_tenancy_events` surface, ships the wire table to each
  worker, and broadcasts each new epoch on an empty stamped
  :class:`~repro.packet.batch.PackedBatch` after flushing pending
  batches. Epoch bumps ride the supervised redo log, so a worker crash
  inside the swap window replays the bump to the restarted worker
  (``apply_epoch`` is idempotent on the epoch number).

The hardware plane never reconfigures: the union flow-rule set over
*every* tenant the run will ever know — dormant late joiners included —
is installed once at construction (:func:`~repro.tenancy.shared
.union_hardware`), so an epoch swap is purely a software-table pointer
swap, and NIC ingress counters are comparable across any
reconfiguration schedule over the same tenant universe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, \
    Sequence, Tuple

if TYPE_CHECKING:
    from repro.config import RuntimeConfig
    from repro.core.stats import AggregateStats
    from repro.resilience.faults import PacketFaultInjector

from repro.core.runtime import Runtime, RuntimeReport
from repro.core.subscription import Subscription
from repro.errors import TenancyError
from repro.filter import compile_filter
from repro.packet.columnar import columnar_dispatch
from repro.packet.mbuf import Mbuf
from repro.tenancy.pipeline import TenantCorePipeline, TenantStatsBundle
from repro.tenancy.shared import union_hardware
from repro.tenancy.spec import ReconfigureEvent, TenantSpec, check_events
from repro.tenancy.table import FilterTable


class TenantRuntime(Runtime):
    """One deployed multi-tenant filter table over the simulated NIC."""

    def __init__(
        self,
        config: "RuntimeConfig",
        specs: Sequence[TenantSpec],
        events: Sequence[ReconfigureEvent] = (),
        ports: int = 1,
    ) -> None:
        if config.callback_execution != "inline":
            raise TenancyError(
                "multi-tenant runs require callback_execution='inline' "
                "(each tenant pipeline owns its own inline executor)")
        table = FilterTable(specs)
        check_events(events, table.specs)
        self.table = table
        #: Scheduled events still to fire, earliest first (stable for
        #: same-timestamp events: schedule order breaks the tie).
        self._events: List[ReconfigureEvent] = sorted(
            events, key=lambda e: e.time)
        # The base constructor wires NICs/executor/bookkeeping around a
        # synthetic match-all subscription; its pipelines and hardware
        # filter are replaced below.
        super().__init__(
            config,
            subscription=Subscription(
                "", "packet", None, filter_mode=config.filter_mode,
                nic=config.nic),
            ports=ports,
        )
        # One immutable hardware plane for the whole tenant universe:
        # dormant tenants are compiled in up front so activating them
        # later never touches the NIC.
        self._union_hw = union_hardware([
            compile_filter(spec.filter, mode=config.filter_mode)
            for spec in table.specs])
        if config.hardware_filter:
            for nic in self.nics:
                nic.install_hardware_filter(self._union_hw)
        self.pipelines = [
            TenantCorePipeline(core, table.specs, table.active, config,
                               epoch=table.epoch)
            for core in range(config.cores)
        ]

    # -- live reconfiguration ------------------------------------------
    def subscribe(self, spec: TenantSpec) -> int:
        """Activate ``spec`` on the live runtime; returns the new epoch.

        Publishes the successor table and swaps every local pipeline at
        the next burst boundary (immediately, between bursts, on the
        sequential backend). For a run already dispatched to worker
        processes, schedule the change as a
        :class:`~repro.tenancy.spec.ReconfigureEvent` instead — the
        feeder broadcasts it at the exact virtual time.

        Subscribing a tenant the table has never known (or a known name
        with a different filter) grows the hardware universe, so the
        union flow-rule set is recompiled and reinstalled here — the
        one case a swap touches the NIC. Scheduled mid-run events can
        only reference tenants declared up front (``check_events``), so
        the in-flight hardware plane stays immutable.
        """
        known = self.table.by_name.get(spec.name)
        self.table = self.table.subscribe(spec)
        if known is None or known.filter != spec.filter:
            self._union_hw = union_hardware([
                compile_filter(s.filter, mode=self.config.filter_mode)
                for s in self.table.specs])
            if self.config.hardware_filter:
                for nic in self.nics:
                    nic.install_hardware_filter(self._union_hw)
        self._sync_local()
        return self.table.epoch

    def unsubscribe(self, name: str) -> int:
        """Deactivate tenant ``name``; its in-flight connections keep
        draining under their admission epoch. Returns the new epoch."""
        self.table = self.table.unsubscribe(name)
        self._sync_local()
        return self.table.epoch

    def _sync_local(self) -> None:
        epoch, action = self.table.actions[-1]
        for pipeline in self.pipelines:
            pipeline.apply_epoch(epoch, (action,))

    # -- the feeder protocol (duck-typed by run_parallel) --------------
    @property
    def next_reconfigure_ts(self) -> Optional[float]:
        """Virtual time of the next scheduled event, or None."""
        return self._events[0].time if self._events else None

    def publish_tenancy_events(self, ts: float
                               ) -> List[Tuple[int, tuple]]:
        """Apply every scheduled event due at virtual time ``ts`` to
        the live table; returns the ``(epoch, actions)`` bumps to
        broadcast (one bump per event, in schedule order)."""
        bumps: List[Tuple[int, tuple]] = []
        while self._events and self._events[0].time <= ts:
            event = self._events.pop(0)
            if event.action == "add":
                spec = self.table.by_name.get(event.name)
                if spec is None:
                    raise TenancyError(
                        f"reconfigure add of unknown tenant "
                        f"{event.name!r}")
                self.table = self.table.subscribe(spec)
            else:
                self.table = self.table.unsubscribe(event.name)
            epoch, action = self.table.actions[-1]
            bumps.append((epoch, (action,)))
        return bumps

    def tenant_wire_state(self) -> Dict:
        """The table as the plain wire dict worker specs carry."""
        return {
            "specs": [spec.to_wire() for spec in self.table.specs],
            "active": list(self.table.active),
            "epoch": self.table.epoch,
        }

    # -- sequential backend with live swaps ----------------------------
    def _run_sequential(
        self,
        traffic: Iterable[Mbuf],
        drain: bool,
        memory_sample_interval: float,
        monitor,
        packet_injector: Optional["PacketFaultInjector"] = None,
    ) -> RuntimeReport:
        if not self._events:
            # No swaps scheduled: the base loop (including its columnar
            # fast paths) is already exactly right.
            return super()._run_sequential(
                traffic, drain, memory_sample_interval, monitor,
                packet_injector=packet_injector)
        config = self.config
        batch_size = config.parallel_batch_size
        pipelines = self.pipelines
        nics = self.nics
        nic0 = nics[0]
        num_nics = len(nics)
        frag = self.fragment_reassembler
        memory_limit = config.memory_limit_bytes \
            if config.memory_policy == "record" else None
        ff_possible = config.overload_policy == "failfast" or (
            config.overload_policy == "ladder"
            and config.overload_max_rung >= 4)
        pending: List[List[Mbuf]] = [[] for _ in pipelines]
        next_monitor_ts: Optional[float] = \
            None if monitor is not None else float("inf")
        first = self._first_ts is None
        oom_at: Optional[float] = None
        failfast_at: Optional[float] = None
        next_event_ts = self.next_reconfigure_ts
        use_columnar = (config.columnar and frag is None
                        and all(n.supports_columnar() for n in nics))
        if use_columnar:
            # Columnar ingress, mirroring the base loop's dispatch
            # branch: the NICs hash fast rows from shared header
            # columns, no per-packet stack parse. NIC receive is
            # epoch-independent (the union hardware plane never changes
            # mid-run), so the swap check only has to run before
            # *routing*, exactly like the scalar loop below.
            for mbuf, queue in columnar_dispatch(traffic, nics,
                                                 batch_size):
                ts = mbuf.timestamp
                if first:
                    first = False
                    if self._first_ts is None:
                        self._first_ts = ts
                        self._last_memory_sample = ts
                if ts > self._last_ts:
                    self._last_ts = ts
                if next_event_ts is not None and ts >= next_event_ts:
                    self._flush_pending(pending)
                    for epoch, actions in \
                            self.publish_tenancy_events(ts):
                        for pipeline in pipelines:
                            pipeline.apply_epoch(epoch, actions)
                    next_event_ts = self.next_reconfigure_ts
                if queue is not None:
                    queued = pending[queue]
                    queued.append(mbuf)
                    if len(queued) >= batch_size:
                        pipelines[queue].process_batch(queued)
                        queued.clear()
                        if ff_possible and \
                                pipelines[queue].overload_failfast_at \
                                is not None:
                            failfast_at = \
                                pipelines[queue].overload_failfast_at
                            break
                if next_monitor_ts is None or ts >= next_monitor_ts:
                    self._flush_pending(pending)
                    monitor.observe(self, ts)
                    next_monitor_ts = ts + monitor.interval
                if ts - self._last_memory_sample \
                        >= memory_sample_interval:
                    self._flush_pending(pending)
                    self._last_memory_sample = ts
                    self._sample_memory(ts)
                    if memory_limit is not None and \
                            self.memory_bytes > memory_limit:
                        oom_at = ts
                        break
            traffic = ()  # fully consumed (or aborted) above
        for mbuf in traffic:
            ts = mbuf.timestamp
            if first:
                first = False
                if self._first_ts is None:
                    self._first_ts = ts
                    self._last_memory_sample = ts
            if ts > self._last_ts:
                self._last_ts = ts
            if next_event_ts is not None and ts >= next_event_ts:
                # Swap before this packet: flush every pending batch so
                # pre-event packets classify under the old table, then
                # publish and adopt the new epoch(s). Mirrors the
                # parallel feeder's flush + bump broadcast exactly.
                self._flush_pending(pending)
                for epoch, actions in self.publish_tenancy_events(ts):
                    for pipeline in pipelines:
                        pipeline.apply_epoch(epoch, actions)
                next_event_ts = self.next_reconfigure_ts
            if frag is not None:
                mbuf = frag.push(mbuf)
                if mbuf is None:
                    continue  # fragment held pending completion
            port = mbuf.port
            nic = nics[port] if 0 < port < num_nics else nic0
            queue = nic.receive(mbuf)
            if queue is not None:
                queued = pending[queue]
                queued.append(mbuf)
                if len(queued) >= batch_size:
                    pipelines[queue].process_batch(queued)
                    queued.clear()
                    if ff_possible and \
                            pipelines[queue].overload_failfast_at \
                            is not None:
                        failfast_at = \
                            pipelines[queue].overload_failfast_at
                        break
            if next_monitor_ts is None or ts >= next_monitor_ts:
                self._flush_pending(pending)
                monitor.observe(self, ts)
                next_monitor_ts = ts + monitor.interval
            if ts - self._last_memory_sample >= memory_sample_interval:
                self._flush_pending(pending)
                self._last_memory_sample = ts
                self._sample_memory(ts)
                if memory_limit is not None and \
                        self.memory_bytes > memory_limit:
                    oom_at = ts
                    break
        self._flush_pending(pending)
        if ff_possible and failfast_at is None:
            trips = [p.overload_failfast_at for p in pipelines
                     if p.overload_failfast_at is not None]
            if trips:
                failfast_at = min(trips)
        if oom_at is None and failfast_at is None:
            for pipeline in pipelines:
                pipeline.advance_time(self._last_ts)
            self._sample_memory(self._last_ts)
            if drain:
                for pipeline in pipelines:
                    pipeline.drain()
        if monitor is not None:
            monitor.finalize(self._last_ts, self)
        for pipeline in pipelines:
            pipeline.fold_fault_counters()
        core_stats = {p.core_id: p.stats for p in pipelines}
        from repro.resilience.faults import build_fault_report
        faults = build_fault_report(config, core_stats, packet_injector)
        overload = None
        if config.overload_policy != "off":
            from repro.overload import merge_ledgers
            overload = merge_ledgers(
                stats.overload for stats in core_stats.values())
        spans = None
        if config.span_sample > 0 or config.flight_recorder_depth > 0:
            from repro.telemetry.spans import build_span_report
            spans = build_span_report(
                [core_stats[c] for c in sorted(core_stats)], None,
                config.cost_model.cpu_hz,
                nic=[n.stats.to_dict() for n in self.nics])
        return RuntimeReport(stats=self.aggregate(), oom_at=oom_at,
                             faults=faults, core_stats=core_stats,
                             overload=overload, spans=spans)

    # -- per-tenant reporting ------------------------------------------
    def nic_ingress(self) -> Tuple[int, int, int, int]:
        """The shared link's ingress totals — every tenant's
        :class:`AggregateStats` is framed against the same link."""
        return (
            sum(n.stats.received_packets for n in self.nics),
            sum(n.stats.received_bytes for n in self.nics),
            sum(n.stats.hw_dropped_packets for n in self.nics),
            sum(n.stats.sink_dropped_packets for n in self.nics),
        )

    def _per_tenant_stats(self, report: RuntimeReport
                          ) -> Dict[str, List]:
        per: Dict[str, List] = {}
        for core_id in sorted(report.core_stats or {}):
            bundle = report.core_stats[core_id]
            if not isinstance(bundle, TenantStatsBundle):
                continue
            for name in sorted(bundle.per_tenant):
                per.setdefault(name, []).append(bundle.per_tenant[name])
        return per

    def aggregate_tenants(self, report: RuntimeReport
                          ) -> Dict[str, "AggregateStats"]:
        """Per-tenant :class:`AggregateStats` from a run's core
        bundles. Every tenant that was active at any point appears —
        including tenants dropped mid-run, whose drained stats are
        frozen at their last admitted epoch."""
        ingress = self.nic_ingress()
        return {
            name: self.aggregate(core_stats=stats_list, ingress=ingress)
            for name, stats_list
            in self._per_tenant_stats(report).items()
        }

    def tenant_ledgers(self, report: RuntimeReport) -> Dict[str, object]:
        """Per-tenant merged loss ledgers (pipeline overload sheds plus
        quota/pressure sheds charged by the multiplexer); tenants with
        no ledger activity are absent."""
        from repro.overload import merge_ledgers
        out: Dict[str, object] = {}
        for name, stats_list in self._per_tenant_stats(report).items():
            merged = merge_ledgers(
                stats.overload for stats in stats_list)
            if merged is not None:
                out[name] = merged
        return out
