"""Multi-tenant subscription runtime (ROADMAP item 1).

Retina's future work names concurrent subscriptions as the step beyond
the single-experiment model. This package turns the runtime into a
service: N named subscriptions compile into one *shared* decomposed
filter (:class:`SharedFilter` — a common-prefix trie merge across
tenants with per-layer predicate dedup, so each packet is classified
once and verdicts fan out to per-tenant subscription sets), the active
set lives in a versioned, atomically swappable :class:`FilterTable`
(``subscribe``/``unsubscribe`` on a live runtime publish a new epoch
that every worker adopts at a burst boundary), and each tenant gets its
own conntrack, stats, loss ledger, quota, and callback quarantine so a
noisy or crashing tenant cannot perturb the rest.

See docs/MULTITENANT.md for the epoch-swap protocol, quota semantics,
and the isolation guarantees the test suite pins down.
"""

from repro.tenancy.spec import (
    ReconfigureEvent,
    TenantSpec,
    load_subscriptions,
    parse_reconfigure,
    parse_subscriptions,
)
from repro.tenancy.shared import SharedFilter, union_hardware
from repro.tenancy.table import FilterTable
from repro.tenancy.pipeline import TenantCorePipeline, TenantStatsBundle
from repro.tenancy.runtime import TenantRuntime

__all__ = [
    "FilterTable",
    "ReconfigureEvent",
    "SharedFilter",
    "TenantCorePipeline",
    "TenantRuntime",
    "TenantSpec",
    "TenantStatsBundle",
    "load_subscriptions",
    "parse_reconfigure",
    "parse_subscriptions",
    "union_hardware",
]
