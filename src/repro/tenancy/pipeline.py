"""Per-core multi-tenant pipeline multiplexer.

One :class:`TenantCorePipeline` replaces the single
:class:`~repro.core.pipeline.CorePipeline` on each receive queue of a
multi-tenant run. It decodes each burst *once*, classifies it *once*
against the table's :class:`~repro.tenancy.shared.SharedFilter`, and
fans the per-tenant verdict vectors out to fully independent per-tenant
``CorePipeline`` instances via ``process_batch_rows`` — so every tenant
keeps its own conntrack table, cycle ledger, stats, callback
quarantine, and (tenant-scoped) fault injector, and a noisy or crashing
tenant cannot perturb another tenant's counters by even one bit.

Isolation knobs enforced here, before rows reach a tenant's pipeline:

* **Quotas** — a tenant with ``quota_mbps`` gets a per-core byte budget
  per virtual-second window; over-budget rows are shed and charged to
  that tenant's private loss ledger (rung 1, layer ``tenant_quota``).
* **Pressure downgrade** — when ``config.tenancy_pressure_mbps`` is set
  and a window's aggregate tenant load exceeds the per-core share, the
  *heaviest* tenants (by offered bytes *matching their own filter*,
  ties by name) are shed for the
  next window (rung 3, layer ``tenant_pressure``) until the remainder
  fits — heaviest-tenant-first, mirroring the overload ladder's
  downgrade rung.

Both are driven by virtual time, so they are deterministic across
backends and worker counts at a fixed ``config.cores``.

Epoch swaps (:meth:`TenantCorePipeline.apply_epoch`) are idempotent on
the epoch number, so a replayed bump batch after a supervised worker
restart is a no-op when the restarted worker was already seeded at (or
past) that epoch. A dropped tenant's pipeline moves to the draining
set: it receives no further rows but keeps expiring, sampling, and
finally draining — its admitted connections deliver under their
admission epoch, untouched by the swap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import CorePipeline
from repro.core.stats import CoreStats
from repro.core.subscription import Subscription
from repro.errors import TenancyError
from repro.filter.batch import NO_MATCH
from repro.overload.ledger import LossLedger
from repro.packet.columnar import decode_mbufs
from repro.tenancy.spec import TenantSpec, count_callback

#: One virtual second: the quota / pressure accounting window.
_WINDOW_S = 1.0
#: Ladder rungs quota and pressure sheds are attributed to (the quota
#: gate refuses work the way rung 1 does; the pressure downgrade is the
#: tenant-granular analogue of rung 3's heavy-connection breaker).
_QUOTA_RUNG = 1
_PRESSURE_RUNG = 3


def build_tenant_subscription(spec: TenantSpec, config,
                              nic_caps=None) -> Subscription:
    """Compile one tenant's spec into a Subscription (the tenant's own
    filter object also feeds the table's SharedFilter, so verdict node
    ids line up with the connection/session sub-filters for free)."""
    return Subscription(
        spec.filter,
        spec.datatype,
        spec.callback if spec.callback is not None else count_callback,
        filter_mode=config.filter_mode,
        nic=nic_caps,
        identify_services=spec.identify_services,
    )


def tenant_config(spec: TenantSpec, config):
    """The per-tenant RuntimeConfig: tenant overrides for the callback
    error policy, and the tenant-scoped fault plan *replacing* the
    run-level one (worker-level faults stay with the supervisor; the
    in-pipeline injectors must be tenant-local or quarantine leaks)."""
    return config.with_(
        callback_error_policy=(spec.callback_error_policy
                               if spec.callback_error_policy is not None
                               else config.callback_error_policy),
        callback_error_budget=(spec.callback_error_budget
                               if spec.callback_error_budget is not None
                               else config.callback_error_budget),
        fault_plan=spec.fault_plan,
    )


class TenantStatsBundle(CoreStats):
    """One core's merged stats plus the per-tenant breakdown.

    Subclasses :class:`CoreStats` so everything that consumes a
    per-core snapshot — the parallel ack/progress/monitor protocol,
    ``Runtime.aggregate``, the crash-recovery comparisons — works
    unchanged on a multi-tenant core. The extras ride along:

    * ``per_tenant``: tenant name → that tenant's merged CoreStats
      (re-added tenants merge their drained and live pipelines).
    * ``tenant_shed``: tenant name → the quota/pressure loss ledger,
      present only for tenants that were actually metered (so an
      unmetered run's snapshot is byte-identical to a plain run's).
    * ``epoch``: the filter-table epoch this core had adopted when the
      snapshot was taken.
    """

    def __init__(self, cost_model, telemetry: bool = False) -> None:
        super().__init__(cost_model, telemetry=telemetry)
        self.per_tenant: Dict[str, CoreStats] = {}
        self.tenant_shed: Dict[str, LossLedger] = {}
        self.epoch = 0

    def merge(self, other: CoreStats) -> None:
        super().merge(other)
        if isinstance(other, TenantStatsBundle):
            for name, stats in other.per_tenant.items():
                mine = self.per_tenant.get(name)
                if mine is None:
                    mine = CoreStats(stats.ledger.model)
                    self.per_tenant[name] = mine
                mine.merge(stats)
            for name, ledger in other.tenant_shed.items():
                mine = self.tenant_shed.get(name)
                if mine is None:
                    mine = LossLedger(core_id=-1)
                    self.tenant_shed[name] = mine
                mine.merge(ledger)
            if other.epoch > self.epoch:
                self.epoch = other.epoch

    def to_dict(self) -> Dict:
        out = super().to_dict()
        # The tenant breakdown joins the snapshot only when the run is
        # observably multi-tenant — a single unmetered tenant's
        # snapshot must stay byte-identical to a non-tenancy run.
        if len(self.per_tenant) > 1 or self.tenant_shed:
            out["epoch"] = self.epoch
            out["tenants"] = {
                name: stats.to_dict()
                for name, stats in sorted(self.per_tenant.items())
            }
            out["tenant_shed"] = {
                name: ledger.to_dict()
                for name, ledger in sorted(self.tenant_shed.items())
            }
        return out


class _TableView:
    """Duck-typed stand-in for ``pipeline.table``: the worker progress
    loop only ever takes ``len()`` of it."""

    __slots__ = ("_mux",)

    def __init__(self, mux: "TenantCorePipeline") -> None:
        self._mux = mux

    def __len__(self) -> int:
        return sum(len(tp.table) for tp in self._mux.pipelines())


class TenantCorePipeline:
    """The per-core data path of a multi-tenant run.

    Exposes the same surface the sequential loop and the parallel
    ``_worker_main`` drive on a :class:`CorePipeline` — ``process_batch``,
    ``advance_time``, ``drain``, ``sample_memory``, ``set_span_ctx``,
    ``fold_fault_counters``, ``stats``, ``table``, ``now``,
    ``memory_bytes``, the overload properties — plus the tenancy
    verbs: :meth:`apply_epoch` and the ``epoch`` attribute.
    """

    def __init__(self, core_id: int, specs: Sequence[TenantSpec],
                 active: Sequence[str], config, epoch: int = 0,
                 initial_overload_rung: int = 0, nic_caps=None) -> None:
        self.core_id = core_id
        self.config = config
        self.epoch = epoch
        self._nic_caps = nic_caps
        self._initial_rung = initial_overload_rung
        self._known: Dict[str, TenantSpec] = {}
        for spec in specs:
            if spec.name in self._known:
                raise TenancyError(
                    f"duplicate tenant {spec.name!r} on core {core_id}")
            self._known[spec.name] = spec
        for name in active:
            if name not in self._known:
                raise TenancyError(
                    f"active tenant {name!r} unknown on core {core_id}")
        self._subs: Dict[str, Subscription] = {}
        self._pipes: Dict[str, CorePipeline] = {}
        self._active: List[str] = []
        #: Dropped tenants' pipelines: no further rows, but they keep
        #: expiring/sampling and drain at end of run ((name, pipeline)
        #: pairs — a name can drain more than once if re-added).
        self._draining: List[Tuple[str, CorePipeline]] = []
        #: Quota / pressure ledgers, created lazily at first shed so an
        #: unmetered tenant's snapshot carries no extra state at all.
        self._tenant_shed: Dict[str, LossLedger] = {}
        self._use_columnar = bool(config.columnar)
        pressure = getattr(config, "tenancy_pressure_mbps", None)
        self._pressure_share = (
            pressure * 1e6 / 8.0 * _WINDOW_S / config.cores
            if pressure is not None else None)
        # -- metering state (virtual-second windows) -------------------
        self._window = 0
        self._win_used: Dict[str, float] = {}
        self._win_bytes: Dict[str, float] = {}
        self._downgraded: set = set()
        self._mux_now = 0.0
        #: The base sequential loop peeks at ``_pf_batch`` to pick its
        #: rows mode; the multiplexer manages columns itself.
        self._pf_batch = None
        for name in active:
            self._activate(name)
        self._rebuild()

    # -- construction / swaps ------------------------------------------
    def _activate(self, name: str) -> None:
        spec = self._known[name]
        sub = self._subs.get(name)
        if sub is None:
            sub = build_tenant_subscription(spec, self.config,
                                            self._nic_caps)
            self._subs[name] = sub
        self._pipes[name] = CorePipeline(
            self.core_id, sub, tenant_config(spec, self.config),
            initial_overload_rung=self._initial_rung)
        self._active.append(name)

    def _rebuild(self) -> None:
        """Recompile the shared classifier and metering plan for the
        current active set (one rebuild per epoch swap)."""
        from repro.tenancy.shared import SharedFilter
        names = self._active
        if names:
            self._shared = SharedFilter(
                names, [self._subs[n].filter for n in names])
        else:
            self._shared = None
        self._quota_share: Dict[str, float] = {}
        for name in names:
            quota = self._known[name].quota_bytes_per_sec
            if quota is not None:
                self._quota_share[name] = \
                    quota * _WINDOW_S / self.config.cores
                self._win_used.setdefault(name, 0.0)
        self._metered = bool(self._quota_share) or \
            self._pressure_share is not None

    def apply_epoch(self, epoch: int, actions) -> None:
        """Adopt filter-table epoch ``epoch`` by applying its actions.

        Idempotent on the epoch number: a replayed bump (supervised
        restart re-delivers unacked batches verbatim) whose epoch this
        worker already adopted — or was re-seeded past — is a no-op.
        """
        if epoch <= self.epoch:
            return
        for kind, name, wire in actions:
            if kind == "add":
                spec = TenantSpec.from_wire(wire)
                self._known[spec.name] = spec
                self._subs.pop(spec.name, None)  # spec may have changed
                self._activate(spec.name)
            elif kind == "drop":
                if name not in self._pipes:
                    raise TenancyError(
                        f"epoch {epoch} drops unknown tenant {name!r}")
                self._draining.append((name, self._pipes.pop(name)))
                self._active.remove(name)
                self._win_used.pop(name, None)
                self._downgraded.discard(name)
            else:
                raise TenancyError(f"unknown epoch action {kind!r}")
        self._rebuild()
        self.epoch = epoch

    # -- views ----------------------------------------------------------
    def pipelines(self):
        """Every tenant pipeline, active first (in active order), then
        draining (in drop order)."""
        for name in self._active:
            yield self._pipes[name]
        for _name, tp in self._draining:
            yield tp

    def _named_pipelines(self):
        for name in self._active:
            yield name, self._pipes[name]
        for name, tp in self._draining:
            yield name, tp

    @property
    def active_tenants(self) -> List[str]:
        return list(self._active)

    # -- metering -------------------------------------------------------
    def _shed_ledger(self, name: str) -> LossLedger:
        ledger = self._tenant_shed.get(name)
        if ledger is None:
            ledger = LossLedger(self.core_id)
            self._tenant_shed[name] = ledger
        return ledger

    def _rollover(self, new_window: int) -> None:
        """A virtual-second window closed: pick next window's
        downgraded set (heaviest offered load first, ties by name)
        from the *finished* window's per-tenant bytes."""
        if self._pressure_share is not None:
            if new_window == self._window + 1 and self._win_bytes:
                total = sum(self._win_bytes.values())
                share = self._pressure_share
                if total > share:
                    downgraded = set()
                    remaining = total
                    for name in sorted(
                            self._win_bytes,
                            key=lambda n: (-self._win_bytes[n], n)):
                        if remaining <= share:
                            break
                        downgraded.add(name)
                        remaining -= self._win_bytes[name]
                    self._downgraded = downgraded
                else:
                    self._downgraded = set()
            else:
                # The window before ``new_window`` was empty: pressure
                # has passed, nobody stays downgraded.
                self._downgraded = set()
        self._win_bytes = {}
        for name in self._win_used:
            self._win_used[name] = 0.0
        self._window = new_window

    def _meter_rows(self, mbufs, cols,
                    verdicts=None) -> Dict[str, List[int]]:
        """One pass over the burst deciding, per active tenant, which
        rows its pipeline receives. Shed rows are charged to the
        tenant's private ledger (``packets_seen`` counts only sheds
        there — the tenant pipeline's own ledger counts what it was
        fed, so the merged seen == analyzed + shed invariant holds).

        Quota and pressure charge a tenant only for rows its *own*
        packet filter matches (per the shared verdicts; rows the batch
        verdict cannot cover fall back to one scalar classify). Rows
        irrelevant to a tenant ride through unmetered — the tenant's
        pipeline refuses them exactly as it would solo, so co-tenant
        traffic can never eat a tenant's budget or mark it "heavy".
        """
        sels: Dict[str, List[int]] = {n: [] for n in self._active}
        window = self._window
        wires = cols.wire if cols is not None else None
        fast = cols.fast if cols is not None else None
        track_pressure = self._pressure_share is not None
        quota_share = self._quota_share
        for i, mbuf in enumerate(mbufs):
            ts = mbuf.timestamp
            w = int(ts)
            if w > window:
                self._rollover(w)
                window = w
            wire = wires[i] if wires is not None else len(mbuf.data)
            scalar_fan = None
            for t, name in enumerate(self._active):
                if verdicts is not None and fast is not None \
                        and fast[i]:
                    relevant = verdicts[t][i] != NO_MATCH
                else:
                    if scalar_fan is None:
                        scalar_fan = self._shared.classify(mbuf)
                    relevant = scalar_fan[t].matched
                if not relevant:
                    sels[name].append(i)
                    continue
                if name in self._downgraded:
                    ledger = self._shed_ledger(name)
                    ledger.packets_seen += 1
                    ledger.record_shed(_PRESSURE_RUNG,
                                       "tenant_pressure", wire)
                else:
                    share = quota_share.get(name)
                    if share is not None:
                        used = self._win_used[name]
                        if used + wire > share:
                            ledger = self._shed_ledger(name)
                            ledger.packets_seen += 1
                            ledger.record_shed(_QUOTA_RUNG,
                                               "tenant_quota", wire)
                        else:
                            self._win_used[name] = used + wire
                            sels[name].append(i)
                    else:
                        sels[name].append(i)
                if track_pressure:
                    self._win_bytes[name] = \
                        self._win_bytes.get(name, 0.0) + wire
        return sels

    # -- the data path --------------------------------------------------
    def process_batch(self, mbufs) -> None:
        if type(mbufs) is not list and type(mbufs) is not tuple:
            mbufs = list(mbufs)
        if not mbufs:
            return
        ts = mbufs[-1].timestamp
        if ts > self._mux_now:
            self._mux_now = ts
        active = self._active
        if not active:
            return
        shared = self._shared
        if self._use_columnar and shared.batch_supported:
            cols = decode_mbufs(mbufs)
            verdicts = shared.classify_batch(cols)
            n = cols.n
            if not self._metered:
                # Amortize across the fan-out what every tenant would
                # otherwise recompute: total wire bytes and whether row
                # timestamps are nondecreasing (the compact row path
                # needs sortedness to keep per-row clock semantics).
                wire_total = sum(cols.wire)
                stamps = [m.timestamp for m in mbufs]
                ts_sorted = all(a <= b for a, b in
                                zip(stamps, stamps[1:]))
                for t, name in enumerate(active):
                    self._pipes[name].process_batch_rows_shared(
                        mbufs, cols, verdicts[t], wire_total,
                        ts_sorted)
            else:
                sels = self._meter_rows(mbufs, cols, verdicts)
                for t, name in enumerate(active):
                    sel = sels[name]
                    vec = verdicts[t]
                    self._pipes[name].process_batch_rows(
                        [mbufs[i] for i in sel], [cols] * len(sel),
                        sel, [vec[i] for i in sel])
        else:
            # Scalar / mixed fallback: each tenant pipeline runs its own
            # preferred path (a tenant whose trie *is* batch-expressible
            # still goes columnar internally, exactly as it would solo).
            if not self._metered:
                for name in active:
                    self._pipes[name].process_batch(mbufs)
            else:
                sels = self._meter_rows(mbufs, None)
                for name in active:
                    self._pipes[name].process_batch(
                        [mbufs[i] for i in sels[name]])

    def process_packet(self, mbuf) -> None:
        self.process_batch((mbuf,))

    # -- lifecycle forwarding -------------------------------------------
    def advance_time(self, now: float) -> None:
        if now > self._mux_now:
            self._mux_now = now
        for tp in self.pipelines():
            tp.advance_time(now)

    def drain(self) -> None:
        for tp in self.pipelines():
            tp.drain()

    def sample_memory(self) -> None:
        for tp in self.pipelines():
            tp.sample_memory()

    def set_span_ctx(self, ctx) -> None:
        for tp in self.pipelines():
            tp.set_span_ctx(ctx)

    def fold_fault_counters(self) -> None:
        for tp in self.pipelines():
            tp.fold_fault_counters()

    # -- monitoring surface ---------------------------------------------
    @property
    def now(self) -> float:
        now = self._mux_now
        for tp in self.pipelines():
            if tp.now > now:
                now = tp.now
        return now

    @property
    def memory_bytes(self) -> int:
        return sum(tp.memory_bytes for tp in self.pipelines())

    @property
    def table(self) -> _TableView:
        return _TableView(self)

    @property
    def overload_rung(self) -> int:
        rung = 0
        for tp in self.pipelines():
            if tp.overload_rung > rung:
                rung = tp.overload_rung
        return rung

    @property
    def overload_shed_packets(self) -> int:
        shed = sum(tp.overload_shed_packets for tp in self.pipelines())
        shed += sum(ledger.packets_shed
                    for ledger in self._tenant_shed.values())
        return shed

    @property
    def overload_failfast_at(self) -> Optional[float]:
        tripped = [tp.overload_failfast_at for tp in self.pipelines()
                   if tp.overload_failfast_at is not None]
        return min(tripped) if tripped else None

    @property
    def _shedding(self) -> bool:
        return any(tp._shedding for tp in self.pipelines())

    @property
    def stats(self) -> TenantStatsBundle:
        """A fresh merged snapshot: whole-core totals on the CoreStats
        face, the per-tenant breakdown underneath."""
        bundle = TenantStatsBundle(self.config.cost_model,
                                   telemetry=self.config.telemetry)
        contributed = 0
        for name, tp in self._named_pipelines():
            tp_stats = tp.stats
            bundle.merge(tp_stats)
            mine = bundle.per_tenant.get(name)
            if mine is None:
                mine = CoreStats(self.config.cost_model,
                                 telemetry=self.config.telemetry)
                bundle.per_tenant[name] = mine
            mine.merge(tp_stats)
            if bundle.spans is None and tp_stats.spans is not None:
                bundle.spans = tp_stats.spans
            contributed += 1
        for name, ledger in self._tenant_shed.items():
            snap = LossLedger(self.core_id)
            snap.merge(ledger)
            bundle.tenant_shed[name] = snap
            if bundle.overload is None:
                bundle.overload = LossLedger(core_id=-1)
            bundle.overload.merge(ledger)
            tenant_stats = bundle.per_tenant.get(name)
            if tenant_stats is not None:
                if tenant_stats.overload is None:
                    tenant_stats.overload = LossLedger(core_id=-1)
                tenant_stats.overload.merge(ledger)
        if contributed > 1:
            bundle.memory_samples = _combine_memory_samples(
                bundle.memory_samples)
        bundle.epoch = self.epoch
        return bundle


def _combine_memory_samples(samples):
    """Fold per-tenant memory samples taken at the same virtual instant
    into one whole-core sample (sum of live connections and bytes), so
    the aggregate peak reflects the core's true footprint."""
    combined: Dict[float, List[int]] = {}
    for ts, conns, mem in samples:
        entry = combined.get(ts)
        if entry is None:
            combined[ts] = [conns, mem]
        else:
            entry[0] += conns
            entry[1] += mem
    return [(ts, entry[0], entry[1])
            for ts, entry in sorted(combined.items())]
