"""repro.netem — seeded, deterministic link impairment + mitigation.

See docs/SCENARIOS.md for the scenario-suite guide.
"""

from repro.netem.impair import (
    ImpairedLink,
    corrupt_frame,
    fix_checksums,
    frame_checksums_ok,
)
from repro.netem.ledger import (
    DROP_CAUSES,
    ImpairmentLedger,
    check_impairment_accounting,
)
from repro.netem.model import (
    GilbertElliott,
    GilbertElliottChain,
    ImpairmentConfig,
)
from repro.netem.trace import CLEAN, Decision, ImpairmentTrace

__all__ = [
    "CLEAN",
    "DROP_CAUSES",
    "Decision",
    "GilbertElliott",
    "GilbertElliottChain",
    "ImpairedLink",
    "ImpairmentConfig",
    "ImpairmentLedger",
    "ImpairmentTrace",
    "check_impairment_accounting",
    "corrupt_frame",
    "fix_checksums",
    "frame_checksums_ok",
]
