"""Link-impairment models and configuration.

The impairment layer treats the tap as a physical link that can
misbehave: packets are lost (independently or in bursts), corrupted,
duplicated, delayed, or displaced. Every decision is drawn from seeded
RNG streams keyed on the configuration seed and the global packet
index, so a scenario is exactly reproducible — and replayable from a
recorded trace file (:mod:`repro.netem.trace`).

Burst loss uses the classic Gilbert-Elliott two-state Markov chain:
the link alternates between a GOOD state (low loss) and a BAD state
(high loss); the state dwell times are geometric with parameters
``p`` (good→bad) and ``r`` (bad→good). ``p << r`` yields short, dense
loss bursts separated by long clean stretches — the shape LinkGuardian
measures on real corrupting links.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state Markov burst-loss model parameters.

    Attributes:
        p: Transition probability GOOD → BAD per packet.
        r: Transition probability BAD → GOOD per packet.
        loss_good: Per-packet loss probability while GOOD.
        loss_bad: Per-packet loss probability while BAD.
    """

    p: float
    r: float
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        for name in ("p", "r", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"Gilbert-Elliott {name} must be in [0, 1], "
                    f"got {value!r}")

    @classmethod
    def parse(cls, spec: str) -> "GilbertElliott":
        """Parse the CLI form ``P,R[,LOSS_BAD[,LOSS_GOOD]]``."""
        parts = [part.strip() for part in spec.split(",")]
        if not 2 <= len(parts) <= 4:
            raise ConfigError(
                f"bad Gilbert-Elliott spec {spec!r}: want "
                f"'P,R[,LOSS_BAD[,LOSS_GOOD]]' (e.g. '0.01,0.25')")
        try:
            values = [float(part) for part in parts]
        except ValueError:
            raise ConfigError(
                f"bad Gilbert-Elliott spec {spec!r}: non-numeric field")
        p, r = values[0], values[1]
        loss_bad = values[2] if len(values) > 2 else 1.0
        loss_good = values[3] if len(values) > 3 else 0.0
        return cls(p=p, r=r, loss_good=loss_good, loss_bad=loss_bad)

    def to_dict(self) -> Dict[str, float]:
        return {"p": self.p, "r": self.r, "loss_good": self.loss_good,
                "loss_bad": self.loss_bad}


class GilbertElliottChain:
    """The stepped chain: one :meth:`step` per offered packet."""

    __slots__ = ("params", "bad", "_rng")

    def __init__(self, params: GilbertElliott, rng: Random) -> None:
        self.params = params
        self.bad = False  # links start healthy
        self._rng = rng

    def step(self) -> bool:
        """Advance one packet; return True if that packet is lost."""
        params = self.params
        rng = self._rng
        loss = params.loss_bad if self.bad else params.loss_good
        lost = loss > 0.0 and rng.random() < loss
        if self.bad:
            if rng.random() < params.r:
                self.bad = False
        elif rng.random() < params.p:
            self.bad = True
        return lost


@dataclass(frozen=True)
class ImpairmentConfig:
    """Everything the link-impairment layer configures.

    The model fields describe the physical link (applied in the parent
    process, before RSS dispatch, exactly like
    :class:`~repro.resilience.faults.PacketFaultInjector` — so the
    impaired stream is identical across backends and worker counts).
    The mitigation fields describe the receiving NIC/driver: checksum
    quarantine and the per-link disable-and-repair policy.

    All decisions derive from ``seed``; two runs with the same seed and
    the same traffic produce byte-identical impaired streams.
    """

    #: Seed for every impairment RNG stream.
    seed: int = 0
    #: Independent (Bernoulli) per-packet loss probability.
    loss_rate: float = 0.0
    #: Gilbert-Elliott burst-loss parameters; None disables the chain.
    burst: Optional[GilbertElliott] = None
    #: Per-packet frame-corruption probability (1-8 payload bit flips).
    corrupt_rate: float = 0.0
    #: Recompute IPv4/TCP/UDP checksums after flipping bits, making the
    #: corruption *silent* (undetectable by checksum verification) —
    #: the nastier failure mode LinkGuardian's "corropt" handling
    #: distinguishes from ordinary FCS-detected corruption.
    corrupt_silent: bool = False
    #: Per-packet probability of bounded displacement (reordering).
    reorder_rate: float = 0.0
    #: Maximum positions a reordered packet may be displaced (later).
    reorder_depth: int = 8
    #: Per-packet duplication probability (one extra copy).
    duplicate_rate: float = 0.0
    #: Maximum extra latency per packet (uniform in [0, jitter_s)).
    jitter_s: float = 0.0
    #: Replay decisions from a recorded trace file instead of sampling
    #: the model (mutually exclusive with the model fields above).
    trace_path: Optional[str] = None
    #: Record every sampled decision to this trace file.
    record_path: Optional[str] = None
    # -- mitigation (the receiving side) -------------------------------
    #: Verify IPv4/TCP/UDP checksums at ingress and quarantine frames
    #: that fail, attributed per link (feeds the same "refuse damaged
    #: input" machinery as the PR-3 callback quarantine).
    quarantine: bool = False
    #: Detected-bad frames within :attr:`disable_window` before a link
    #: is administratively disabled (0 disables the policy).
    disable_threshold: int = 0
    #: Sliding window (frames, per link) for the disable decision.
    disable_window: int = 256
    #: Virtual seconds a disabled link stays down before re-enabling.
    repair_time: float = 0.5

    def __post_init__(self) -> None:
        for name in ("loss_rate", "corrupt_rate", "reorder_rate",
                     "duplicate_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"impairment {name} must be in [0, 1], got {value!r}")
        if self.reorder_depth < 1:
            raise ConfigError("impairment reorder_depth must be >= 1")
        if self.jitter_s < 0:
            raise ConfigError("impairment jitter_s must be >= 0")
        if self.disable_threshold < 0:
            raise ConfigError("impairment disable_threshold must be >= 0")
        if self.disable_window < 1:
            raise ConfigError("impairment disable_window must be >= 1")
        if self.repair_time <= 0:
            raise ConfigError("impairment repair_time must be > 0")
        if self.corrupt_silent and self.corrupt_rate == 0.0 \
                and self.trace_path is None:
            raise ConfigError(
                "impairment corrupt_silent has no effect without "
                "corrupt_rate > 0 (or a replay trace)")
        if self.trace_path is not None and self.models_link:
            raise ConfigError(
                "impairment trace_path conflicts with model parameters: "
                "a replay trace already fixes every per-packet decision; "
                "drop the loss/corrupt/reorder/duplicate/jitter fields "
                "or the trace")
        if self.record_path is not None and self.trace_path is not None:
            raise ConfigError(
                "impairment record_path with trace_path would re-record "
                "the replayed trace verbatim; drop one of them")

    @property
    def models_link(self) -> bool:
        """True when any sampled impairment model is active."""
        return (self.loss_rate > 0.0 or self.burst is not None
                or self.corrupt_rate > 0.0 or self.reorder_rate > 0.0
                or self.duplicate_rate > 0.0 or self.jitter_s > 0.0)

    @property
    def impairs(self) -> bool:
        """True when the link can mutate the stream (model or trace)."""
        return self.models_link or self.trace_path is not None

    @property
    def mitigates(self) -> bool:
        """True when a receiving-side mitigation policy is active."""
        return self.quarantine or self.disable_threshold > 0

    @property
    def enabled(self) -> bool:
        """True when wrapping the traffic source does anything at all."""
        return self.impairs or self.mitigates or \
            self.record_path is not None

    def to_dict(self) -> Dict:
        """Deterministic JSON-friendly form (ledger/NDJSON headers)."""
        return {
            "seed": self.seed,
            "loss_rate": self.loss_rate,
            "burst": self.burst.to_dict() if self.burst else None,
            "corrupt_rate": self.corrupt_rate,
            "corrupt_silent": self.corrupt_silent,
            "reorder_rate": self.reorder_rate,
            "reorder_depth": self.reorder_depth,
            "duplicate_rate": self.duplicate_rate,
            "jitter_s": self.jitter_s,
            "trace_path": self.trace_path,
            "quarantine": self.quarantine,
            "disable_threshold": self.disable_threshold,
            "disable_window": self.disable_window,
            "repair_time": self.repair_time,
        }
