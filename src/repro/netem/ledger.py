"""The impairment ledger: every impaired packet, attributed.

The PR-4 loss ledger's discipline — degraded output must carry a
precise statement of what was *not* analyzed — extends to the link
layer here. Every packet the impairment layer touches is counted by
cause and by ingress link, and the conservation invariant

    offered + duplicated == delivered + lost + quarantined + link_shed

holds exactly. Combined with the NIC's ``ingress == delivered`` and
the overload ledger's ``seen == analyzed + shed``, a degraded run's
books balance end to end: ``seen == analyzed + shed + impaired``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Drop causes, in reporting order.
DROP_CAUSES = ("loss", "quarantine", "link_disabled")


class ImpairmentLedger:
    """Counters for one impaired link layer (parent-side, one per run)."""

    def __init__(self, config_dict: Optional[Dict] = None) -> None:
        #: The configuration that produced this ledger (for exports).
        self.config = config_dict or {}
        self.offered = 0
        self.offered_bytes = 0
        self.delivered = 0
        self.delivered_bytes = 0
        #: Extra copies emitted by the duplication model.
        self.duplicated = 0
        #: Frames mutated by the corruption model (and the subset whose
        #: checksums were recomputed, making the damage silent).
        self.corrupted = 0
        self.corrupted_silent = 0
        #: Frames displaced later than their arrival position.
        self.reordered = 0
        #: Frames given extra latency by the jitter model.
        self.delayed = 0
        #: Drops by cause: the loss model, checksum quarantine, and the
        #: disable-and-repair policy shedding a disabled link.
        self.dropped: Dict[str, int] = {c: 0 for c in DROP_CAUSES}
        self.dropped_bytes: Dict[str, int] = {c: 0 for c in DROP_CAUSES}
        #: Per-link (ingress port) attribution.
        self.per_link: Dict[int, Dict[str, int]] = {}
        #: Disable/repair transitions: (virtual ts, link, event, detail).
        self.link_events: List[Tuple[float, int, str, str]] = []

    # -- recording -----------------------------------------------------
    def _link(self, port: int) -> Dict[str, int]:
        link = self.per_link.get(port)
        if link is None:
            link = {"offered": 0, "delivered": 0, "loss": 0,
                    "corrupted": 0, "quarantine": 0, "link_disabled": 0,
                    "disables": 0}
            self.per_link[port] = link
        return link

    def record_offered(self, port: int, wire_bytes: int) -> None:
        self.offered += 1
        self.offered_bytes += wire_bytes
        self._link(port)["offered"] += 1

    def record_delivered(self, port: int, wire_bytes: int) -> None:
        self.delivered += 1
        self.delivered_bytes += wire_bytes
        self._link(port)["delivered"] += 1

    def record_drop(self, port: int, wire_bytes: int, cause: str) -> None:
        self.dropped[cause] += 1
        self.dropped_bytes[cause] += wire_bytes
        self._link(port)[cause] += 1

    def record_corrupted(self, port: int, silent: bool) -> None:
        self.corrupted += 1
        if silent:
            self.corrupted_silent += 1
        self._link(port)["corrupted"] += 1

    def record_link_event(self, ts: float, port: int, event: str,
                          detail: str) -> None:
        self.link_events.append((ts, port, event, detail))
        if event == "disable":
            self._link(port)["disables"] += 1

    # -- reading -------------------------------------------------------
    @property
    def dropped_total(self) -> int:
        return sum(self.dropped.values())

    @property
    def goodput_fraction(self) -> float:
        """Delivered wire bytes over offered wire bytes."""
        if not self.offered_bytes:
            return 1.0
        return self.delivered_bytes / self.offered_bytes

    def check(self) -> None:
        """Assert the link-layer conservation invariant."""
        wire = self.offered + self.duplicated
        accounted = self.delivered + self.dropped_total
        if wire != accounted:
            raise AssertionError(
                f"impairment ledger out of balance: offered "
                f"{self.offered} + duplicated {self.duplicated} = "
                f"{wire} on the wire, but delivered {self.delivered} + "
                f"dropped {self.dropped_total} = {accounted}")

    def to_dict(self) -> Dict:
        """Deterministic JSON-friendly snapshot."""
        return {
            "offered": self.offered,
            "offered_bytes": self.offered_bytes,
            "delivered": self.delivered,
            "delivered_bytes": self.delivered_bytes,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "corrupted_silent": self.corrupted_silent,
            "reordered": self.reordered,
            "delayed": self.delayed,
            "dropped": dict(self.dropped),
            "dropped_bytes": dict(self.dropped_bytes),
            "per_link": {str(port): dict(link) for port, link
                         in sorted(self.per_link.items())},
            "link_events": [list(event) for event in self.link_events],
            "config": self.config,
        }

    def describe(self) -> str:
        parts = [
            f"impairment: offered={self.offered} "
            f"delivered={self.delivered} "
            f"(goodput {self.goodput_fraction * 100:.1f}%)",
            f"  lost={self.dropped['loss']} "
            f"quarantined={self.dropped['quarantine']} "
            f"link_shed={self.dropped['link_disabled']} "
            f"duplicated={self.duplicated}",
            f"  corrupted={self.corrupted} "
            f"(silent {self.corrupted_silent}) "
            f"reordered={self.reordered} delayed={self.delayed}",
        ]
        disables = [e for e in self.link_events if e[2] == "disable"]
        if disables:
            links = sorted({e[1] for e in disables})
            parts.append(f"  link disables: {len(disables)} "
                         f"on links {links}")
        return "\n".join(parts)


def check_impairment_accounting(report) -> None:
    """Assert the end-to-end conservation chain for one run.

    ``offered + duplicated`` packets hit the wire; the impairment
    ledger accounts each as delivered or dropped-with-cause; every
    delivered packet is an ingress packet at the NIC; and — when an
    overload policy ran — the loss ledger accounts each seen packet as
    analyzed or shed. Raises AssertionError on any leak.
    """
    ledger = report.impairment
    if ledger is None:
        raise AssertionError("run has no impairment ledger")
    ledger.check()
    ingress = report.stats.ingress_packets
    if ledger.delivered != ingress:
        raise AssertionError(
            f"delivered {ledger.delivered} != NIC ingress {ingress}: "
            f"packets leaked between the link and the NIC")
    if report.overload is not None:
        overload = report.overload
        seen = overload.packets_seen
        analyzed = overload.packets_analyzed
        shed = overload.packets_shed
        if seen != analyzed + shed:
            raise AssertionError(
                f"loss ledger out of balance: seen {seen} != analyzed "
                f"{analyzed} + shed {shed}")
