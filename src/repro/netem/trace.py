"""Loss-trace record/replay: an impairment scenario as an artifact.

A trace file pins every per-packet impairment decision of a run, so a
scenario found once (a nasty burst, a pathological reorder pattern) can
be committed to the repository and replayed byte-identically forever —
LinkGuardian ships its measured link loss traces the same way.

Format (plain text, diff-friendly)::

    #repro-impair-trace v1 seed=42
    17 drop
    23 corrupt flips=3 silent=0
    40 dup
    51 delay 0.000130
    64 reorder 3

One line per *event*; the leading integer is the global packet index
(0-based, counted over the whole traffic source before RSS dispatch).
A packet may carry several events (``corrupt`` + ``dup`` + ``delay`` +
``reorder``); ``drop`` excludes the rest. Unlisted packets pass clean.
The header ``seed`` reseeds the corruption-content RNG, so the flipped
bits — not just the flip decision — replay exactly.
"""

from __future__ import annotations

from typing import Dict, IO, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigError

_HEADER_PREFIX = "#repro-impair-trace"
_VERSION = 1


class Decision:
    """The impairment decision for one offered packet."""

    __slots__ = ("drop", "corrupt_flips", "corrupt_silent", "dup",
                 "delay", "displace")

    def __init__(self, drop: bool = False, corrupt_flips: int = 0,
                 corrupt_silent: bool = False, dup: bool = False,
                 delay: float = 0.0, displace: int = 0) -> None:
        self.drop = drop
        self.corrupt_flips = corrupt_flips
        self.corrupt_silent = corrupt_silent
        self.dup = dup
        self.delay = delay
        self.displace = displace

    @property
    def clean(self) -> bool:
        return not (self.drop or self.corrupt_flips or self.dup
                    or self.delay or self.displace)

    def __repr__(self) -> str:  # debugging aid only
        return (f"Decision(drop={self.drop}, flips={self.corrupt_flips},"
                f" silent={self.corrupt_silent}, dup={self.dup}, "
                f"delay={self.delay}, displace={self.displace})")


#: Shared immutable no-op decision (the overwhelmingly common case).
CLEAN = Decision()


class ImpairmentTrace:
    """A recorded (or loaded) per-packet decision schedule."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.events: Dict[int, Decision] = {}

    # -- recording -----------------------------------------------------
    def record(self, index: int, decision: Decision) -> None:
        if not decision.clean:
            self.events[index] = decision

    # -- replay --------------------------------------------------------
    def decision_for(self, index: int) -> Decision:
        return self.events.get(index, CLEAN)

    @property
    def max_index(self) -> int:
        return max(self.events) if self.events else -1

    # -- serialization -------------------------------------------------
    def to_lines(self) -> List[str]:
        lines = [f"{_HEADER_PREFIX} v{_VERSION} seed={self.seed}"]
        for index in sorted(self.events):
            d = self.events[index]
            if d.drop:
                lines.append(f"{index} drop")
                continue
            if d.corrupt_flips:
                lines.append(f"{index} corrupt flips={d.corrupt_flips} "
                             f"silent={1 if d.corrupt_silent else 0}")
            if d.dup:
                lines.append(f"{index} dup")
            if d.delay:
                lines.append(f"{index} delay {d.delay!r}")
            if d.displace:
                lines.append(f"{index} reorder {d.displace}")
        return lines

    def save(self, path_or_file: Union[str, IO[str]]) -> None:
        text = "\n".join(self.to_lines()) + "\n"
        if hasattr(path_or_file, "write"):
            path_or_file.write(text)
        else:
            with open(path_or_file, "w") as handle:
                handle.write(text)

    @classmethod
    def from_lines(cls, lines) -> "ImpairmentTrace":
        it: Iterator[str] = iter(lines)
        header = next(it, None)
        if header is None or not header.startswith(_HEADER_PREFIX):
            raise ConfigError(
                f"not an impairment trace (missing "
                f"'{_HEADER_PREFIX}' header)")
        seed = 0
        for token in header.split():
            if token.startswith("seed="):
                try:
                    seed = int(token[5:])
                except ValueError:
                    raise ConfigError(
                        f"bad trace header seed in {header!r}")
        trace = cls(seed=seed)
        for raw in it:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            index, verb, args = _parse_event(line)
            decision = trace.events.get(index)
            if decision is None or decision is CLEAN:
                decision = Decision()
                trace.events[index] = decision
            _apply_event(decision, verb, args, line)
        return trace

    @classmethod
    def load(cls, path: str) -> "ImpairmentTrace":
        with open(path) as handle:
            return cls.from_lines(handle)


def _parse_event(line: str) -> Tuple[int, str, List[str]]:
    parts = line.split()
    if len(parts) < 2:
        raise ConfigError(f"bad trace line {line!r}")
    try:
        index = int(parts[0])
    except ValueError:
        raise ConfigError(f"bad trace packet index in {line!r}")
    if index < 0:
        raise ConfigError(f"negative trace packet index in {line!r}")
    return index, parts[1], parts[2:]


def _apply_event(decision: Decision, verb: str, args: List[str],
                 line: str) -> None:
    if verb == "drop":
        decision.drop = True
    elif verb == "corrupt":
        flips, silent = 1, False
        for arg in args:
            if arg.startswith("flips="):
                flips = int(arg[6:])
            elif arg.startswith("silent="):
                silent = arg[7:] not in ("0", "false")
        if flips < 1:
            raise ConfigError(f"bad corrupt flips in {line!r}")
        decision.corrupt_flips = flips
        decision.corrupt_silent = silent
    elif verb == "dup":
        decision.dup = True
    elif verb == "delay":
        if not args:
            raise ConfigError(f"missing delay value in {line!r}")
        delay = float(args[0])
        if delay < 0:
            raise ConfigError(f"negative delay in {line!r}")
        decision.delay = delay
    elif verb == "reorder":
        if not args:
            raise ConfigError(f"missing reorder displacement in {line!r}")
        displace = int(args[0])
        if displace < 1:
            raise ConfigError(f"bad reorder displacement in {line!r}")
        decision.displace = displace
    else:
        raise ConfigError(f"unknown trace event {verb!r} in {line!r}")
