"""The impaired link: wrap any traffic source in seeded misbehavior.

:class:`ImpairedLink` sits between a traffic source and the runtime —
in the parent process, before RSS dispatch, exactly where
:class:`~repro.resilience.faults.PacketFaultInjector` runs — so the
impaired stream is byte-identical across backends and worker counts.
It accepts per-mbuf iterables *and* the columnar
:class:`~repro.packet.batch.PackedBatch` path; packed batches get
drop/duplicate/reorder surgery on blob slices without rebuilding a
per-packet object graph.

Two halves:

* the **link model** (loss, corruption, duplication, jitter, bounded
  reordering) driven by :class:`~repro.netem.model.ImpairmentConfig`
  or a replayed :class:`~repro.netem.trace.ImpairmentTrace`;
* the **receiver mitigations**: checksum quarantine (drop frames that
  fail real IPv4/TCP/UDP checksum verification — silent corruption,
  with recomputed checksums, sails through by construction) and
  LinkGuardian-style disable-and-repair (a link exceeding a bad-frame
  threshold within a sliding window is administratively disabled for a
  repair period, every shed frame attributed in the ledger).
"""

from __future__ import annotations

import struct
from collections import deque
from heapq import heappop, heappush
from random import Random
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.netem.ledger import ImpairmentLedger
from repro.netem.model import GilbertElliottChain, ImpairmentConfig
from repro.netem.trace import CLEAN, Decision, ImpairmentTrace
from repro.packet.batch import PackedBatch
from repro.packet.builder import checksum16
from repro.packet.ethernet import ETHERTYPE_IPV4, ETHERTYPE_IPV6
from repro.packet.ipv4 import PROTO_TCP, PROTO_UDP
from repro.packet.mbuf import Mbuf

_ETH_HLEN = 14
_VLAN_TYPES = (0x8100, 0x88A8)
_PACK_H = struct.Struct("!H").pack
_PACK_PSEUDO4 = struct.Struct("!BBH").pack
_PACK_PSEUDO6 = struct.Struct("!IHBB").pack


def _walk_headers(data: bytes) -> Optional[Tuple[int, int, int, int,
                                                 int, bool]]:
    """Minimal L2/L3 walk: (ip_off, ip_hlen, proto, l4_off, l4_len,
    is_v4), or None when the frame is not a verifiable IP packet
    (non-IP ethertype, truncation, fragments, v6 extension ambiguity
    is ignored — proto is taken as the next header)."""
    n = len(data)
    if n < _ETH_HLEN:
        return None
    ethertype = (data[12] << 8) | data[13]
    off = _ETH_HLEN
    while ethertype in _VLAN_TYPES:
        if n < off + 4:
            return None
        ethertype = (data[off + 2] << 8) | data[off + 3]
        off += 4
    if ethertype == ETHERTYPE_IPV4:
        if n < off + 20:
            return None
        vihl = data[off]
        if vihl >> 4 != 4:
            return None
        ihl = (vihl & 0xF) * 4
        if ihl < 20 or n < off + ihl:
            return None
        total = (data[off + 2] << 8) | data[off + 3]
        if total < ihl or off + total > n:
            return None
        # Fragments cannot be L4-verified (payload split across frames).
        if data[off + 6] & 0x20 or \
                ((data[off + 6] & 0x1F) << 8) | data[off + 7]:
            return None
        return off, ihl, data[off + 9], off + ihl, total - ihl, True
    if ethertype == ETHERTYPE_IPV6:
        if n < off + 40:
            return None
        plen = (data[off + 4] << 8) | data[off + 5]
        if off + 40 + plen > n:
            return None
        return off, 40, data[off + 6], off + 40, plen, False
    return None


def _pseudo(data: bytes, off: int, is_v4: bool, proto: int,
            l4_len: int) -> bytes:
    if is_v4:
        return bytes(data[off + 12:off + 20]) + \
            _PACK_PSEUDO4(0, proto, l4_len)
    return bytes(data[off + 8:off + 40]) + \
        _PACK_PSEUDO6(l4_len, 0, 0, proto)


def frame_checksums_ok(data) -> Optional[bool]:
    """Verify the frame's IPv4 header and TCP/UDP checksums.

    Returns False on any failed verifiable checksum, True when at
    least one checksum verified clean, and None when nothing on the
    frame is verifiable (non-IP, truncated, fragmented, or a UDP/IPv4
    datagram with checksumming disabled). Quarantine only acts on an
    explicit False — unverifiable traffic is never punished.
    """
    if type(data) is not bytes:
        data = bytes(data)
    walked = _walk_headers(data)
    if walked is None:
        return None
    off, ihl, proto, l4_off, l4_len, is_v4 = walked
    verified = False
    if is_v4:
        if checksum16(data[off:off + ihl]) != 0:
            return False
        verified = True
    if proto == PROTO_TCP and l4_len >= 20:
        segment = data[l4_off:l4_off + l4_len]
        if checksum16(_pseudo(data, off, is_v4, proto, l4_len)
                      + segment) != 0:
            return False
        verified = True
    elif proto == PROTO_UDP and l4_len >= 8:
        segment = data[l4_off:l4_off + l4_len]
        if not (is_v4 and segment[6:8] == b"\x00\x00"):
            if checksum16(_pseudo(data, off, is_v4, proto, l4_len)
                          + segment) != 0:
                return False
            verified = True
    return True if verified else None


def fix_checksums(frame: bytearray) -> None:
    """Recompute the IPv4 header and TCP/UDP checksums in place.

    Best-effort: a frame whose headers no longer walk (corruption hit
    a length field) is left alone — it will read as detectably bad,
    which is the honest outcome.
    """
    data = bytes(frame)
    walked = _walk_headers(data)
    if walked is None:
        return
    off, ihl, proto, l4_off, l4_len, is_v4 = walked
    if is_v4:
        frame[off + 10:off + 12] = b"\x00\x00"
        csum = checksum16(bytes(frame[off:off + ihl]))
        frame[off + 10:off + 12] = _PACK_H(csum)
    if proto == PROTO_TCP and l4_len >= 20:
        csum_off = l4_off + 16
    elif proto == PROTO_UDP and l4_len >= 8:
        csum_off = l4_off + 6
    else:
        return
    frame[csum_off:csum_off + 2] = b"\x00\x00"
    csum = checksum16(_pseudo(bytes(frame), off, is_v4, proto, l4_len)
                      + bytes(frame[l4_off:l4_off + l4_len]))
    if proto == PROTO_UDP and csum == 0:
        csum = 0xFFFF
    frame[csum_off:csum_off + 2] = _PACK_H(csum)


def corrupt_frame(data: bytes, flips: int, silent: bool,
                  rng: Random) -> bytes:
    """Flip ``flips`` random bits; optionally re-checksum (silent).

    Flips land in the L4 payload when one exists (so detectable
    corruption is exactly what a checksum catches), else anywhere past
    the Ethernet header.
    """
    if type(data) is not bytes:
        data = bytes(data)
    if not data:
        return data
    frame = bytearray(data)
    start = min(_ETH_HLEN, len(frame) - 1)
    walked = _walk_headers(data)
    if walked is not None:
        off, ihl, proto, l4_off, l4_len, is_v4 = walked
        if proto == PROTO_TCP and l4_len >= 20:
            payload_off = l4_off + ((data[l4_off + 12] >> 4) * 4)
        elif proto == PROTO_UDP and l4_len >= 8:
            payload_off = l4_off + 8
        else:
            payload_off = l4_off
        if payload_off < len(frame):
            start = payload_off
        elif l4_off < len(frame):
            start = l4_off
    for _ in range(flips):
        pos = rng.randrange(start, len(frame))
        frame[pos] ^= 1 << rng.randrange(8)
    if silent:
        fix_checksums(frame)
    return bytes(frame)


class _LinkState:
    """Disable-and-repair state for one ingress link (port)."""

    __slots__ = ("window", "bad_in_window", "disabled_until")

    def __init__(self) -> None:
        self.window: deque = deque()
        self.bad_in_window = 0
        self.disabled_until: Optional[float] = None


class ImpairedLink:
    """Seeded link impairment + receiver mitigation over a traffic
    source. Construct one per run; :meth:`wrap` is single-use."""

    def __init__(self, config: ImpairmentConfig,
                 ledger: Optional[ImpairmentLedger] = None) -> None:
        self.config = config
        self.ledger = ledger if ledger is not None \
            else ImpairmentLedger(config.to_dict())
        self._trace: Optional[ImpairmentTrace] = None
        if config.trace_path is not None:
            self._trace = ImpairmentTrace.load(config.trace_path)
        #: Seed governing corruption *content*: the replayed trace's
        #: recorded seed when replaying, else the config seed — so a
        #: replay reproduces the exact flipped bits.
        self._content_seed = self._trace.seed if self._trace is not None \
            else config.seed
        self._decision_rng = Random(f"repro.netem:{config.seed}:model")
        self._chain: Optional[GilbertElliottChain] = None
        if config.burst is not None:
            self._chain = GilbertElliottChain(config.burst,
                                              self._decision_rng)
        self._record: Optional[ImpairmentTrace] = None
        if config.record_path is not None:
            self._record = ImpairmentTrace(config.seed)
        self._impairing = config.impairs
        self._verify = config.mitigates
        self._links: Dict[int, _LinkState] = {}
        self._index = 0       # global offered-packet index
        self._next_pos = 0    # next base emission position
        self._tie = 0         # heap tiebreak
        # Pending (pos, tie, data, ts, port, mbuf) entries awaiting
        # their emission slot (reordering / duplication lookahead).
        self._heap: List[tuple] = []
        self._last_out_ts = float("-inf")
        self._closed = False

    # -- the wrap ------------------------------------------------------
    def wrap(self, traffic: Iterable[Union[Mbuf, PackedBatch]]
             ) -> Iterator[Union[Mbuf, PackedBatch]]:
        """Yield the impaired stream, preserving the input's shape:
        mbufs stay mbufs, packed batches stay packed batches."""
        last_was_batch = False
        out: List[tuple] = []
        for item in traffic:
            del out[:]
            if type(item) is PackedBatch:
                last_was_batch = True
                view = memoryview(item.blob)
                offsets = item.offsets
                ports = item.ports
                for i, ts in enumerate(item.timestamps):
                    self._offer(view[offsets[i]:offsets[i + 1]], ts,
                                ports[i], None, out)
                if out:
                    yield PackedBatch.from_rows(
                        [(data, ts, port) for data, ts, port, _ in out],
                        queue=item.queue)
            else:
                last_was_batch = False
                self._offer(item.data, item.timestamp, item.port, item,
                            out)
                for entry in out:
                    yield self._as_mbuf(entry)
        del out[:]
        self._drain(out)
        if out:
            if last_was_batch:
                yield PackedBatch.from_rows(
                    [(data, ts, port) for data, ts, port, _ in out])
            else:
                for entry in out:
                    yield self._as_mbuf(entry)
        self.close()

    @staticmethod
    def _as_mbuf(entry: tuple) -> Mbuf:
        data, ts, port, mbuf = entry
        if mbuf is not None and mbuf.timestamp == ts:
            return mbuf  # untouched: pass the original object through
        return Mbuf(data, ts, port)

    def close(self) -> None:
        """Flush the recorded trace (idempotent; runtime calls this
        even when the run aborts mid-stream)."""
        if self._closed:
            return
        self._closed = True
        if self._record is not None and \
                self.config.record_path is not None:
            self._record.save(self.config.record_path)

    # -- per-packet model ----------------------------------------------
    def _decide(self, index: int) -> Decision:
        config = self.config
        if self._trace is not None:
            return self._trace.decision_for(index)
        rng = self._decision_rng
        drop = False
        if self._chain is not None and self._chain.step():
            drop = True
        if not drop and config.loss_rate and \
                rng.random() < config.loss_rate:
            drop = True
        if drop:
            decision = Decision(drop=True)
        else:
            flips = 0
            dup = False
            delay = 0.0
            displace = 0
            if config.corrupt_rate and \
                    rng.random() < config.corrupt_rate:
                flips = 1 + rng.randrange(8)
            if config.duplicate_rate and \
                    rng.random() < config.duplicate_rate:
                dup = True
            if config.reorder_rate and \
                    rng.random() < config.reorder_rate:
                displace = 1 + rng.randrange(config.reorder_depth)
            if config.jitter_s and rng.random() < 0.5:
                delay = rng.random() * config.jitter_s
            if not (flips or dup or delay or displace):
                decision = CLEAN
            else:
                decision = Decision(
                    corrupt_flips=flips,
                    corrupt_silent=config.corrupt_silent and flips > 0,
                    dup=dup, delay=delay, displace=displace)
        if self._record is not None:
            self._record.record(index, decision)
        return decision

    def _offer(self, data, ts: float, port: int, mbuf: Optional[Mbuf],
               out: List[tuple]) -> None:
        """Run one source packet through the link; emissions whose
        slot is due are appended to ``out`` as (data, ts, port, mbuf)."""
        ledger = self.ledger
        size = len(data)
        index = self._index
        self._index += 1
        ledger.record_offered(port, size)
        decision = self._decide(index) if self._impairing else CLEAN
        if decision.drop:
            ledger.record_drop(port, size, "loss")
            return
        if decision.corrupt_flips:
            data = corrupt_frame(
                bytes(data), decision.corrupt_flips,
                decision.corrupt_silent,
                Random(f"repro.netem:{self._content_seed}:"
                       f"corrupt:{index}"))
            mbuf = None
            ledger.record_corrupted(port, decision.corrupt_silent)
        if decision.delay:
            ts += decision.delay
            mbuf = None
            ledger.delayed += 1
        base = self._next_pos
        self._next_pos += 1
        pos = base + decision.displace
        if decision.displace:
            ledger.reordered += 1
        heappush(self._heap, (pos, self._tie, data, ts, port, mbuf))
        self._tie += 1
        if decision.dup:
            ledger.duplicated += 1
            heappush(self._heap,
                     (pos + 1, self._tie, data, ts, port, mbuf))
            self._tie += 1
        heap = self._heap
        while heap and heap[0][0] <= base:
            self._emit(heappop(heap), out)

    def _drain(self, out: List[tuple]) -> None:
        heap = self._heap
        while heap:
            self._emit(heappop(heap), out)

    def _emit(self, entry: tuple, out: List[tuple]) -> None:
        """Receiver side: clamp the timestamp monotonic, run the
        mitigation policies, deliver or attribute the drop."""
        _pos, _tie, data, ts, port, mbuf = entry
        if ts < self._last_out_ts:
            ts = self._last_out_ts  # displaced into the past: clamp
            mbuf = None
        else:
            self._last_out_ts = ts
        if self._verify and not self._admit(data, ts, port):
            return
        self.ledger.record_delivered(port, len(data))
        out.append((data, ts, port, mbuf))

    # -- receiver mitigation -------------------------------------------
    def _link_state(self, port: int) -> _LinkState:
        link = self._links.get(port)
        if link is None:
            link = self._links[port] = _LinkState()
        return link

    def _admit(self, data, ts: float, port: int) -> bool:
        config = self.config
        ledger = self.ledger
        link = self._link_state(port)
        if link.disabled_until is not None:
            if ts >= link.disabled_until:
                link.disabled_until = None
                link.window.clear()
                link.bad_in_window = 0
                ledger.record_link_event(ts, port, "enable",
                                         "repair complete")
            else:
                ledger.record_drop(port, len(data), "link_disabled")
                return False
        bad = frame_checksums_ok(data) is False
        if config.disable_threshold:
            window = link.window
            window.append(1 if bad else 0)
            link.bad_in_window += 1 if bad else 0
            if len(window) > config.disable_window:
                link.bad_in_window -= window.popleft()
            if bad and link.bad_in_window >= config.disable_threshold:
                link.disabled_until = ts + config.repair_time
                ledger.record_link_event(
                    ts, port, "disable",
                    f"{link.bad_in_window} bad frames in last "
                    f"{len(window)}")
        if bad and config.quarantine:
            ledger.record_drop(port, len(data), "quarantine")
            return False
        return True
