"""Symmetric Receive Side Scaling: Toeplitz hash + redirection table.

Retina relies on symmetric RSS [Woo & Park 2012] so both directions of
a connection hash to the same receive queue, letting per-core
connection tables run with zero cross-core synchronization. Symmetry
comes from using a repeating 16-bit key pattern (``0x6d5a...``): every
hashed field (IPv4/IPv6 address words, ports) is 16-bit aligned, so
swapping source and destination leaves the Toeplitz output unchanged.
"""

from __future__ import annotations

from typing import List, Optional

from repro.packet.ipv4 import Ipv4
from repro.packet.stack import PacketStack

#: The standard symmetric RSS key (repeating 0x6d5a), 40 bytes — long
#: enough for the IPv6 4-tuple input (36 bytes + 32-bit window).
SYMMETRIC_RSS_KEY = bytes.fromhex("6d5a" * 20)


def toeplitz_hash(key: bytes, data: bytes) -> int:
    """Compute the 32-bit Toeplitz hash of ``data`` under ``key``.

    Classic definition: for each set bit *i* of the input, XOR in the
    32-bit window of the key starting at bit *i*.
    """
    if len(key) < len(data) + 4:
        raise ValueError(
            f"key too short: {len(key)} bytes for {len(data)} bytes of input"
        )
    key_int = int.from_bytes(key, "big")
    key_bits = len(key) * 8
    result = 0
    for i, byte in enumerate(data):
        if not byte:
            continue
        for bit in range(8):
            if byte & (0x80 >> bit):
                shift = key_bits - 32 - (i * 8 + bit)
                result ^= (key_int >> shift) & 0xFFFFFFFF
    return result


def rss_input_bytes(stack: PacketStack) -> Optional[bytes]:
    """Canonical RSS hash input for a parsed packet.

    4-tuple of (src ip, dst ip, src port, dst port); ``None`` for
    packets without an IP layer (they go to queue 0 by convention).
    Non-TCP/UDP IP packets hash over addresses only.
    """
    ip = stack.ip
    if ip is None:
        return None
    cached = stack._rss_input
    if cached is not None:
        return cached
    # Hot path: this runs once per ingress packet in the dispatching
    # process. The (src, dst) address fields are contiguous in both IP
    # headers, as are the transport's (src port, dst port), so the
    # canonical input is two raw slices — no address objects, no
    # per-field int round-trips. ``bytes()`` normalizes slices of
    # memoryview-backed mbufs (flat-buffer IPC) so the result hashes
    # and concatenates; it is a no-op for bytes-backed frames.
    frame = stack.mbuf.data
    offset = ip.offset
    if isinstance(ip, Ipv4):
        addrs = bytes(frame[offset + 12:offset + 20])
    else:
        addrs = bytes(frame[offset + 8:offset + 40])
    transport = stack.tcp if stack.tcp is not None else stack.udp
    if transport is None:
        result = addrs
    else:
        toff = transport.offset
        result = addrs + bytes(frame[toff:toff + 4])
    stack._rss_input = result
    return result


class RedirectionTable:
    """The NIC's RSS indirection table: hash LSBs → receive queue.

    Also implements the paper's Section 6.1 sampling trick: entries can
    be re-pointed at a *sink* queue whose packets are dropped, reducing
    the effective ingress rate while preserving flow consistency
    (every packet of a four-tuple hits the same table entry).
    """

    def __init__(self, num_queues: int, size: int = 512) -> None:
        if num_queues < 1:
            raise ValueError("need at least one receive queue")
        if size < num_queues:
            raise ValueError("table smaller than queue count")
        self.size = size
        self.num_queues = num_queues
        self.entries: List[int] = [i % num_queues for i in range(size)]
        self._sink_fraction = 0.0
        self.sink_queue: Optional[int] = None

    def lookup(self, rss_hash: int) -> int:
        return self.entries[rss_hash % self.size]

    def set_sink_fraction(self, fraction: float, sink_queue: int) -> None:
        """Point ``fraction`` of the table's entries at ``sink_queue``.

        Entries are chosen deterministically (strided) so repeated
        configuration is reproducible; remaining entries are rebalanced
        round-robin over the true receive queues.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        self._sink_fraction = fraction
        self.sink_queue = sink_queue if fraction > 0 else None
        sink_count = round(self.size * fraction)
        # Spread sink entries evenly across the table.
        sink_slots = set()
        if sink_count:
            stride = self.size / sink_count
            sink_slots = {int(i * stride) for i in range(sink_count)}
        live = 0
        for slot in range(self.size):
            if slot in sink_slots:
                self.entries[slot] = sink_queue
            else:
                self.entries[slot] = live % self.num_queues
                live += 1

    @property
    def sink_fraction(self) -> float:
        return self._sink_fraction
