"""Simulated commodity NIC (Section 5.1 substrate).

Models the hardware primitives Retina relies on: a validated flow-rule
table (hardware packet filter), symmetric Receive Side Scaling via a
Toeplitz hash and redirection table, per-queue dispatch, and the
redirection-table "sink queue" trick the paper uses for connection-
aware sampling (Section 6.1).
"""

from repro.nic.rss import (
    SYMMETRIC_RSS_KEY,
    RedirectionTable,
    rss_input_bytes,
    toeplitz_hash,
)
from repro.nic.device import NicPortStats, SimNic

__all__ = [
    "SimNic",
    "NicPortStats",
    "RedirectionTable",
    "toeplitz_hash",
    "rss_input_bytes",
    "SYMMETRIC_RSS_KEY",
]
