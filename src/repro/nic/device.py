"""The simulated NIC device: hardware filter → RSS → receive queues.

:class:`SimNic` models the data path of a ConnectX-5-class "dumb" NIC
as Retina uses it: ingress frames are matched against the installed
flow-rule table (zero CPU cost — the paper's Figure 7 charges the
hardware stage 0 cycles), surviving frames are hashed with symmetric
RSS and dispatched to per-core receive queues via the redirection
table. The sink queue drops its packets, implementing flow-consistent
sampling (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.filter.batch import compile_hw_admit
from repro.filter.hardware import HardwareFilter
from repro.nic.rss import (
    SYMMETRIC_RSS_KEY,
    RedirectionTable,
    rss_input_bytes,
    toeplitz_hash,
)
from repro.packet.columnar import ETHERTYPE_IPV4
from repro.packet.mbuf import Mbuf
from repro.packet.stack import PacketStack, parse_stack


@dataclass
class NicPortStats:
    """Ingress accounting for one simulated port."""

    received_packets: int = 0
    received_bytes: int = 0
    hw_dropped_packets: int = 0
    hw_dropped_bytes: int = 0
    sink_dropped_packets: int = 0
    sink_dropped_bytes: int = 0
    dispatched_packets: Dict[int, int] = field(default_factory=dict)

    def record_dispatch(self, queue: int) -> None:
        self.dispatched_packets[queue] = \
            self.dispatched_packets.get(queue, 0) + 1

    def to_dict(self) -> Dict:
        """Deterministic JSON-able snapshot. The span subsystem
        (:mod:`repro.telemetry.spans`) attaches this ingress context to
        flight-recorder dumps so a dump states what the NIC saw, not
        just what the cores ran."""
        return {
            "received_packets": self.received_packets,
            "received_bytes": self.received_bytes,
            "hw_dropped_packets": self.hw_dropped_packets,
            "hw_dropped_bytes": self.hw_dropped_bytes,
            "sink_dropped_packets": self.sink_dropped_packets,
            "sink_dropped_bytes": self.sink_dropped_bytes,
            "dispatched_packets": {
                str(q): n
                for q, n in sorted(self.dispatched_packets.items())
            },
        }


class SimNic:
    """A multi-queue NIC with a flow-rule table and symmetric RSS."""

    #: Sentinel queue id for the sink (appended after the real queues).
    SINK = -1

    def __init__(
        self,
        num_queues: int,
        rss_key: bytes = SYMMETRIC_RSS_KEY,
        redirection_size: int = 512,
        hash_cache_size: int = 65536,
    ) -> None:
        if num_queues < 1:
            raise ConfigError("NIC needs at least one receive queue")
        self.num_queues = num_queues
        self.rss_key = rss_key
        self.table = RedirectionTable(num_queues, redirection_size)
        self.hardware_filter: Optional[HardwareFilter] = None
        self.stats = NicPortStats()
        self._hash_cache: Dict[bytes, int] = {}
        self._hash_cache_size = hash_cache_size
        # Fast-row admit check over decoded columns: True (admit all),
        # a closure, or None when the rule set is not column-expressible
        # (receive_columnar then must not be used for this NIC).
        self._col_admit = compile_hw_admit(None)

    # -- configuration -----------------------------------------------------
    def install_hardware_filter(self, hw: Optional[HardwareFilter]) -> None:
        """Install (or clear, with None) the validated flow-rule set."""
        self.hardware_filter = hw
        self._col_admit = compile_hw_admit(hw)

    def supports_columnar(self) -> bool:
        """True when ingress can take the columnar fast path (the
        installed hardware filter, if any, compiles to a column
        admit check)."""
        return self._col_admit is not None

    def set_sink_fraction(self, fraction: float) -> None:
        """Drop ``fraction`` of four-tuples at the NIC, flow-consistently.

        Mirrors the paper's Section 6.1 methodology: redirection-table
        entries are pointed at a sink queue whose packets are discarded,
        lowering the effective ingress rate at the CPU without breaking
        per-connection queue affinity.
        """
        self.table.set_sink_fraction(fraction, self.SINK)

    # -- data path -----------------------------------------------------------
    def rss_hash(self, stack: PacketStack) -> int:
        data = rss_input_bytes(stack)
        if data is None:
            return 0
        cached = self._hash_cache.get(data)
        if cached is None:
            cached = toeplitz_hash(self.rss_key, data)
            if len(self._hash_cache) >= self._hash_cache_size:
                self._hash_cache.clear()
            self._hash_cache[data] = cached
        return cached

    def receive(self, mbuf: Mbuf) -> Optional[int]:
        """Process one ingress frame.

        Returns the receive queue the frame was dispatched to, or
        ``None`` if it was dropped by the hardware filter or the sink.
        Sets ``mbuf.queue`` on dispatch.

        This is the dispatching process's per-packet hot path (the
        parallel backend routes every frame here before sharding), so
        the hash cache and redirection table are accessed inline.
        """
        stats = self.stats
        frame_bytes = len(mbuf.data)
        stats.received_packets += 1
        stats.received_bytes += frame_bytes
        stack = mbuf.stack
        if stack is None:
            stack = parse_stack(mbuf)
        hw = self.hardware_filter
        if hw is not None and not hw.admits(stack):
            stats.hw_dropped_packets += 1
            stats.hw_dropped_bytes += frame_bytes
            return None
        data = rss_input_bytes(stack)
        if data is None:
            rss = 0
        else:
            cache = self._hash_cache
            rss = cache.get(data)
            if rss is None:
                rss = toeplitz_hash(self.rss_key, data)
                if len(cache) >= self._hash_cache_size:
                    cache.clear()
                cache[data] = rss
        table = self.table
        queue = table.entries[rss % table.size]
        if queue == self.SINK:
            stats.sink_dropped_packets += 1
            stats.sink_dropped_bytes += frame_bytes
            return None
        mbuf.queue = queue
        dispatched = stats.dispatched_packets
        dispatched[queue] = dispatched.get(queue, 0) + 1
        return queue

    def receive_columnar(self, mbuf: Mbuf, cols, i: int) -> Optional[int]:
        """Process one ingress frame using pre-decoded columns.

        Row ``i`` of ``cols`` describes ``mbuf``. Fast rows (plain
        IPv4/IPv6 TCP/UDP, see :mod:`repro.packet.columnar`) skip the
        header-stack parse entirely: the hardware-filter check runs as
        the precompiled column admit and the symmetric-RSS input is one
        contiguous frame slice (addresses and ports are adjacent in a
        plain IP+transport header, so ``frame[26:38]`` / ``frame[22:58]``
        is value-equal to :func:`~repro.nic.rss.rss_input_bytes` — the
        hash cache behaves identically). Slow rows delegate to
        :meth:`receive`. Counter updates match :meth:`receive` exactly.
        """
        if not cols.fast[i]:
            return self.receive(mbuf)
        stats = self.stats
        frame_bytes = cols.wire[i]
        stats.received_packets += 1
        stats.received_bytes += frame_bytes
        admit = self._col_admit
        if admit is not True and not admit(cols, i):
            stats.hw_dropped_packets += 1
            stats.hw_dropped_bytes += frame_bytes
            return None
        if cols.ethertype[i] == ETHERTYPE_IPV4:
            data = bytes(mbuf.data[26:38])
        else:
            data = bytes(mbuf.data[22:58])
        cache = self._hash_cache
        rss = cache.get(data)
        if rss is None:
            rss = toeplitz_hash(self.rss_key, data)
            if len(cache) >= self._hash_cache_size:
                cache.clear()
            cache[data] = rss
        table = self.table
        queue = table.entries[rss % table.size]
        if queue == self.SINK:
            stats.sink_dropped_packets += 1
            stats.sink_dropped_bytes += frame_bytes
            return None
        mbuf.queue = queue
        dispatched = stats.dispatched_packets
        dispatched[queue] = dispatched.get(queue, 0) + 1
        return queue

    def receive_burst(self, mbufs: List[Mbuf]) -> Dict[int, List[Mbuf]]:
        """Dispatch a burst, returning per-queue packet lists in
        arrival order (the shape a batched pipeline consumes)."""
        queues: Dict[int, List[Mbuf]] = {}
        receive = self.receive
        get_queue = queues.get
        for mbuf in mbufs:
            queue = receive(mbuf)
            if queue is not None:
                batch = get_queue(queue)
                if batch is None:
                    batch = queues[queue] = []
                batch.append(mbuf)
        return queues
