"""Exception hierarchy for the Retina reproduction.

All library errors derive from :class:`RetinaError` so applications can
catch framework failures with a single ``except`` clause while still
distinguishing categories (filter compilation, packet parsing, hardware
rule validation, runtime configuration).
"""

from __future__ import annotations


class RetinaError(Exception):
    """Base class for all errors raised by this library."""


class FilterError(RetinaError):
    """Base class for filter-language failures."""


class FilterSyntaxError(FilterError):
    """The filter string could not be tokenized or parsed.

    Carries the offending position so tools can point at the error.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class FilterSemanticsError(FilterError):
    """The filter parsed but refers to unknown protocols/fields or uses
    an operator unsupported for the field's type."""


class PacketParseError(RetinaError):
    """A packet's bytes could not be parsed as the requested header.

    Mirrors Retina's ``Packet::parse_to`` returning ``Err``: filters treat
    this as a non-match rather than a fatal condition.
    """


class HardwareRuleError(RetinaError):
    """A filter predicate could not be expressed as a NIC flow rule.

    Retina handles this by widening the hardware filter (the software
    packet filter picks up the slack); this error is how the capability
    layer reports the incompatibility to the rule generator.
    """


class ConfigError(RetinaError):
    """Invalid runtime configuration (core counts, timeouts, ring sizes)."""


class ProtocolError(RetinaError):
    """An application-layer parser encountered malformed protocol data."""


class SubscriptionError(RetinaError):
    """The subscription (filter + data type + callback) is inconsistent,
    e.g. a session-level filter attached to a packet-only fast path that
    cannot supply connection state."""


class TenancyError(ConfigError):
    """A multi-tenant subscription set is invalid: duplicate or
    malformed tenant names, an unparseable subscriptions file, a
    reconfiguration event referring to an unknown tenant, or a live
    ``subscribe``/``unsubscribe`` that conflicts with the current
    filter-table epoch."""


class CallbackError(RetinaError):
    """A subscription callback raised.

    Under the default ``callback_error_policy="raise"`` the original
    exception is wrapped in this type (and chained via ``__cause__``) at
    the delivery boundary, so applications can distinguish "my callback
    is buggy" from framework failures. Under ``"isolate"`` the error is
    counted against the subscription's error budget instead of raising.
    """


class ResourceExhaustedError(RetinaError):
    """A resource ceiling was hit and the configured degradation policy
    could not relieve the pressure.

    Raised by the ``evict`` memory policy when evicting every idle
    connection still leaves a core above its memory share — i.e. the
    live working set itself exceeds the configured limit.
    """


class FaultInjectionError(RetinaError):
    """A fault plan is malformed (unknown kind, bad parameters)."""
