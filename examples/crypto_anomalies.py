#!/usr/bin/env python
"""Cryptographic anomalies (Section 7.1).

Measure the frequency of TLS client randoms across all handshakes on
the link. Nonces should essentially never repeat; repeats indicate
broken entropy or non-compliant TLS stacks (the paper found one value
8,340 times in ten minutes, plus an all-zero random).

A few synthetic "broken" clients are mixed into the traffic so there
is something to find.

Run:
    python examples/crypto_anomalies.py
"""

import random

from repro import Runtime, RuntimeConfig
from repro.analysis import ClientRandomCounter
from repro.traffic import CampusTrafficGenerator, FlowSpec, tls_flow


def broken_client_flows(n: int = 12):
    """A device fleet whose RNG is stuck on one nonce."""
    stuck = bytes.fromhex("738b712a" + "00" * 24 + "dee0dbe1")
    rng = random.Random(9)
    flows = []
    for i in range(n):
        flows.extend(tls_flow(
            FlowSpec(f"10.66.0.{i + 1}", "171.64.3.3", 42000 + i, 443),
            "telemetry.vendor-iot.com",
            client_random=stuck,
            server_random=rng.randbytes(32),
            start_ts=0.01 * i,
            rng=rng,
        ))
    return flows


def main() -> None:
    counter = ClientRandomCounter()
    runtime = Runtime(
        RuntimeConfig(cores=16),
        filter_str="tls",
        datatype="tls_handshake",
        callback=counter,
    )

    traffic = CampusTrafficGenerator(seed=2).packets(duration=0.5,
                                                     gbps=0.15)
    traffic = sorted(traffic + broken_client_flows(),
                     key=lambda m: m.timestamp)
    runtime.run(iter(traffic))

    print(counter.summary())
    print()
    print("suspected broken implementations (nonce repeated >= 3x):")
    for value, count in counter.anomalies(threshold=3):
        print(f"  {value[:8].hex()}...{value[-4:].hex()}  x{count}")


if __name__ == "__main__":
    main()
