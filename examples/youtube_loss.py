#!/usr/bin/env python
"""'What is the packet loss of traffic from YouTube?'

The paper's opening example of a "seemingly simple, yet increasingly
important question" that outpaced traditional tools. With a
subscription it is a filter plus a few lines of aggregation: isolate
googlevideo flows by SNI, and estimate per-session loss from the
out-of-order/retransmission counters the connection tracker keeps.

Run:
    python examples/youtube_loss.py
"""

import random

from repro import Runtime, RuntimeConfig
from repro.traffic import CampusTrafficGenerator, FlowSpec, tls_flow


def youtube_traffic(seed=12, n_flows=14):
    """Video flows, a few of which traverse a lossy path (packets
    dropped and retransmitted out of order)."""
    rng = random.Random(seed)
    flows = []
    for i in range(n_flows):
        packets = tls_flow(
            FlowSpec(f"10.7.0.{i + 1}", "172.217.6.9", 46000 + i, 443),
            f"rr{i}---sn-q4fl6n6r.googlevideo.com",
            start_ts=i * 0.1,
            appdata_bytes=rng.randrange(200_000, 900_000),
            rng=rng,
        )
        if i % 4 == 0:  # a lossy path: displace some segments
            for _ in range(rng.randrange(2, 6)):
                index = rng.randrange(8, len(packets))
                jump = rng.randrange(1, 4)
                packets[index - jump], packets[index] = \
                    packets[index], packets[index - jump]
            times = sorted(m.timestamp for m in packets)
            for mbuf, ts in zip(packets, times):
                mbuf.timestamp = ts
        flows.append(packets)
    return sorted((m for f in flows for m in f),
                  key=lambda m: m.timestamp)


def main() -> None:
    sessions = []

    def callback(record) -> None:
        data_packets = max(record.pkts_resp, 1)
        loss_estimate = record.ooo_resp / data_packets
        sessions.append((record.five_tuple, record.bytes_resp,
                         loss_estimate))

    runtime = Runtime(
        RuntimeConfig(cores=8),
        filter_str=r"tcp.port = 443 and tls.sni ~ 'googlevideo'",
        datatype="connection",
        callback=callback,
    )
    # Video flows ride alongside ordinary campus noise.
    traffic = sorted(
        youtube_traffic()
        + CampusTrafficGenerator(seed=2).packets(duration=1.0, gbps=0.05),
        key=lambda m: m.timestamp,
    )
    runtime.run(iter(traffic))

    print(f"{len(sessions)} YouTube sessions observed")
    lossy = [s for s in sessions if s[2] > 0]
    clean = [s for s in sessions if s[2] == 0]
    print(f"  clean paths: {len(clean)}")
    print(f"  lossy paths: {len(lossy)}")
    for tup, volume, loss in sorted(lossy, key=lambda s: -s[2])[:5]:
        print(f"    {tup}  {volume / 1e6:6.2f} MB  "
              f"~{loss * 100:.2f}% retransmitted/reordered")


if __name__ == "__main__":
    main()
