#!/usr/bin/env python
"""Traffic profiling (one of Section 7's listed applications).

Subscribe to all connection records with service identification turned
on and build a link profile: protocol and service mixes, top server
ports, top (hashed) talkers. Addresses are never surfaced raw — the
paper's ethics posture.

Run:
    python examples/traffic_profile.py
"""

from repro import Runtime, RuntimeConfig
from repro.analysis import TrafficProfiler
from repro.traffic import CampusTrafficGenerator


def main() -> None:
    profiler = TrafficProfiler()
    runtime = Runtime(
        RuntimeConfig(cores=8),
        filter_str="",
        datatype="connection",
        callback=profiler,
        identify_services=True,
    )
    traffic = CampusTrafficGenerator(seed=6).packets(duration=0.5,
                                                     gbps=0.25)
    report = runtime.run(iter(traffic))

    print(profiler.summary())
    print()
    print(f"(zero-loss ceiling while profiling: "
          f"{report.stats.max_zero_loss_gbps():.1f} Gbps on 8 cores)")


if __name__ == "__main__":
    main()
