#!/usr/bin/env python
"""TLS client fingerprinting (a Section 7.1-style long-tail study).

Compute JA3 fingerprints for every TLS handshake on the link and
surface the long tail: rare fingerprints are the unusual client
implementations the paper argues passive measurement uniquely exposes.

Run:
    python examples/client_fingerprints.py
"""

from repro import Runtime, RuntimeConfig
from repro.analysis import Ja3Counter
from repro.traffic import CampusTrafficGenerator


def main() -> None:
    counter = Ja3Counter()
    runtime = Runtime(
        RuntimeConfig(cores=16),
        filter_str="tls",
        datatype="tls_handshake",
        callback=counter,
    )
    traffic = CampusTrafficGenerator(seed=8).packets(duration=0.5,
                                                     gbps=0.25)
    runtime.run(iter(traffic))

    print(counter.summary())
    tail = counter.long_tail(max_count=1)
    print()
    print(f"long-tail fingerprints (seen once): {len(tail)}")
    for fingerprint in tail[:5]:
        domains = sorted(counter.sni_examples.get(fingerprint, ()))
        print(f"  {fingerprint} -> {', '.join(domains) or 'no SNI'}")


if __name__ == "__main__":
    main()
