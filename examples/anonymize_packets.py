#!/usr/bin/env python
"""Anonymized packet analysis (Section 7.2).

Subscribe to raw packets of HTTP connections and write them to a pcap
with prefix-preserving IP encryption applied — shareable traces whose
subnet structure survives anonymization. The paper's version of this
application is 11 lines of Rust around the ipcrypt crate; the callback
below is the same shape.

Run:
    python examples/anonymize_packets.py [output.pcap]
"""

import os
import sys
import tempfile

from repro import Runtime, RuntimeConfig
from repro.analysis import PrefixPreservingEncryptor, anonymize_packet
from repro.traffic import CampusTrafficGenerator, read_pcap, write_pcap


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        tempfile.gettempdir(), "anonymized_http.pcap")
    encryptor = PrefixPreservingEncryptor(os.urandom(16))
    anonymized = []

    def callback(packet) -> None:
        anonymized.append(anonymize_packet(packet.mbuf, encryptor))

    runtime = Runtime(
        RuntimeConfig(cores=16),
        filter_str="http and ipv4",
        datatype="packet",
        callback=callback,
    )

    traffic = CampusTrafficGenerator(seed=3).packets(duration=0.5,
                                                     gbps=0.3)
    report = runtime.run(iter(traffic))

    write_pcap(out_path, anonymized)
    print(f"wrote {len(anonymized)} anonymized HTTP packets "
          f"to {out_path}")
    print(f"(processed {report.stats.ingress_packets} ingress packets; "
          f"filter delivered {report.stats.callbacks})")

    # Round-trip sanity: the file is ordinary pcap and the addresses
    # really did change.
    sample = read_pcap(out_path)[:3]
    from repro.packet import parse_stack
    for mbuf in sample:
        stack = parse_stack(mbuf)
        print(f"  anonymized flow: {stack.ip.src_addr()} -> "
              f"{stack.ip.dst_addr()}")


if __name__ == "__main__":
    main()
