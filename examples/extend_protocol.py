#!/usr/bin/env python
"""Framework extensibility (Section 3.3 / Appendix A).

Add a brand-new protocol to the framework — a toy line-based telemetry
protocol ("TLM") — by implementing a ``ConnParser`` and registering
its filterable fields, then subscribe to its sessions with a filter on
a field the core framework has never heard of.

Run:
    python examples/extend_protocol.py
"""

from dataclasses import dataclass
from typing import Optional

from repro import Runtime, RuntimeConfig, Subscription
from repro.core.datatypes import Level, _SessionSubscribable
from repro.filter.fields import (
    FieldDef,
    Layer,
    ProtocolDef,
    ValueType,
    default_registry,
)
from repro.protocols.base import ConnParser, ParseResult, ProbeResult
from repro.protocols.registry import default_parser_registry
from repro.traffic import FlowSpec, TcpFlow


# -- 1. the wire data -------------------------------------------------------

@dataclass
class TlmData:
    """One telemetry announcement: ``TLM <device> <metric>\\n``."""

    device_value: Optional[str] = None
    metric_value: Optional[int] = None

    def device(self) -> Optional[str]:
        return self.device_value

    def metric(self) -> Optional[int]:
        return self.metric_value


# -- 2. the protocol module (ConnParsable) -----------------------------------

class TlmParser(ConnParser):
    protocol = "tlm"

    def __init__(self) -> None:
        super().__init__()
        self._buffer = bytearray()

    def probe(self, segment) -> ProbeResult:
        if segment.payload.startswith(b"TLM "):
            return ProbeResult.MATCH
        if b"TLM ".startswith(segment.payload[:4]):
            return ProbeResult.UNSURE
        return ProbeResult.NO_MATCH

    def parse(self, segment) -> ParseResult:
        self._buffer.extend(segment.payload)
        while (end := self._buffer.find(b"\n")) >= 0:
            line = bytes(self._buffer[:end]).decode("ascii", "replace")
            del self._buffer[:end + 1]
            parts = line.split()
            if len(parts) == 3 and parts[0] == "TLM":
                data = TlmData(parts[1], int(parts[2]))
                self._finish_session(data, segment.timestamp)
        return ParseResult.CONTINUE

    def session_nomatch_state(self) -> str:
        """A non-matching reading does not condemn the connection —
        later readings may match (unlike, say, a TLS handshake)."""
        return "parse"


# -- 3. the subscribable type -------------------------------------------------

class TlmReading(_SessionSubscribable):
    app_parsers = ("tlm",)
    name = "tlm_reading"

    def device(self):
        return self.data.device()

    def metric(self):
        return self.data.metric()


# -- 4. register fields + parser, subscribe ------------------------------------

def main() -> None:
    fields = default_registry()
    fields.register(ProtocolDef(
        name="tlm",
        layer=Layer.CONNECTION,
        field_layer=Layer.SESSION,
        transports=("tcp",),
        fields={
            "device": FieldDef("device", ValueType.STRING, ("device",)),
            "metric": FieldDef("metric", ValueType.INT, ("metric",)),
        },
    ))
    parsers = default_parser_registry()
    parsers.register("tlm", TlmParser)

    readings = []
    subscription = Subscription(
        "tlm.metric > 90 and tlm.device ~ 'sensor-.*'",
        TlmReading,
        callback=lambda r: readings.append((r.device(), r.metric())),
        field_registry=fields,
        parser_registry=parsers,
    )
    runtime = Runtime(RuntimeConfig(cores=2), subscription=subscription)

    flow = TcpFlow(FlowSpec("10.5.0.1", "171.64.8.8", 50000, 7007))
    flow.handshake()
    flow.send(True, b"TLM sensor-42 97\nTLM sensor-42 12\n"
                    b"TLM gateway-1 99\nTLM sensor-7 95\n")
    flow.fin()
    runtime.run(iter(flow.build()))

    print("high readings from sensors:", readings)
    assert readings == [("sensor-42", 97), ("sensor-7", 95)]
    print("custom protocol, custom fields, custom subscribable: OK")


if __name__ == "__main__":
    main()
