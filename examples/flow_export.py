#!/usr/bin/env python
"""Flow export — connection records to CSV.

One of the Section 7 "and more" applications: export a NetFlow-style
record for every TCP connection on the link (including unanswered
SYNs, which Retina treats as proper connections) for offline analysis.

Run:
    python examples/flow_export.py [flows.csv]
"""

import csv
import os
import sys
import tempfile

from repro import Runtime, RuntimeConfig
from repro.traffic import CampusTrafficGenerator

FIELDS = [
    "five_tuple", "first_ts", "last_ts", "duration", "service",
    "pkts_orig", "pkts_resp", "bytes_orig", "bytes_resp",
    "ooo_orig", "ooo_resp", "history", "graceful", "single_syn",
]


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        tempfile.gettempdir(), "flows.csv")
    rows = []

    def callback(record) -> None:
        rows.append({
            "five_tuple": str(record.five_tuple),
            "first_ts": f"{record.first_ts:.6f}",
            "last_ts": f"{record.last_ts:.6f}",
            "duration": f"{record.duration:.6f}",
            "service": record.service or "-",
            "pkts_orig": record.pkts_orig,
            "pkts_resp": record.pkts_resp,
            "bytes_orig": record.bytes_orig,
            "bytes_resp": record.bytes_resp,
            "ooo_orig": record.ooo_orig,
            "ooo_resp": record.ooo_resp,
            "history": record.history,
            "graceful": record.terminated_gracefully,
            "single_syn": record.is_single_syn,
        })

    runtime = Runtime(
        RuntimeConfig(cores=16),
        filter_str="tcp",
        datatype="connection",
        callback=callback,
    )
    traffic = CampusTrafficGenerator(seed=4).packets(duration=0.5,
                                                     gbps=0.2)
    runtime.run(iter(traffic))

    with open(out_path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=FIELDS)
        writer.writeheader()
        writer.writerows(rows)

    single_syns = sum(1 for r in rows if r["single_syn"])
    print(f"exported {len(rows)} connection records to {out_path}")
    print(f"  ({single_syns} were single unanswered SYNs — scanners)")
    for row in rows[:5]:
        print(f"  {row['five_tuple']:48s} {row['service']:5s} "
              f"{row['history']}")


if __name__ == "__main__":
    main()
