#!/usr/bin/env python
"""Quickstart — the paper's Figure 1 subscription.

Subscribe to parsed TLS handshakes for all domains ending in ".com"
and log the server name and ciphersuite of each. In Retina this is ten
lines of Rust; here it is the same shape in Python, running over a
synthetic campus-traffic source (the reproduction's substitute for a
live 100GbE tap).

Run:
    python examples/quickstart.py
"""

from repro import Runtime, RuntimeConfig
from repro.traffic import CampusTrafficGenerator


def main() -> None:
    config = RuntimeConfig(cores=8)

    def callback(handshake) -> None:
        print(f"TLS handshake with {handshake.sni()} "
              f"using {handshake.cipher()}")

    runtime = Runtime(
        config,
        filter_str=r"tls.sni ~ '.*\.com$'",
        datatype="tls_handshake",
        callback=callback,
    )

    traffic = CampusTrafficGenerator(seed=1).packets(duration=0.5,
                                                     gbps=0.2)
    report = runtime.run(iter(traffic))

    print()
    print(report.stats.describe())


if __name__ == "__main__":
    main()
