#!/usr/bin/env python
"""Video feature extraction for model inference (Section 7.3).

Isolate Netflix and YouTube video traffic by SNI and extract the
features Bronzino et al. use to infer streaming quality: parallel
flows per session, total bytes up/down, average out-of-order packets,
and download throughput.

Run:
    python examples/video_quality_features.py
"""

import random

from repro import Runtime, RuntimeConfig
from repro.analysis import VideoSessionAggregator
from repro.traffic import FlowSpec, tls_flow

FILTERS = {
    "netflix": r"tcp.port = 443 and tls.sni ~ '(.+?\.)?nflxvideo\.net'",
    "youtube": r"tcp.port = 443 and tls.sni ~ 'googlevideo'",
}
SNI = {
    "netflix": "occ-0-{i}.1.nflxvideo.net",
    "youtube": "rr{i}---sn-q4fl6n6r.googlevideo.com",
}


def video_traffic(service: str, n_clients: int = 8):
    rng = random.Random(hash(service) % 997)
    flows = []
    for client in range(n_clients):
        for segment in range(rng.randint(2, 4)):
            flows.append(tls_flow(
                FlowSpec(f"10.3.0.{client + 1}", "45.57.10.9",
                         43000 + client * 8 + segment, 443),
                SNI[service].format(i=client),
                start_ts=client * 0.2 + segment * 0.9,
                appdata_bytes=int(rng.lognormvariate(0, 0.7) * 900_000),
                appdata_up_bytes=2_000,
                rng=rng,
            ))
    return sorted((m for f in flows for m in f),
                  key=lambda m: m.timestamp)


def main() -> None:
    for service, filter_str in FILTERS.items():
        aggregator = VideoSessionAggregator(service)
        runtime = Runtime(
            RuntimeConfig(cores=16),
            filter_str=filter_str,
            datatype="connection",
            callback=aggregator,
        )
        runtime.run(iter(video_traffic(service)))
        sessions = aggregator.finish()
        print(f"{service}: {len(sessions)} video sessions")
        for session in sessions[:4]:
            print(f"  flows={session.flows}  "
                  f"up={session.bytes_up / 1e6:.2f} MB  "
                  f"down={session.bytes_down / 1e6:.2f} MB  "
                  f"avg_ooo_down={session.avg_ooo_down:.1f}  "
                  f"throughput={session.download_throughput_bps / 1e6:.1f}"
                  f" Mbps")
        print()


if __name__ == "__main__":
    main()
