#!/usr/bin/env python
"""'How much traffic is sent unencrypted and why?'

The paper's second motivating question. Two subscriptions answer it:
a profile of the whole link (how much is plaintext HTTP vs TLS/QUIC),
and a transaction-level look at *what* is still plaintext — the hosts
and user agents that have not migrated.

Run:
    python examples/unencrypted_traffic.py
"""

from collections import Counter

from repro import Runtime, RuntimeConfig
from repro.analysis import TrafficProfiler
from repro.traffic import CampusTrafficGenerator


def main() -> None:
    traffic = CampusTrafficGenerator(seed=14).packets(duration=0.5,
                                                      gbps=0.25)

    # Pass 1: the how-much, from a full-link profile.
    profiler = TrafficProfiler()
    Runtime(RuntimeConfig(cores=8), filter_str="", datatype="connection",
            callback=profiler, identify_services=True).run(iter(traffic))

    encrypted = sum(profiler.service_bytes[s] for s in ("tls", "quic",
                                                        "ssh"))
    plaintext_http = profiler.service_bytes.get("http", 0)
    total = max(profiler.bytes, 1)
    print(f"link volume: {total / 1e6:.1f} MB")
    print(f"  encrypted (tls/quic/ssh): {encrypted / total * 100:5.1f}%")
    print(f"  plaintext HTTP:           "
          f"{plaintext_http / total * 100:5.1f}%")
    print(f"  other/unidentified:       "
          f"{(total - encrypted - plaintext_http) / total * 100:5.1f}%")

    # Pass 2: the why, from the plaintext transactions themselves.
    hosts = Counter()
    agents = Counter()

    def on_txn(txn) -> None:
        if txn.host():
            hosts[txn.host()] += 1
        if txn.user_agent():
            agents[txn.user_agent().split()[0]] += 1

    Runtime(RuntimeConfig(cores=8), filter_str="http",
            datatype="http_transaction", callback=on_txn).run(
        iter(traffic))

    print()
    print("who is still on plaintext HTTP:")
    for host, count in hosts.most_common(5):
        print(f"  {host:32s} {count} transactions")
    print("with user agents:")
    for agent, count in agents.most_common(5):
        print(f"  {agent:32s} {count}")


if __name__ == "__main__":
    main()
