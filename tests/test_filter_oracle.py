"""End-to-end oracle tests: the decomposed four-layer filter pipeline
must agree with direct evaluation of the filter expression.

The oracle (:mod:`repro.filter.reference`) evaluates the parsed
expression against a complete view of each generated flow (headers,
true service, expected session data) with no decomposition at all. For
every (filter, flow) pair, a ConnectionRecord subscription must deliver
the flow iff the oracle says the filter is satisfiable by it.
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Runtime, RuntimeConfig
from repro.filter.parser import parse_filter
from repro.filter.reference import FlowView, flow_matches
from repro.traffic import (
    FlowSpec,
    dns_flow,
    http_flow,
    single_syn,
    ssh_flow,
    tls_flow,
    udp_flow,
)

# Filters over flow-uniform attributes (addresses, ports, TTL default,
# service, session fields), so "some packet satisfies" is well-defined
# for the whole conjunction.
FILTER_CATALOG = [
    "",
    "ipv4",
    "tcp",
    "udp",
    "tls",
    "http",
    "ssh",
    "dns",
    "tcp.port = 443",
    "tcp.port = 80",
    "tcp.port in 20..100",
    "udp.port = 53",
    "ipv4.addr in 10.0.0.0/8",
    "ipv4.src_addr in 10.1.0.0/16",
    "tls.sni ~ 'netflix'",
    "tls.sni ~ '.*\\.com$'",
    "tls.cipher ~ 'AES_128'",
    "http.user_agent ~ 'Firefox'",
    "http.host = 'match.example'",
    "ssh.client_software ~ 'OpenSSH'",
    "dns.query_name ~ 'example'",
    "tls and tcp.port = 443",
    "tcp.port = 443 and tls.sni ~ 'video'",
    "(ipv4 and tcp.port in 400..500 and tls.sni ~ 'net') or http",
    "tls.sni ~ 'alpha' or tls.sni ~ 'beta'",
    "http or dns",
    "ipv4.addr in 10.2.0.0/16 and tls",
]


class FakeTls:
    def __init__(self, sni, cipher_name, version_name):
        self._sni, self._cipher, self._version = sni, cipher_name, \
            version_name

    def sni(self):
        return self._sni

    def cipher(self):
        return self._cipher

    def version(self):
        return self._version

    def client_version(self):
        return "TLS 1.2"


class FakeHttp:
    def __init__(self, host, user_agent):
        self._host, self._ua = host, user_agent

    def host(self):
        return self._host

    def user_agent(self):
        return self._ua

    def method(self):
        return "GET"

    def uri(self):
        return "/"

    def version(self):
        return "1.1"

    def status_code(self):
        return 200


class FakeSsh:
    def __init__(self, software):
        self._software = software

    def client_software(self):
        return self._software

    def server_software(self):
        return "OpenSSH_8.4"

    def client_version(self):
        return "2.0"

    def server_version(self):
        return "2.0"


class FakeDns:
    def __init__(self, name):
        self._name = name

    def query_name(self):
        return self._name

    def query_type(self):
        return "A"

    def response_code(self):
        return 0


@st.composite
def flows(draw):
    """A (packets, FlowView) pair with a known ground truth."""
    kind = draw(st.sampled_from(
        ["tls", "http", "ssh", "dns", "syn", "udp"]))
    src = draw(st.sampled_from(
        ["10.1.2.3", "10.2.9.9", "192.168.7.7", "172.20.0.5"]))
    dst = draw(st.sampled_from(["171.64.1.1", "8.8.8.8", "45.57.0.9"]))
    sport = draw(st.integers(1024, 65000))
    index = draw(st.integers(0, 3))
    if kind == "tls":
        dport = draw(st.sampled_from([443, 444, 8443]))
        sni = draw(st.sampled_from(
            ["video.netflix.com", "alpha.example.com", "beta.example.org",
             "plain.net", None]))
        cipher_id, cipher_name = draw(st.sampled_from([
            (0x1301, "TLS_AES_128_GCM_SHA256"),
            (0xC030, "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384"),
        ]))
        packets = tls_flow(FlowSpec(src, dst, sport, dport), sni,
                           cipher_suite=cipher_id, selected_version=None)
        session = SimpleNamespace(
            protocol="tls", data=FakeTls(sni, cipher_name, "TLS 1.2"))
        return packets, FlowView(packets, "tls", [session])
    if kind == "http":
        host = draw(st.sampled_from(["match.example", "other.example"]))
        agent = draw(st.sampled_from(
            ["Mozilla/5.0 Firefox/117.0", "curl/8.1"]))
        packets = http_flow(FlowSpec(src, dst, sport, 80), host=host,
                            user_agent=agent)
        session = SimpleNamespace(protocol="http",
                                  data=FakeHttp(host, agent))
        return packets, FlowView(packets, "http", [session])
    if kind == "ssh":
        software = draw(st.sampled_from(["OpenSSH_9.3", "dropbear_2022"]))
        packets = ssh_flow(FlowSpec(src, dst, sport, 22),
                           client_software=software)
        session = SimpleNamespace(protocol="ssh", data=FakeSsh(software))
        return packets, FlowView(packets, "ssh", [session])
    if kind == "dns":
        name = draw(st.sampled_from(["a.example.com", "b.other.net"]))
        packets = dns_flow(FlowSpec(src, dst, sport, 53), name=name)
        session = SimpleNamespace(protocol="dns", data=FakeDns(name))
        return packets, FlowView(packets, "dns", [session])
    if kind == "syn":
        dport = draw(st.sampled_from([22, 443, 3389]))
        packets = single_syn(FlowSpec(src, dst, sport, dport))
        return packets, FlowView(packets, None, [])
    dport = draw(st.sampled_from([53, 443, 51820]))
    packets = udp_flow(FlowSpec(src, dst, sport, dport),
                       payload_sizes=(120, 240))
    return packets, FlowView(packets, None, [])


@settings(max_examples=120, deadline=None)
@given(data=st.data(), flow=flows())
def test_pipeline_agrees_with_oracle(data, flow):
    packets, view = flow
    filter_str = data.draw(st.sampled_from(FILTER_CATALOG))
    expr = parse_filter(filter_str)
    expected = flow_matches(expr, view)

    delivered = []
    runtime = Runtime(
        RuntimeConfig(cores=1),
        filter_str=filter_str,
        datatype="connection",
        callback=delivered.append,
    )
    runtime.run(iter(packets))
    assert bool(delivered) == expected, (
        f"filter {filter_str!r}: pipeline delivered={bool(delivered)} "
        f"but oracle says {expected}"
    )


@settings(max_examples=60, deadline=None)
@given(flow=flows())
def test_match_all_always_delivers_trackable(flow):
    """Match-all connection subscription delivers every flow that has
    a transport layer (the oracle's trivially-true case)."""
    packets, view = flow
    delivered = []
    runtime = Runtime(RuntimeConfig(cores=1), filter_str="",
                      datatype="connection", callback=delivered.append)
    runtime.run(iter(packets))
    assert len(delivered) == 1
